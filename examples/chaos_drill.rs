//! A scripted chaos drill against the fault-tolerant control plane.
//!
//! One process, five acts: start a control server, attach a real worker
//! pool through a `SupervisedClient`, kill the server mid-flight, let
//! the pool run degraded, restart the server, and print the fault
//! counters that the recovery left behind — the transcript pasted into
//! EXPERIMENTS.md §Chaos drill.
//!
//! Run with: `cargo run --release --example chaos_drill`

#[cfg(target_os = "linux")]
fn main() {
    use native_rt::{
        Pool, SupervisedClient, SupervisorConfig, TargetSlot, UdsClient, UdsServer, UdsServerConfig,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let path = std::env::temp_dir().join(format!("procctl-drill-{}.sock", std::process::id()));
    let cpus = 4;
    let nworkers = 8;

    let server = UdsServer::start(UdsServerConfig::new(&path, cpus)).expect("server");
    println!("[t=0ms] server up: {} cpus, epoch {}", cpus, server.epoch());

    let slot = Arc::new(TargetSlot::new(nworkers));
    let pool = Pool::with_slot(Arc::clone(&slot), nworkers, false);
    let mut cfg = SupervisorConfig::new(&path, nworkers as u32);
    cfg.io_timeout = Duration::from_millis(250);
    cfg.backoff_initial = Duration::from_millis(20);
    cfg.backoff_max = Duration::from_millis(200);
    // The poller ships the pool's flight-recorder rings over EVENTS each
    // round; the server journals them next to its own decision instants.
    let sup = SupervisedClient::new(cfg, pool.registry()).with_recorder(pool.recorder());
    let first_epoch = sup.epoch().expect("registered");
    let _poller = sup.spawn_poller(Arc::clone(&slot), Duration::from_millis(25), true);

    let start = Instant::now();
    let t = |start: Instant| start.elapsed().as_millis();
    let target = |slot: &Arc<TargetSlot>| slot.target.load(Ordering::Acquire);
    let settle = |slot: &Arc<TargetSlot>, want: usize| {
        while target(slot) != want {
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    settle(&slot, cpus);
    println!(
        "[t={}ms] pool registered (epoch {first_epoch}): target {} of {} workers",
        t(start),
        target(&slot),
        nworkers
    );

    // Keep the pool busy with real work for the whole drill.
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..4000 {
        let d = Arc::clone(&done);
        pool.execute(move || {
            std::thread::sleep(Duration::from_micros(200));
            d.fetch_add(1, Ordering::Relaxed);
        });
    }

    println!("[t={}ms] >>> killing the server", t(start));
    drop(server);
    settle(&slot, nworkers);
    println!(
        "[t={}ms] degraded mode: target {} (uncontrolled — all workers runnable)",
        t(start),
        target(&slot)
    );

    std::thread::sleep(Duration::from_millis(300));
    println!(
        "[t={}ms] >>> restarting the server ({} jobs done so far)",
        t(start),
        done.load(Ordering::Relaxed)
    );
    let server = UdsServer::start(UdsServerConfig::new(&path, cpus)).expect("restart");
    println!("[t={}ms] new epoch {}", t(start), server.epoch());
    settle(&slot, cpus);
    println!(
        "[t={}ms] recovered: re-registered, target back to {}",
        t(start),
        target(&slot)
    );

    pool.wait_idle();
    println!(
        "[t={}ms] all {} jobs done",
        t(start),
        done.load(Ordering::Relaxed)
    );

    // The poller REPORTs the pool registry, so the recovery is visible
    // over the wire to any client — this is what an operator would see.
    // An observer `connect`s without registering, so watching the fleet
    // never takes a processor share away from it.
    std::thread::sleep(Duration::from_millis(60)); // one more REPORT cycle
    let mut observer = UdsClient::connect(&path, native_rt::DEFAULT_IO_TIMEOUT).expect("observer");
    let line = observer
        .app_stats(std::process::id())
        .expect("app stats over the wire");
    let fault_keys = [
        "reconnects",
        "degraded_enters",
        "epoch_changes",
        "poll_errors",
        "degraded",
    ];
    let faults: Vec<&str> = line
        .split_whitespace()
        .filter(|kv| {
            fault_keys
                .iter()
                .any(|k| kv.starts_with(&format!("{k}=")) || kv.starts_with(&format!("{k}_ns.")))
        })
        .collect();
    println!(
        "[t={}ms] STATS (fault counters): {}",
        t(start),
        faults.join(" ")
    );
    println!(
        "[t={}ms] server-side: {}",
        t(start),
        server.stats().render_line()
    );

    // Drain the server's journal for this app (shipped ring events plus
    // the post-restart decision instants) and merge it into a Perfetto
    // fleet timeline — the wire-path twin of `pool_bench --trace-out`.
    match observer
        .trace(std::process::id(), None)
        .expect("TRACE over the wire")
    {
        native_rt::TraceReply::Events { epoch, events } => {
            let app = bench::fleettrace::app_timeline(
                u64::from(std::process::id()),
                "drill pool",
                &events,
            );
            let doc = metrics::perfetto::sched_timeline(&[app]).finish().render();
            let out = std::env::temp_dir().join("chaos_drill_fleet_trace.json");
            std::fs::write(&out, &doc).expect("write fleet timeline");
            println!(
                "[t={}ms] fleet timeline: {} journaled events (epoch {epoch}) -> {}",
                t(start),
                events.len(),
                out.display()
            );
        }
        native_rt::TraceReply::Unsupported => {
            println!("[t={}ms] server predates TRACE — no timeline", t(start));
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("chaos_drill requires Linux (Unix sockets + /proc)");
}
