//! A scripted chaos drill against the self-healing runtime.
//!
//! One process, seven acts: start a snapshot-backed control server,
//! attach a watchdogged worker pool through a `SupervisedClient`, kill
//! the server mid-flight, let the pool run degraded, restart the server
//! (which restores its registrations from the snapshot — the supervisor
//! classifies the restart as *recovered*, no re-REGISTER), inject
//! worker panics and a worker stall from a seeded schedule, and print
//! the fault counters every layer left behind — the transcript pasted
//! into EXPERIMENTS.md §Chaos drill.
//!
//! Run with: `cargo run --release --example chaos_drill`

#[cfg(target_os = "linux")]
fn main() {
    use native_rt::{
        JobChaos, Pool, PoolConfig, SupervisedClient, SupervisorConfig, TargetSlot, UdsClient,
        UdsServer, UdsServerConfig, WatchdogConfig,
    };
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let path = std::env::temp_dir().join(format!("procctl-drill-{}.sock", std::process::id()));
    let cpus = 4;
    let nworkers = 8;

    let snap_path = std::env::temp_dir().join(format!("procctl-drill-{}.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap_path);
    let mut scfg = UdsServerConfig::new(&path, cpus);
    scfg.snapshot_path = Some(snap_path.clone());
    scfg.snapshot_interval = Duration::from_millis(25);
    let server = UdsServer::start(scfg.clone()).expect("server");
    println!(
        "[t=0ms] server up: {} cpus, epoch {}, snapshot {}",
        cpus,
        server.epoch(),
        snap_path.display()
    );

    let slot = Arc::new(TargetSlot::new(nworkers));
    let mut pcfg = PoolConfig::new(nworkers);
    pcfg.watchdog = Some(WatchdogConfig::new(Duration::from_millis(100)));
    let pool = Pool::with_slot_config(Arc::clone(&slot), pcfg);
    let mut cfg = SupervisorConfig::new(&path, nworkers as u32);
    cfg.io_timeout = Duration::from_millis(250);
    cfg.backoff_initial = Duration::from_millis(20);
    cfg.backoff_max = Duration::from_millis(200);
    // The poller ships the pool's flight-recorder rings over EVENTS each
    // round; the server journals them next to its own decision instants.
    let sup = SupervisedClient::new(cfg, pool.registry()).with_recorder(pool.recorder());
    let first_epoch = sup.epoch().expect("registered");
    let _poller = sup.spawn_poller(Arc::clone(&slot), Duration::from_millis(25), true);

    let start = Instant::now();
    let t = |start: Instant| start.elapsed().as_millis();
    let target = |slot: &Arc<TargetSlot>| slot.target.load(Ordering::Acquire);
    let settle = |slot: &Arc<TargetSlot>, want: usize| {
        while target(slot) != want {
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    settle(&slot, cpus);
    println!(
        "[t={}ms] pool registered (epoch {first_epoch}): target {} of {} workers",
        t(start),
        target(&slot),
        nworkers
    );

    // Keep the pool busy with real work for the whole drill.
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..4000 {
        let d = Arc::clone(&done);
        pool.execute(move || {
            std::thread::sleep(Duration::from_micros(200));
            d.fetch_add(1, Ordering::Relaxed);
        });
    }

    println!("[t={}ms] >>> killing the server", t(start));
    drop(server);
    settle(&slot, nworkers);
    println!(
        "[t={}ms] degraded mode: target {} (uncontrolled — all workers runnable)",
        t(start),
        target(&slot)
    );

    std::thread::sleep(Duration::from_millis(300));
    println!(
        "[t={}ms] >>> restarting the server ({} jobs done so far)",
        t(start),
        done.load(Ordering::Relaxed)
    );
    let server = UdsServer::start(scfg).expect("restart");
    println!(
        "[t={}ms] new epoch {} ({} registrations restored from snapshot)",
        t(start),
        server.epoch(),
        server.stats().counters["snapshot_restores"]
    );
    settle(&slot, cpus);
    let reg = pool.registry().snapshot();
    println!(
        "[t={}ms] recovered: target back to {} — restart classified recovered={} cold={} (registration came back from the snapshot, no re-REGISTER)",
        t(start),
        target(&slot),
        reg.counters["restarts_recovered"],
        reg.counters["restarts_cold"],
    );

    pool.wait_idle();
    println!(
        "[t={}ms] all {} jobs done",
        t(start),
        done.load(Ordering::Relaxed)
    );

    // Data-plane chaos: a seeded schedule panics ~10% of a batch. Panic
    // isolation catches each one; no worker dies, nothing is lost. The
    // injected panics are the point — keep the default hook's backtrace
    // spew out of the transcript.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));
    let mut job_chaos = JobChaos::new(0xD211, 0.1, 0.0, Duration::ZERO);
    let survived = Arc::new(AtomicUsize::new(0));
    for _ in 0..500 {
        let s = Arc::clone(&survived);
        let (_, job) = job_chaos.wrap(move || {
            s.fetch_add(1, Ordering::Relaxed);
        });
        pool.execute(job);
    }
    pool.wait_idle();
    let (injected_panics, _) = job_chaos.injected();
    let m = pool.metrics();
    println!(
        "[t={}ms] >>> injected {injected_panics} job panics across 500 jobs: {} clean jobs ran, jobs_panicked={} caught, workers_respawned={} (no worker lost)",
        t(start),
        survived.load(Ordering::Relaxed),
        m.jobs_panicked,
        m.workers_respawned,
    );

    // And one wedged job: the stall watchdog (threshold 100 ms) flags it
    // while it sleeps, then closes the episode when the worker recovers.
    let (_, wedged) = JobChaos::new(1, 0.0, 1.0, Duration::from_millis(300)).wrap(|| {});
    let stall_start = Instant::now();
    pool.execute(wedged);
    while pool.metrics().stalls_detected == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "[t={}ms] >>> injected a 300 ms worker stall: watchdog flagged it after {} ms",
        t(start),
        stall_start.elapsed().as_millis()
    );
    pool.wait_idle();

    // The poller REPORTs the pool registry, so the recovery is visible
    // over the wire to any client — this is what an operator would see.
    // An observer `connect`s without registering, so watching the fleet
    // never takes a processor share away from it.
    std::thread::sleep(Duration::from_millis(60)); // one more REPORT cycle
    let mut observer = UdsClient::connect(&path, native_rt::DEFAULT_IO_TIMEOUT).expect("observer");
    let line = observer
        .app_stats(std::process::id())
        .expect("app stats over the wire");
    let fault_keys = [
        "reconnects",
        "degraded_enters",
        "epoch_changes",
        "poll_errors",
        "degraded",
        "restarts_recovered",
        "restarts_cold",
        "jobs_panicked",
        "stalls_detected",
    ];
    let faults: Vec<&str> = line
        .split_whitespace()
        .filter(|kv| {
            fault_keys
                .iter()
                .any(|k| kv.starts_with(&format!("{k}=")) || kv.starts_with(&format!("{k}_ns.")))
        })
        .collect();
    println!(
        "[t={}ms] STATS (fault counters): {}",
        t(start),
        faults.join(" ")
    );
    println!(
        "[t={}ms] server-side: {}",
        t(start),
        server.stats().render_line()
    );

    // Drain the server's journal for this app (shipped ring events plus
    // the post-restart decision instants) and merge it into a Perfetto
    // fleet timeline — the wire-path twin of `pool_bench --trace-out`.
    match observer
        .trace(std::process::id(), None)
        .expect("TRACE over the wire")
    {
        native_rt::TraceReply::Events { epoch, events } => {
            let app = bench::fleettrace::app_timeline(
                u64::from(std::process::id()),
                "drill pool",
                &events,
            );
            let doc = metrics::perfetto::sched_timeline(&[app]).finish().render();
            let out = std::env::temp_dir().join("chaos_drill_fleet_trace.json");
            std::fs::write(&out, &doc).expect("write fleet timeline");
            println!(
                "[t={}ms] fleet timeline: {} journaled events (epoch {epoch}) -> {}",
                t(start),
                events.len(),
                out.display()
            );
        }
        native_rt::TraceReply::Unsupported => {
            println!("[t={}ms] server predates TRACE — no timeline", t(start));
        }
    }
    let _ = std::fs::remove_file(&snap_path);
}

#[cfg(not(target_os = "linux"))]
fn main() {
    eprintln!("chaos_drill requires Linux (Unix sockets + /proc)");
}
