//! The scheduler zoo: every related-work policy on one fixed scenario.
//!
//! Runs the Figure-4 workload (fft + gauss + matmul, staggered, 16
//! processes each) under each kernel scheduling policy from the paper's
//! Section 3 — UMAX FIFO, Encore priority decay, Ousterhout coscheduling,
//! Zahorjan spinlock flags, Edler gangs, Squillante–Lazowska affinity, and
//! the paper's own Section-7 space partitioning — then under FIFO with
//! user-level process control. Prints makespan and scheduling churn.
//!
//! Run with: `cargo run --release --example scheduler_zoo`

use bench::{fig4_launches, run_scenario, PolicyKind, SimEnv, PAPER_STAGGER};
use desim::{SimDur, SimTime};
use metrics::table;
use workloads::Presets;

fn main() {
    let presets = Presets::paper();
    let launches = fig4_launches(16, PAPER_STAGGER);
    let limit = SimTime::ZERO + SimDur::from_secs(3_600);

    println!("scheduler zoo: fft+gauss+matmul, 16 procs each, 16 CPUs\n");
    let mut rows = Vec::new();
    for policy in PolicyKind::ALL {
        let env = SimEnv {
            policy,
            trace: false,
            ..SimEnv::default()
        };
        let (outs, kernel) = run_scenario(&env, &presets, &launches, None, limit);
        let spin: f64 = outs.iter().map(|o| o.stats.spin.as_secs_f64()).sum();
        let switches: u64 = outs.iter().map(|o| o.stats.switches).sum();
        let makespan = kernel.now().as_secs_f64();
        rows.push(vec![
            policy.name().to_string(),
            "no".to_string(),
            format!("{makespan:.1}"),
            format!("{spin:.0}"),
            switches.to_string(),
        ]);
    }
    // And the paper's answer: plain FIFO plus user-level process control.
    let env = SimEnv::default();
    let (outs, kernel) = run_scenario(&env, &presets, &launches, Some(SimDur::from_secs(6)), limit);
    let spin: f64 = outs.iter().map(|o| o.stats.spin.as_secs_f64()).sum();
    let switches: u64 = outs.iter().map(|o| o.stats.switches).sum();
    rows.push(vec![
        "fifo-rr".to_string(),
        "yes".to_string(),
        format!("{:.1}", kernel.now().as_secs_f64()),
        format!("{spin:.0}"),
        switches.to_string(),
    ]);

    println!(
        "{}",
        table(
            &[
                "policy",
                "process control",
                "makespan(s)",
                "spin(s)",
                "ctx switches"
            ],
            &rows
        )
    );
    println!("(makespan = when the last application finished; spin = total busy-wait time)");
}
