//! A realistic multiprogrammed mix (the paper's Section 7 motivation):
//! three controlled parallel applications arriving at intervals, plus
//! uncontrollable load — batch compiles and an interactive editor — that
//! the server must subtract before partitioning.
//!
//! Prints the per-application wall-clock times and a timeline of runnable
//! processes, showing the controlled applications shrinking while the
//! batch jobs run and growing back afterwards.
//!
//! Run with: `cargo run --release --example multiprogrammed_mix`

use bench::{spawn_server, AppKind, SimEnv};
use desim::{SimDur, SimTime};
use metrics::{runnable_total_series, table};
use simkernel::AppId;
use uthreads::{launch, ThreadsConfig};
use workloads::load::{spawn_batch_load, spawn_interactive_load};
use workloads::Presets;

fn main() {
    let presets = Presets::paper();
    let env = SimEnv {
        trace: true,
        ..SimEnv::default()
    };
    let mut kernel = env.make_kernel();
    let server = spawn_server(&mut kernel);
    let poll = SimDur::from_secs(6);

    // An interactive "editor": short bursts, long think times, all run.
    spawn_interactive_load(
        &mut kernel,
        AppId(50),
        SimDur::from_millis(30),
        SimDur::from_millis(470),
        240,
        256,
    );

    // Three controlled parallel applications, staggered.
    let plan = [
        (AppKind::Fft, 0u64),
        (AppKind::Gauss, 10),
        (AppKind::Matmul, 20),
    ];
    let mut handles = Vec::new();
    for (i, (kind, start)) in plan.iter().enumerate() {
        kernel.run_until(SimTime::ZERO + SimDur::from_secs(*start));
        let cfg = ThreadsConfig::new(16).with_control(server, poll);
        let id = AppId(i as u32);
        handles.push((
            id,
            *kind,
            *start,
            launch(&mut kernel, id, cfg, kind.spec(&presets)),
        ));
    }

    // At t = 25 s, four batch compiles arrive (uncontrollable, 20 s each).
    kernel.run_until(SimTime::ZERO + SimDur::from_secs(25));
    spawn_batch_load(&mut kernel, AppId(60), 4, SimDur::from_secs(20), 512);

    let ids: Vec<AppId> = handles.iter().map(|(id, ..)| *id).collect();
    assert!(
        kernel.run_until_apps_done(&ids, SimTime::ZERO + SimDur::from_secs(3_600)),
        "mix did not finish"
    );

    println!(
        "multiprogrammed mix on {} CPUs (controlled apps + editor + 4 compiles)\n",
        env.cpus
    );
    let rows: Vec<Vec<String>> = handles
        .iter()
        .map(|(id, kind, start, h)| {
            let wall = kernel
                .app_done_time(*id)
                .expect("done")
                .since(SimTime::ZERO + SimDur::from_secs(*start))
                .as_secs_f64();
            vec![
                kind.name().to_string(),
                format!("{start}"),
                format!("{wall:.1}"),
                h.metrics().suspends.to_string(),
                h.metrics().resumes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["app", "start(s)", "wall(s)", "suspends", "resumes"],
            &rows
        )
    );

    // Timeline of total runnable processes, 5 s samples.
    let total = runnable_total_series(kernel.trace(), "total runnable");
    println!(
        "runnable processes over time (machine has {} CPUs):",
        env.cpus
    );
    let end = kernel.now().as_secs_f64();
    let mut x = 0.0;
    while x <= end {
        let y = total.step_at(x).unwrap_or(0.0);
        println!("  t={x:>5.0}s  {:3.0}  {}", y, "#".repeat(y as usize));
        x += 5.0;
    }
}
