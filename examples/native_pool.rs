//! Process control with real OS threads and real numeric work.
//!
//! Two thread pools — one multiplying matrices, one running FFTs — each
//! create twice as many workers as the machine has cores (the
//! overcommitted regime the paper warns about). The in-process controller
//! partitions the cores between them; excess workers suspend at safe
//! points and resume when the other pool finishes.
//!
//! Run with: `cargo run --release --example native_pool`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use native_rt::{Controller, Pool};
use parking_lot::Mutex;
use workloads::native::fft::{fft, Complex};
use workloads::native::matmul::{matmul_rows, Matrix};

fn main() {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let controller = Controller::new(cores, Duration::from_millis(50));
    println!(
        "host: {cores} cores; two pools of {} workers each\n",
        2 * cores
    );

    // Pool A: C = A * B, one job per row band.
    let n = 384;
    let a = Arc::new(Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) % 13) as f64));
    let b = Arc::new(Matrix::from_fn(n, n, |i, j| ((i * 5 + j * 17) % 11) as f64));
    let c = Arc::new(Mutex::new(Matrix::zeros(n, n)));

    // Pool B: batches of small FFTs.
    let fft_batches = 256;
    let ffts_done = Arc::new(AtomicUsize::new(0));

    let t0 = Instant::now();
    let pool_a = Pool::new(&controller, 2 * cores, false);
    let pool_b = Pool::new(&controller, 2 * cores, false);
    controller.recompute_now();
    println!(
        "targets after partitioning: matmul pool {} workers, fft pool {} workers",
        pool_a.target(),
        pool_b.target()
    );

    let band = 16;
    for start in (0..n).step_by(band) {
        let (a, b, c) = (Arc::clone(&a), Arc::clone(&b), Arc::clone(&c));
        pool_a.execute(move || {
            // Compute into a private buffer, then merge the band (keeps
            // the job free of long lock holds).
            let mut local = Matrix::zeros(a.rows, b.cols);
            let rows = start..(start + band).min(a.rows);
            matmul_rows(&a, &b, &mut local, rows.clone());
            let mut out = c.lock();
            let cols = out.cols;
            for i in rows {
                let off = i * cols;
                out.data[off..off + cols].copy_from_slice(&local.data[off..off + cols]);
            }
        });
    }
    for seed in 0..fft_batches {
        let k = Arc::clone(&ffts_done);
        pool_b.execute(move || {
            let mut data: Vec<Complex> = (0..1024)
                .map(|i| Complex::new(((seed * 1024 + i) % 97) as f64 / 97.0, 0.0))
                .collect();
            for _ in 0..20 {
                fft(&mut data);
            }
            k.fetch_add(1, Ordering::Relaxed);
        });
    }

    pool_a.wait_idle();
    pool_b.wait_idle();
    let elapsed = t0.elapsed();

    // Verify the matmul against a few spot rows.
    let out = c.lock();
    let mut reference = Matrix::zeros(n, n);
    matmul_rows(&a, &b, &mut reference, 0..2);
    assert_eq!(out.data[..2 * n], reference.data[..2 * n], "matmul wrong");

    println!("\nall work finished in {elapsed:.2?}");
    println!(
        "matmul pool: {} jobs, {} suspends, {} resumes",
        pool_a.metrics().jobs_run,
        pool_a.metrics().suspends,
        pool_a.metrics().resumes
    );
    println!(
        "fft pool:    {} jobs ({} batches), {} suspends, {} resumes",
        pool_b.metrics().jobs_run,
        ffts_done.load(Ordering::Relaxed),
        pool_b.metrics().suspends,
        pool_b.metrics().resumes
    );
    println!(
        "\nactive workers now: matmul {}, fft {} (of {} each)",
        pool_a.active(),
        pool_b.active(),
        2 * cores
    );
}
