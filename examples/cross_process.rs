//! Cross-process process control over a Unix socket — the deployment the
//! paper actually ran: a standalone server process, separate application
//! processes registering and polling over IPC.
//!
//! The example re-executes itself in three roles:
//!
//! - (default) the launcher: starts a server child and two worker
//!   children, waits for the workers, then stops the server;
//! - `--role server <sock>`: runs the control server until killed;
//! - `--role worker <sock> <name>`: registers 2x-cores workers, runs a
//!   batch of real FFTs under control, reports its counters.
//!
//! Run with: `cargo run --release --example cross_process`

use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--role") => match args.get(2).map(String::as_str) {
            Some("server") => run_server(&args[3]),
            Some("worker") => run_worker(&args[3], &args[4]),
            other => panic!("unknown role {other:?}"),
        },
        _ => run_launcher(),
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("cross_process requires Unix domain sockets");
}

#[cfg(unix)]
fn sock_path() -> String {
    std::env::temp_dir()
        .join(format!("procctl-demo-{}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

#[cfg(unix)]
fn respawn(role_args: &[&str]) -> Child {
    Command::new(std::env::current_exe().expect("own path"))
        .args(role_args)
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn child role")
}

#[cfg(unix)]
fn run_launcher() {
    let sock = sock_path();
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!(
        "launcher pid {}: {} cores, socket {sock}",
        std::process::id(),
        cores
    );

    let mut server = respawn(&["--role", "server", &sock]);
    // Wait for the socket to appear.
    for _ in 0..100 {
        if std::path::Path::new(&sock).exists() {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut workers: Vec<Child> = ["alpha", "beta"]
        .iter()
        .map(|name| respawn(&["--role", "worker", &sock, name]))
        .collect();
    for w in &mut workers {
        let status = w.wait().expect("worker exits");
        assert!(status.success(), "worker failed");
    }
    server.kill().expect("stop server");
    let _ = server.wait();
    println!("launcher: both workers finished; server stopped");
}

#[cfg(unix)]
fn run_server(sock: &str) {
    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let cfg = native_rt::UdsServerConfig::new(sock, cores);
    let _server = native_rt::UdsServer::start(cfg).expect("bind server socket");
    println!(
        "server pid {}: partitioning {cores} cores",
        std::process::id()
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(unix)]
fn run_worker(sock: &str, name: &str) {
    use workloads::native::fft::{fft, Complex};

    let cores = std::thread::available_parallelism().map_or(2, |n| n.get());
    let nworkers = 2 * cores;
    let client = native_rt::UdsClient::register(sock, nworkers as u32).expect("register");
    let slot = Arc::new(native_rt::TargetSlot::new(nworkers));
    let _poller = client.spawn_poller(Arc::clone(&slot), Duration::from_millis(100));
    let pool = native_rt::Pool::with_slot(slot, nworkers, false);

    for seed in 0..128u64 {
        pool.execute(move || {
            let mut data: Vec<Complex> = (0..1024)
                .map(|i| Complex::new(((seed * 1024 + i) % 101) as f64 / 101.0, 0.0))
                .collect();
            for _ in 0..10 {
                fft(&mut data);
            }
            std::hint::black_box(&data);
        });
    }
    pool.wait_idle();
    let m = pool.metrics();
    println!(
        "worker '{name}' pid {}: {} jobs, target {}, suspends {}, resumes {}",
        std::process::id(),
        m.jobs_run,
        pool.target(),
        m.suspends,
        m.resumes
    );
}
