//! Quickstart: the paper's headline result in ~40 lines.
//!
//! Two parallel applications (matmul and FFT), 24 processes each, on a
//! simulated 16-processor Encore-Multimax-like machine — first with the
//! unmodified threads package, then with dynamic process control. With
//! control, each application keeps only as many runnable processes as its
//! share of the machine, so nobody spins on preempted lock holders and
//! both finish much sooner.
//!
//! Run with: `cargo run --release --example quickstart`

use bench::{run_scenario, spawn_server, AppKind, AppLaunch, SimEnv};
use desim::{SimDur, SimTime};
use workloads::Presets;

fn main() {
    let presets = Presets::paper();
    let env = SimEnv::default(); // 16 CPUs, UMAX-like FIFO round-robin
    let launches = [
        AppLaunch {
            kind: AppKind::Matmul,
            nprocs: 24,
            start: SimTime::ZERO,
        },
        AppLaunch {
            kind: AppKind::Fft,
            nprocs: 24,
            start: SimTime::ZERO,
        },
    ];
    let limit = SimTime::ZERO + SimDur::from_secs(3_600);

    println!(
        "machine: {} processors, policy {}",
        env.cpus,
        env.policy.name()
    );
    println!("workload: matmul + fft, 24 processes each (3x overcommitted)\n");

    let (plain, _) = run_scenario(&env, &presets, &launches, None, limit);
    println!("without process control:");
    for o in &plain {
        println!(
            "  {:7}  {:6.1}s wall   {:7.1}s wasted spinning",
            o.kind.name(),
            o.wall,
            o.stats.spin.as_secs_f64()
        );
    }

    let poll = SimDur::from_secs(6); // the paper's polling interval
    let (controlled, _) = run_scenario(&env, &presets, &launches, Some(poll), limit);
    println!("\nwith process control (centralized server, 6 s polls):");
    for (o, p) in controlled.iter().zip(&plain) {
        println!(
            "  {:7}  {:6.1}s wall   {:7.1}s wasted spinning   {:4.2}x faster",
            o.kind.name(),
            o.wall,
            o.stats.spin.as_secs_f64(),
            p.wall / o.wall
        );
    }
    let _ = spawn_server; // (run_scenario spawns the server internally)
}
