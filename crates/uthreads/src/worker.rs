//! The worker-process loop of the threads package.
//!
//! Each application process runs this loop: take the queue lock, dequeue a
//! task, run it to completion (servicing its user-level operations), and
//! come back for more. Two aspects reproduce the paper precisely:
//!
//! - **The queue lock is a spinlock.** Every dequeue, enqueue, barrier
//!   arrival, and channel operation holds it for `queue_op` time. A worker
//!   preempted inside that window leaves every other worker spinning —
//!   degradation mechanism #1 arises inside the threads package itself.
//! - **Safe suspension points.** Process control acts only at the top of
//!   the loop, when the worker holds no lock and no task: "a process can be
//!   safely suspended after it has finished executing a task ... and before
//!   it has selected another task to execute." The worker then suspends by
//!   waiting for a signal, or resumes a colleague by sending one. All of
//!   this is invisible to the application's tasks.

use std::cell::RefCell;
use std::rc::Rc;

use desim::SimTime;
use procctl::{ClientControl, Decision};
use simkernel::{Action, Behavior, Pid, PortId, UserCtx, Wakeup};

use crate::shared::{AppShared, ControlMode, ControlParams, CrSimState, CrUnlock};
use crate::span::SpanKind;
use crate::task::{BarrierId, ChanId, Task, TaskEvent, TaskOp};

/// Queue operations a task can request (all performed under the queue lock).
#[derive(Debug)]
enum QOp {
    Spawn(Option<Task>),
    Barrier(BarrierId),
    Send(ChanId, u64),
    Recv(ChanId),
    Requeue,
    Finish,
}

/// What to do after releasing the queue lock.
#[derive(Debug)]
enum Resume {
    /// Continue the current task with this event.
    Event(TaskEvent),
    /// The current task was parked (barrier/channel) or finished; return
    /// to the safe point.
    ToSafe,
}

#[derive(Debug)]
enum WState {
    /// Root only: registration message in flight.
    Boot,
    /// Root only: spawning the remaining workers.
    BootSpawn,
    /// Suspended (WaitSignal in flight or blocked).
    Suspending,
    /// Resume signal to a colleague in flight.
    ResumeSignal,
    /// Poll request to the server in flight.
    PollSend,
    /// Waiting for the server's target reply.
    PollRecv,
    /// Acquiring the queue lock to dequeue.
    DequeueLock,
    /// Holding the queue lock, charging the queue-operation time.
    DequeueCrit,
    /// Releasing the queue lock after a dequeue.
    DequeueUnlock,
    /// A task operation (compute / app lock) is in flight.
    TaskRun(TaskEvent),
    /// Acquiring the queue lock for a task-side queue operation.
    TaskQLock(QOp),
    /// Holding the queue lock for a task-side queue operation.
    TaskQCrit(QOp),
    /// Releasing the queue lock after a task-side queue operation.
    TaskQUnlock(Resume),
    /// Culled by the CR queue lock on the way to a dequeue; waiting for a
    /// promotion (or shutdown-drain) signal.
    CrParkedDequeue,
    /// Promotion signal in flight after releasing the lock from a dequeue;
    /// the dequeued item (if any) is still in `pending`.
    CrPromoteDequeue,
    /// Busy-wait slice while the queue is empty but tasks are outstanding.
    IdleSpin,
    /// Goodbye message to the server in flight.
    SendBye,
    /// Decentralized control: private rpstat sweep in flight.
    DecentSample,
    /// Waking a suspended colleague on the way out.
    Dying,
}

/// A worker process of one threads-package application.
pub struct Worker {
    shared: Rc<RefCell<AppShared>>,
    state: WState,
    /// The task currently being executed, if any.
    cur: Option<Task>,
    /// Item obtained by the last dequeue, carried across the lock release.
    pending: Option<(Task, TaskEvent)>,
    is_root: bool,
    /// Workers spawned so far (root only).
    spawned: u32,
    /// Reply mailbox for control messages (shared per application).
    reply_port: Option<PortId>,
    /// When this worker last requested the queue lock (span accounting).
    qlock_req: Option<SimTime>,
    /// Whether this worker holds a CR admission slot. Slots are sticky:
    /// kept across the whole dequeue → run-task → next-dequeue cycle, and
    /// given up only by the unlock policy (rotation, adaptive shrink) or
    /// on the way to idling/exiting.
    cr_slot: bool,
}

impl Worker {
    /// Creates a worker. The root worker additionally registers with the
    /// server (if control is enabled) and spawns its colleagues.
    pub(crate) fn new(
        shared: Rc<RefCell<AppShared>>,
        is_root: bool,
        reply_port: Option<PortId>,
    ) -> Self {
        Worker {
            shared,
            state: WState::BootSpawn,
            cur: None,
            pending: None,
            is_root,
            spawned: 0,
            reply_port,
            qlock_req: None,
            cr_slot: false,
        }
    }

    /// Root: spawn the next worker, or fall through to the safe point.
    fn boot_next(&mut self, ctx: &mut dyn UserCtx) -> Action {
        let (nprocs, ws) = {
            let sh = self.shared.borrow();
            (sh.cfg.nprocs, sh.cfg.ws_lines)
        };
        if self.is_root && self.spawned + 1 < nprocs {
            self.state = WState::BootSpawn;
            let w = Worker::new(self.shared.clone(), false, self.reply_port);
            Action::Spawn(Box::new(w), ws)
        } else {
            self.safe_point(ctx)
        }
    }

    /// The safe suspension point: process control first, then work.
    fn safe_point(&mut self, ctx: &mut dyn UserCtx) -> Action {
        let mut sh = self.shared.borrow_mut();
        if sh.done {
            return Self::die(&mut self.state, &mut self.cr_slot, &mut sh);
        }
        if sh.control.is_some() {
            let active = sh.active;
            let decision = sh.control.as_ref().expect("checked").decide(active);
            match decision {
                Decision::SuspendSelf => {
                    sh.active -= 1;
                    sh.suspended.push(ctx.my_pid());
                    sh.metrics.suspends += 1;
                    sh.spans
                        .push(ctx.now(), ctx.my_pid(), SpanKind::SuspendEnter);
                    self.state = WState::Suspending;
                    return Action::WaitSignal;
                }
                Decision::Resume => {
                    if let Some(pid) = sh.suspended.pop() {
                        sh.active += 1;
                        sh.metrics.resumes += 1;
                        self.state = WState::ResumeSignal;
                        return Action::SendSignal(pid);
                    }
                }
                Decision::Continue => {}
            }
            let now = ctx.now();
            let poll_in_flight = sh.poll_in_flight;
            let mode = sh.cfg.control.expect("checked").mode;
            let poll_action = {
                let ctl = sh.control.as_mut().expect("checked");
                if !poll_in_flight && ctl.poll_due(now) {
                    ctl.claim_poll(now);
                    Some((ctl.server_port, ctl.poll_msg()))
                } else {
                    None
                }
            };
            if let Some((port, msg)) = poll_action {
                sh.metrics.polls += 1;
                sh.spans.push(now, ctx.my_pid(), SpanKind::PollSent);
                match mode {
                    ControlMode::Centralized { .. } => {
                        sh.poll_in_flight = true;
                        self.state = WState::PollSend;
                        return Action::Send(port, msg);
                    }
                    ControlMode::Decentralized { rpstat_cost } => {
                        self.state = WState::DecentSample;
                        return Action::Compute(rpstat_cost);
                    }
                }
            }
        }
        if !sh.queue.is_empty() {
            if Self::cr_cull(&mut sh, &mut self.cr_slot, ctx) {
                self.state = WState::CrParkedDequeue;
                return Action::WaitSignal;
            }
            self.qlock_req = Some(ctx.now());
            self.state = WState::DequeueLock;
            return Action::AcquireLock(sh.qlock);
        }
        if sh.outstanding == 0 {
            sh.done = true;
            if let (
                Some(ControlParams {
                    mode: ControlMode::Centralized { .. },
                    ..
                }),
                Some(ctl),
            ) = (sh.cfg.control, &sh.control)
            {
                let port = ctl.server_port;
                let msg = ctl.bye_msg();
                self.state = WState::SendBye;
                return Action::Send(port, msg);
            }
            return Self::die(&mut self.state, &mut self.cr_slot, &mut sh);
        }
        // Work exists but none is ready: busy-wait a slice and re-check.
        let spin = sh.cfg.idle_spin;
        sh.metrics.idle_spin += spin;
        self.state = WState::IdleSpin;
        Action::Compute(spin)
    }

    /// Completion path: give back any held CR slot, wake suspended
    /// colleagues, and drain the CR lock's passive list, then exit.
    /// Without the drain, workers culled at the finish line would wait
    /// forever on a promotion that no dequeuing worker remains to send.
    ///
    /// An associated function (not a method) because callers hold the
    /// shared-state borrow while updating the worker's own state.
    fn die(state: &mut WState, cr_slot: &mut bool, sh: &mut AppShared) -> Action {
        if *cr_slot {
            sh.cr
                .as_mut()
                .expect("slot held without CR state")
                .release_slot();
            *cr_slot = false;
        }
        if let Some(pid) = sh.suspended.pop() {
            sh.active += 1;
            *state = WState::Dying;
            Action::SendSignal(pid)
        } else if let Some(pid) = sh.cr.as_mut().and_then(CrSimState::grant) {
            *state = WState::Dying;
            Action::SendSignal(pid)
        } else {
            sh.active -= 1;
            Action::Exit
        }
    }

    /// CR admission at the dequeue site. Returns true when the caller was
    /// culled (parked on the passive list, to be woken by a promotion or
    /// the shutdown drain); false means the caller holds an admission
    /// slot — kept from its previous cycle, or taken now — and may
    /// contend for the queue lock.
    ///
    /// A culled worker also leaves the process-control `active` count: it
    /// has voluntarily descheduled itself, and reporting it as active
    /// would make the control server suspend circulating workers to
    /// compensate for ones that already yielded the processor.
    fn cr_cull(sh: &mut AppShared, cr_slot: &mut bool, ctx: &mut dyn UserCtx) -> bool {
        if *cr_slot {
            return false;
        }
        match &mut sh.cr {
            None => return false,
            Some(cr) => {
                if cr.try_admit() {
                    *cr_slot = true;
                    return false;
                }
                cr.park(ctx.my_pid());
            }
        }
        sh.active -= 1;
        sh.metrics.cr_passivations += 1;
        sh.spans.push(ctx.now(), ctx.my_pid(), SpanKind::CrCull);
        true
    }

    /// Slot bookkeeping after a dequeue's lock release: applies the CR
    /// unlock policy (adaptive resize, vacancy fill, fairness rotation).
    /// Returns a pid to signal when a passive worker was promoted into
    /// the circulating workforce.
    fn cr_unlock(&mut self, ctx: &mut dyn UserCtx) -> Option<Pid> {
        let mut sh = self.shared.borrow_mut();
        if !self.cr_slot || sh.cr.is_none() {
            return None;
        }
        let pid = match sh.cr.as_mut().expect("checked").on_unlock() {
            CrUnlock::Keep => return None,
            CrUnlock::Drop => {
                self.cr_slot = false;
                return None;
            }
            CrUnlock::Fill(pid) => pid,
            CrUnlock::Rotate(pid) => {
                self.cr_slot = false;
                pid
            }
        };
        sh.metrics.cr_promotions += 1;
        sh.spans.push(ctx.now(), pid, SpanKind::CrPromote);
        Some(pid)
    }

    /// Advances the current task and maps its next op onto kernel actions.
    fn task_step(&mut self, event: TaskEvent, ctx: &mut dyn UserCtx) -> Action {
        let op = self
            .cur
            .as_mut()
            .expect("task_step with a current task")
            .body
            .step(event);
        match op {
            TaskOp::Compute(d) => {
                self.state = WState::TaskRun(TaskEvent::ComputeDone);
                Action::Compute(d)
            }
            TaskOp::Lock(l) => {
                self.state = WState::TaskRun(TaskEvent::Locked);
                Action::AcquireLock(l)
            }
            TaskOp::Unlock(l) => {
                self.state = WState::TaskRun(TaskEvent::Unlocked);
                Action::ReleaseLock(l)
            }
            TaskOp::Spawn(t) => self.qlock_for(QOp::Spawn(Some(t)), ctx),
            TaskOp::Barrier(b) => self.qlock_for(QOp::Barrier(b), ctx),
            TaskOp::Send(c, v) => self.qlock_for(QOp::Send(c, v), ctx),
            TaskOp::Recv(c) => self.qlock_for(QOp::Recv(c), ctx),
            TaskOp::Requeue => self.qlock_for(QOp::Requeue, ctx),
            TaskOp::Done => self.qlock_for(QOp::Finish, ctx),
        }
    }

    /// Task-side queue operations bypass CR admission: a mid-task worker
    /// is (or was, until a rotation) a slot holder, and parking a worker
    /// that carries an in-flight task would strand the task. The bounded
    /// active set keeps these contenders few.
    fn qlock_for(&mut self, op: QOp, ctx: &mut dyn UserCtx) -> Action {
        let qlock = self.shared.borrow().qlock;
        self.qlock_req = Some(ctx.now());
        self.state = WState::TaskQLock(op);
        Action::AcquireLock(qlock)
    }

    /// Records how long the worker waited for the queue lock it now
    /// holds, and feeds the wait to the CR lock's adaptive policy.
    fn note_qlock_acquired(&mut self, ctx: &mut dyn UserCtx) {
        if let Some(since) = self.qlock_req.take() {
            let waited = ctx.now().since(since);
            let mut sh = self.shared.borrow_mut();
            let queue_op = sh.cfg.queue_op;
            if let Some(cr) = &mut sh.cr {
                cr.observe_wait(waited, queue_op);
            }
            sh.spans
                .push(ctx.now(), ctx.my_pid(), SpanKind::QueueLockWait { waited });
        }
    }

    /// Continuation after a dequeue's lock release (and any promotion
    /// signal): start the dequeued task, or return to the safe point when
    /// another worker won the race for the last task.
    fn after_dequeue_unlock(&mut self, ctx: &mut dyn UserCtx) -> Action {
        match self.pending.take() {
            Some((task, ev)) => {
                self.cur = Some(task);
                self.shared
                    .borrow_mut()
                    .spans
                    .push(ctx.now(), ctx.my_pid(), SpanKind::TaskStart);
                self.task_step(ev, ctx)
            }
            None => self.safe_point(ctx),
        }
    }

    /// Applies a queue operation (caller holds the queue lock) and returns
    /// what to do after the release.
    fn apply_qop(&mut self, op: QOp, now: SimTime, pid: Pid) -> Resume {
        let mut sh = self.shared.borrow_mut();
        match op {
            QOp::Spawn(t) => {
                sh.push_task(t.expect("spawned task present"));
                Resume::Event(TaskEvent::Spawned)
            }
            QOp::Barrier(b) => {
                let needed = sh.barriers[b.0 as usize].needed;
                let arrived = sh.barriers[b.0 as usize].arrived + 1;
                if arrived == needed {
                    // Last arriver: release everyone and pass through.
                    let parked = std::mem::take(&mut sh.barriers[b.0 as usize].parked);
                    for t in parked {
                        sh.queue.push_back((t, TaskEvent::BarrierPassed));
                    }
                    sh.barriers[b.0 as usize].arrived = 0;
                    Resume::Event(TaskEvent::BarrierPassed)
                } else {
                    sh.barriers[b.0 as usize].arrived = arrived;
                    let t = self.cur.take().expect("barrier from a running task");
                    sh.barriers[b.0 as usize].parked.push(t);
                    sh.spans
                        .push(now, pid, SpanKind::TaskEnd { finished: false });
                    Resume::ToSafe
                }
            }
            QOp::Send(c, v) => {
                let chan = &mut sh.channels[c.0 as usize];
                if let Some(t) = chan.parked.pop() {
                    sh.queue.push_back((t, TaskEvent::Received(v)));
                } else {
                    chan.values.push_back(v);
                }
                Resume::Event(TaskEvent::Sent)
            }
            QOp::Recv(c) => {
                let chan = &mut sh.channels[c.0 as usize];
                if let Some(v) = chan.values.pop_front() {
                    Resume::Event(TaskEvent::Received(v))
                } else {
                    let t = self.cur.take().expect("recv from a running task");
                    sh.channels[c.0 as usize].parked.push(t);
                    sh.spans
                        .push(now, pid, SpanKind::TaskEnd { finished: false });
                    Resume::ToSafe
                }
            }
            QOp::Requeue => {
                let t = self.cur.take().expect("requeue from a running task");
                sh.queue.push_back((t, TaskEvent::Requeued));
                sh.spans
                    .push(now, pid, SpanKind::TaskEnd { finished: false });
                Resume::ToSafe
            }
            QOp::Finish => {
                sh.outstanding -= 1;
                sh.metrics.tasks_run += 1;
                self.cur = None;
                sh.spans
                    .push(now, pid, SpanKind::TaskEnd { finished: true });
                Resume::ToSafe
            }
        }
    }
}

impl Behavior for Worker {
    fn step(&mut self, wakeup: Wakeup, ctx: &mut dyn UserCtx) -> Action {
        // Taking the state out keeps the borrow checker happy with the
        // payload-carrying variants.
        let state = std::mem::replace(&mut self.state, WState::BootSpawn);
        match (state, wakeup) {
            (_, Wakeup::Start) => {
                if self.is_root {
                    // Install the control block (the root's pid is only
                    // known now) and, in centralized mode, register with
                    // the server.
                    let reg = {
                        let mut sh = self.shared.borrow_mut();
                        if let Some(params) = sh.cfg.control {
                            let nprocs = sh.cfg.nprocs;
                            let (server_port, reply_port) = match params.mode {
                                ControlMode::Centralized { server_port } => (
                                    server_port,
                                    self.reply_port.expect("control requires a reply port"),
                                ),
                                // The decentralized variant never talks to
                                // anyone; the ports are placeholders.
                                ControlMode::Decentralized { .. } => {
                                    (simkernel::PortId(u32::MAX), simkernel::PortId(u32::MAX))
                                }
                            };
                            let mut ctl = ClientControl::new(
                                server_port,
                                reply_port,
                                ctx.my_pid(),
                                nprocs,
                                params.poll_interval,
                            );
                            // First poll one interval after startup, as in
                            // the paper.
                            ctl.claim_poll(ctx.now());
                            let msg = match params.mode {
                                ControlMode::Centralized { .. } if params.weight_milli != 1_000 => {
                                    Some((
                                        ctl.server_port,
                                        procctl::encode_register_weighted(
                                            ctx.my_pid(),
                                            ctl.reply_port,
                                            params.weight_milli,
                                        ),
                                    ))
                                }
                                ControlMode::Centralized { .. } => {
                                    Some((ctl.server_port, ctl.register_msg()))
                                }
                                ControlMode::Decentralized { .. } => None,
                            };
                            sh.control = Some(ctl);
                            msg
                        } else {
                            None
                        }
                    };
                    match reg {
                        Some((port, msg)) => {
                            self.state = WState::Boot;
                            Action::Send(port, msg)
                        }
                        None => self.boot_next(ctx),
                    }
                } else {
                    self.safe_point(ctx)
                }
            }
            (WState::Boot, Wakeup::Sent) => self.boot_next(ctx),
            (WState::BootSpawn, Wakeup::Spawned(_)) => {
                self.spawned += 1;
                self.boot_next(ctx)
            }
            (WState::Suspending, Wakeup::Resumed) => {
                self.shared
                    .borrow_mut()
                    .spans
                    .push(ctx.now(), ctx.my_pid(), SpanKind::SuspendExit);
                self.safe_point(ctx)
            }
            (WState::ResumeSignal, Wakeup::SignalSent) => self.safe_point(ctx),
            (WState::PollSend, Wakeup::Sent) => {
                self.state = WState::PollRecv;
                Action::Recv(self.reply_port.expect("polling requires a reply port"))
            }
            (WState::PollRecv, Wakeup::Received(m)) => {
                let mut sh = self.shared.borrow_mut();
                sh.poll_in_flight = false;
                let ctl = sh.control.as_mut().expect("poll reply without control");
                let ok = ctl.apply_reply(&m);
                debug_assert!(ok, "malformed target reply");
                let target = ctl.target();
                sh.spans
                    .push(ctx.now(), ctx.my_pid(), SpanKind::TargetApplied { target });
                drop(sh);
                self.safe_point(ctx)
            }
            (WState::DequeueLock, Wakeup::LockAcquired(_)) => {
                self.note_qlock_acquired(ctx);
                let d = self.shared.borrow().cfg.queue_op;
                self.state = WState::DequeueCrit;
                Action::Compute(d)
            }
            (WState::DequeueCrit, Wakeup::ComputeDone) => {
                let mut sh = self.shared.borrow_mut();
                self.pending = sh.queue.pop_front();
                let qlock = sh.qlock;
                drop(sh);
                self.state = WState::DequeueUnlock;
                Action::ReleaseLock(qlock)
            }
            (WState::DequeueUnlock, Wakeup::LockReleased(_)) => {
                if let Some(pid) = self.cr_unlock(ctx) {
                    self.state = WState::CrPromoteDequeue;
                    return Action::SendSignal(pid);
                }
                self.after_dequeue_unlock(ctx)
            }
            (WState::CrPromoteDequeue, Wakeup::SignalSent) => self.after_dequeue_unlock(ctx),
            (WState::TaskRun(ev), w) => {
                debug_assert!(matches!(
                    (&ev, &w),
                    (TaskEvent::ComputeDone, Wakeup::ComputeDone)
                        | (TaskEvent::Locked, Wakeup::LockAcquired(_))
                        | (TaskEvent::Unlocked, Wakeup::LockReleased(_))
                ));
                let _ = w;
                self.task_step(ev, ctx)
            }
            (WState::TaskQLock(op), Wakeup::LockAcquired(_)) => {
                self.note_qlock_acquired(ctx);
                let d = self.shared.borrow().cfg.queue_op;
                self.state = WState::TaskQCrit(op);
                Action::Compute(d)
            }
            (WState::TaskQCrit(op), Wakeup::ComputeDone) => {
                let resume = self.apply_qop(op, ctx.now(), ctx.my_pid());
                let qlock = self.shared.borrow().qlock;
                self.state = WState::TaskQUnlock(resume);
                Action::ReleaseLock(qlock)
            }
            (WState::TaskQUnlock(resume), Wakeup::LockReleased(_)) => match resume {
                Resume::Event(ev) => self.task_step(ev, ctx),
                Resume::ToSafe => self.safe_point(ctx),
            },
            (WState::CrParkedDequeue, Wakeup::Resumed) => {
                // Woken holding a slot: promoted into the circulating
                // workforce, or granted a slot by the shutdown drain.
                // Rejoin the process-control active count, then dequeue —
                // or, when the queue emptied (or the run finished) while
                // this worker was parked, give the slot straight back and
                // fall into the normal safe-point flow, which idles or
                // heads for the exit path.
                self.cr_slot = true;
                let dequeue = {
                    let mut sh = self.shared.borrow_mut();
                    sh.active += 1;
                    if sh.done || sh.queue.is_empty() {
                        sh.cr
                            .as_mut()
                            .expect("CR wakeup without CR state")
                            .release_slot();
                        self.cr_slot = false;
                        None
                    } else {
                        Some(sh.qlock)
                    }
                };
                match dequeue {
                    None => self.safe_point(ctx),
                    Some(qlock) => {
                        self.qlock_req = Some(ctx.now());
                        self.state = WState::DequeueLock;
                        Action::AcquireLock(qlock)
                    }
                }
            }
            (WState::IdleSpin, Wakeup::ComputeDone) => self.safe_point(ctx),
            (WState::DecentSample, Wakeup::ComputeDone) => {
                let stats = ctx.rpstat();
                let ncpus = ctx.num_cpus();
                let mut sh = self.shared.borrow_mut();
                let nprocs = sh.cfg.nprocs;
                // No registry: estimate the fair share and cap it at our
                // own process count.
                let est =
                    procctl::decentralized_target(&stats, simkernel::AppId(0), ncpus).min(nprocs);
                sh.control
                    .as_mut()
                    .expect("decentralized control")
                    .set_target(est);
                sh.spans.push(
                    ctx.now(),
                    ctx.my_pid(),
                    SpanKind::TargetApplied { target: est },
                );
                drop(sh);
                self.safe_point(ctx)
            }
            (WState::SendBye, Wakeup::Sent) => {
                let mut sh = self.shared.borrow_mut();
                // `done` is already set; head straight for the exit path.
                debug_assert!(sh.done);
                Self::die(&mut self.state, &mut self.cr_slot, &mut sh)
            }
            (WState::Dying, Wakeup::SignalSent) => {
                let mut sh = self.shared.borrow_mut();
                Self::die(&mut self.state, &mut self.cr_slot, &mut sh)
            }
            (state, wakeup) => {
                unreachable!("worker: unexpected wakeup {wakeup:?} in state {state:?}")
            }
        }
    }
}
