//! Span events: what each worker was doing, and when.
//!
//! The workers append timestamped records to a per-application [`SpanLog`]
//! at the package's own state transitions — task pickup/finish, suspension
//! enter/exit, queue-lock waits, and control polls. Harnesses read the log
//! back to build Perfetto tracks and to measure the latency the paper's
//! Figure 5 claim rests on: how long after a poll applies a new target does
//! the application actually reach it ([`poll_to_convergence`]).

use desim::{SimDur, SimTime};
use simkernel::Pid;

/// What happened at a span boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A worker picked a task off the ready queue and started executing it.
    TaskStart,
    /// The worker put its current task down: `finished` tasks completed,
    /// unfinished ones parked at a barrier/channel or requeued.
    TaskEnd {
        /// True when the task ran to completion.
        finished: bool,
    },
    /// The worker suspended itself at a safe point (process control).
    SuspendEnter,
    /// The worker was resumed by a colleague's signal.
    SuspendExit,
    /// The worker acquired the queue lock after waiting `waited` for it
    /// (the spin time degradation mechanism #1 is made of).
    QueueLockWait {
        /// Time from requesting the queue lock to holding it.
        waited: SimDur,
    },
    /// The worker issued a poll to the control server (or started a
    /// decentralized rpstat sweep).
    PollSent,
    /// A target from the server (or a decentralized estimate) was applied
    /// to the application's control block.
    TargetApplied {
        /// The new target number of runnable processes.
        target: u32,
    },
    /// The concurrency-restricting queue lock culled the worker: the
    /// active set was full, so it parked instead of joining the spin.
    CrCull,
    /// The worker was promoted from the CR lock's passive list (it wakes
    /// holding an admission slot handed over by the releaser).
    CrPromote,
}

/// One timestamped span record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// When it happened.
    pub time: SimTime,
    /// The worker process.
    pub pid: Pid,
    /// What happened.
    pub kind: SpanKind,
}

/// A log of span records for one application — the simulation's mirror
/// of `native-rt`'s flight-recorder ring. Unbounded by default (the
/// figure harnesses replay full histories); [`SpanLog::bounded`] gives
/// it flight-recorder semantics: a fixed capacity where the oldest
/// record is dropped (and counted) to admit the newest.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    records: std::collections::VecDeque<SpanRecord>,
    /// Maximum records retained; 0 = unbounded.
    capacity: usize,
    dropped: u64,
}

impl SpanLog {
    /// A bounded log holding at most `capacity` records (0 = unbounded).
    pub fn bounded(capacity: usize) -> Self {
        SpanLog {
            records: std::collections::VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest at capacity.
    pub(crate) fn push(&mut self, time: SimTime, pid: Pid, kind: SpanKind) {
        if self.capacity != 0 && self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(SpanRecord { time, pid, kind });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.iter().copied().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// How many records were evicted to make room (0 when unbounded).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Poll-to-convergence latencies: for each applied target that differed
/// from the application's active worker count at that moment, how long the
/// package took to actually reach it (by workers suspending or resuming at
/// safe points). Targets superseded before convergence are dropped —
/// exactly the cases where the server moved the goalposts mid-adjustment.
///
/// `initial_active` is the worker count at launch (`nprocs`).
pub fn poll_to_convergence(records: &[SpanRecord], initial_active: u32) -> Vec<(SimTime, SimDur)> {
    let mut active = initial_active;
    let mut pending: Option<(SimTime, u32)> = None;
    let mut out = Vec::new();
    for r in records {
        match r.kind {
            SpanKind::SuspendEnter => active -= 1,
            SpanKind::SuspendExit => active += 1,
            SpanKind::TargetApplied { target } => {
                if target == active {
                    pending = None;
                } else {
                    pending = Some((r.time, target));
                }
                continue;
            }
            _ => continue,
        }
        if let Some((since, target)) = pending {
            if active == target {
                out.push((since, r.time.since(since)));
                pending = None;
            }
        }
    }
    out
}

/// Wake-to-run latencies: for each resumed worker, the time from its
/// [`SpanKind::SuspendExit`] to its next [`SpanKind::TaskStart`] — the
/// simulated twin of the native runtime's `wake_to_run_ns` histogram
/// (how long a worker sat runnable after a resume decision before doing
/// useful work). A worker resumed again before ever starting a task
/// restarts its clock; a worker that never runs again contributes
/// nothing.
pub fn wake_to_run(records: &[SpanRecord]) -> Vec<(Pid, SimTime, SimDur)> {
    let mut pending: std::collections::BTreeMap<u32, SimTime> = Default::default();
    let mut out = Vec::new();
    for r in records {
        match r.kind {
            SpanKind::SuspendExit => {
                pending.insert(r.pid.0, r.time);
            }
            SpanKind::TaskStart => {
                if let Some(woke) = pending.remove(&r.pid.0) {
                    out.push((r.pid, woke, r.time.since(woke)));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            time: SimTime::ZERO + SimDur::from_millis(ms),
            pid: Pid(0),
            kind,
        }
    }

    #[test]
    fn convergence_measures_suspension_lag() {
        let records = vec![
            rec(100, SpanKind::TargetApplied { target: 2 }),
            rec(150, SpanKind::SuspendEnter),
            rec(300, SpanKind::SuspendEnter),
            rec(900, SpanKind::TargetApplied { target: 4 }),
            rec(950, SpanKind::SuspendExit),
            rec(980, SpanKind::SuspendExit),
        ];
        let c = poll_to_convergence(&records, 4);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].0, SimTime::ZERO + SimDur::from_millis(100));
        assert_eq!(c[0].1, SimDur::from_millis(200));
        assert_eq!(c[1].1, SimDur::from_millis(80));
    }

    #[test]
    fn superseded_targets_are_dropped() {
        let records = vec![
            rec(100, SpanKind::TargetApplied { target: 1 }),
            rec(150, SpanKind::SuspendEnter),
            // New target before the first converged: only this one counts.
            rec(200, SpanKind::TargetApplied { target: 4 }),
            rec(250, SpanKind::SuspendExit),
        ];
        let c = poll_to_convergence(&records, 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].1, SimDur::from_millis(50));
    }

    #[test]
    fn already_met_targets_produce_no_entry() {
        let records = vec![rec(100, SpanKind::TargetApplied { target: 4 })];
        assert!(poll_to_convergence(&records, 4).is_empty());
    }

    #[test]
    fn bounded_log_drops_oldest_and_counts() {
        let mut log = SpanLog::bounded(3);
        for ms in 0..5 {
            log.push(
                SimTime::ZERO + SimDur::from_millis(ms),
                Pid(0),
                SpanKind::TaskStart,
            );
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let times: Vec<SimTime> = log.records().iter().map(|r| r.time).collect();
        // Survivors are the newest three, oldest first.
        assert_eq!(
            times,
            (2..5)
                .map(|ms| SimTime::ZERO + SimDur::from_millis(ms))
                .collect::<Vec<_>>()
        );
        // Unbounded (the default) never drops.
        let mut unbounded = SpanLog::default();
        for ms in 0..100 {
            unbounded.push(
                SimTime::ZERO + SimDur::from_millis(ms),
                Pid(0),
                SpanKind::TaskStart,
            );
        }
        assert_eq!(unbounded.len(), 100);
        assert_eq!(unbounded.dropped(), 0);
    }

    fn prec(ms: u64, pid: u32, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            time: SimTime::ZERO + SimDur::from_millis(ms),
            pid: Pid(pid),
            kind,
        }
    }

    #[test]
    fn wake_to_run_pairs_resume_with_next_task_start_per_pid() {
        let records = vec![
            prec(100, 1, SpanKind::SuspendExit),
            // Another pid's task start must not consume pid 1's pending
            // wake.
            prec(120, 2, SpanKind::TaskStart),
            prec(150, 1, SpanKind::TaskStart),
            // A wake that never runs again contributes nothing.
            prec(200, 3, SpanKind::SuspendExit),
            // A second resume of pid 1 restarts its clock.
            prec(300, 1, SpanKind::SuspendExit),
            prec(310, 1, SpanKind::SuspendExit),
            prec(340, 1, SpanKind::TaskStart),
        ];
        let w = wake_to_run(&records);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, Pid(1));
        assert_eq!(w[0].2, SimDur::from_millis(50));
        assert_eq!(w[1].2, SimDur::from_millis(30));
    }
}
