//! Span events: what each worker was doing, and when.
//!
//! The workers append timestamped records to a per-application [`SpanLog`]
//! at the package's own state transitions — task pickup/finish, suspension
//! enter/exit, queue-lock waits, and control polls. Harnesses read the log
//! back to build Perfetto tracks and to measure the latency the paper's
//! Figure 5 claim rests on: how long after a poll applies a new target does
//! the application actually reach it ([`poll_to_convergence`]).

use desim::{SimDur, SimTime};
use simkernel::Pid;

/// What happened at a span boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A worker picked a task off the ready queue and started executing it.
    TaskStart,
    /// The worker put its current task down: `finished` tasks completed,
    /// unfinished ones parked at a barrier/channel or requeued.
    TaskEnd {
        /// True when the task ran to completion.
        finished: bool,
    },
    /// The worker suspended itself at a safe point (process control).
    SuspendEnter,
    /// The worker was resumed by a colleague's signal.
    SuspendExit,
    /// The worker acquired the queue lock after waiting `waited` for it
    /// (the spin time degradation mechanism #1 is made of).
    QueueLockWait {
        /// Time from requesting the queue lock to holding it.
        waited: SimDur,
    },
    /// The worker issued a poll to the control server (or started a
    /// decentralized rpstat sweep).
    PollSent,
    /// A target from the server (or a decentralized estimate) was applied
    /// to the application's control block.
    TargetApplied {
        /// The new target number of runnable processes.
        target: u32,
    },
}

/// One timestamped span record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// When it happened.
    pub time: SimTime,
    /// The worker process.
    pub pid: Pid,
    /// What happened.
    pub kind: SpanKind,
}

/// An append-only log of span records for one application.
#[derive(Clone, Debug, Default)]
pub struct SpanLog {
    records: Vec<SpanRecord>,
}

impl SpanLog {
    /// Appends a record.
    pub(crate) fn push(&mut self, time: SimTime, pid: Pid, kind: SpanKind) {
        self.records.push(SpanRecord { time, pid, kind });
    }

    /// All records in emission order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Poll-to-convergence latencies: for each applied target that differed
/// from the application's active worker count at that moment, how long the
/// package took to actually reach it (by workers suspending or resuming at
/// safe points). Targets superseded before convergence are dropped —
/// exactly the cases where the server moved the goalposts mid-adjustment.
///
/// `initial_active` is the worker count at launch (`nprocs`).
pub fn poll_to_convergence(records: &[SpanRecord], initial_active: u32) -> Vec<(SimTime, SimDur)> {
    let mut active = initial_active;
    let mut pending: Option<(SimTime, u32)> = None;
    let mut out = Vec::new();
    for r in records {
        match r.kind {
            SpanKind::SuspendEnter => active -= 1,
            SpanKind::SuspendExit => active += 1,
            SpanKind::TargetApplied { target } => {
                if target == active {
                    pending = None;
                } else {
                    pending = Some((r.time, target));
                }
                continue;
            }
            _ => continue,
        }
        if let Some((since, target)) = pending {
            if active == target {
                out.push((since, r.time.since(since)));
                pending = None;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, kind: SpanKind) -> SpanRecord {
        SpanRecord {
            time: SimTime::ZERO + SimDur::from_millis(ms),
            pid: Pid(0),
            kind,
        }
    }

    #[test]
    fn convergence_measures_suspension_lag() {
        let records = vec![
            rec(100, SpanKind::TargetApplied { target: 2 }),
            rec(150, SpanKind::SuspendEnter),
            rec(300, SpanKind::SuspendEnter),
            rec(900, SpanKind::TargetApplied { target: 4 }),
            rec(950, SpanKind::SuspendExit),
            rec(980, SpanKind::SuspendExit),
        ];
        let c = poll_to_convergence(&records, 4);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].0, SimTime::ZERO + SimDur::from_millis(100));
        assert_eq!(c[0].1, SimDur::from_millis(200));
        assert_eq!(c[1].1, SimDur::from_millis(80));
    }

    #[test]
    fn superseded_targets_are_dropped() {
        let records = vec![
            rec(100, SpanKind::TargetApplied { target: 1 }),
            rec(150, SpanKind::SuspendEnter),
            // New target before the first converged: only this one counts.
            rec(200, SpanKind::TargetApplied { target: 4 }),
            rec(250, SpanKind::SuspendExit),
        ];
        let c = poll_to_convergence(&records, 4);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].1, SimDur::from_millis(50));
    }

    #[test]
    fn already_met_targets_produce_no_entry() {
        let records = vec![rec(100, SpanKind::TargetApplied { target: 4 })];
        assert!(poll_to_convergence(&records, 4).is_empty());
    }
}
