//! User-level tasks ("threads" in Brown-threads terminology).
//!
//! A task is a chunk of the application's computation, scheduled onto
//! kernel processes in a coroutine-like manner by the worker loop. Tasks
//! express their work as a state machine over [`TaskOp`]s, mirroring how
//! the kernel drives processes — but these operations are *user-level*:
//! barriers and channels are implemented by the threads package in shared
//! memory (under the package's queue lock), not by the kernel.

use desim::SimDur;
use simkernel::LockId;

/// Identifies a user-level barrier within an application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BarrierId(pub u32);

/// Identifies a user-level channel within an application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChanId(pub u32);

/// What a task does next.
#[derive(Debug)]
pub enum TaskOp {
    /// Compute for the given duration.
    Compute(SimDur),
    /// Acquire an application-level spinlock (a kernel-simulated lock the
    /// harness created; contenders busy-wait).
    Lock(LockId),
    /// Release an application-level spinlock.
    Unlock(LockId),
    /// Wait at a barrier until all participants arrive. The task is parked
    /// (its worker picks up other work); the last arriver releases everyone.
    Barrier(BarrierId),
    /// Send a value on a channel (never blocks).
    Send(ChanId, u64),
    /// Receive a value from a channel; parks the task until one arrives.
    Recv(ChanId),
    /// Create a new task and add it to the ready queue.
    Spawn(Task),
    /// Put this task back on the ready queue and release the worker — the
    /// paper's parenthetical safe point: "a process can be safely
    /// suspended after it has finished executing a task *(or has put it
    /// back on the queue)*". Long-running tasks requeue periodically so
    /// their worker passes a suspension point.
    Requeue,
    /// The task is finished.
    Done,
}

/// Why a task is being stepped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskEvent {
    /// First step.
    Start,
    /// The previous [`TaskOp::Compute`] finished.
    ComputeDone,
    /// The lock was acquired.
    Locked,
    /// The lock was released.
    Unlocked,
    /// The barrier opened.
    BarrierPassed,
    /// The send completed.
    Sent,
    /// A value arrived.
    Received(u64),
    /// The spawned task was enqueued.
    Spawned,
    /// The task was picked back up after a [`TaskOp::Requeue`].
    Requeued,
}

/// A task body: the application-defined state machine.
pub trait TaskBody {
    /// Advances the task; called with the event that resumed it.
    fn step(&mut self, event: TaskEvent) -> TaskOp;
}

/// A schedulable task.
pub struct Task {
    /// The application-defined body.
    pub body: Box<dyn TaskBody>,
    /// Free-form label for traces and debugging.
    pub label: &'static str,
}

impl Task {
    /// Wraps a body into a task.
    pub fn new(label: &'static str, body: Box<dyn TaskBody>) -> Self {
        Task { body, label }
    }

    /// A task that computes once and finishes — the workhorse of
    /// embarrassingly parallel workloads.
    pub fn compute(label: &'static str, dur: SimDur) -> Self {
        Task::new(
            label,
            Box::new(ComputeBody {
                dur,
                started: false,
            }),
        )
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Task({})", self.label)
    }
}

struct ComputeBody {
    dur: SimDur,
    started: bool,
}

impl TaskBody for ComputeBody {
    fn step(&mut self, event: TaskEvent) -> TaskOp {
        match event {
            TaskEvent::Start => {
                self.started = true;
                TaskOp::Compute(self.dur)
            }
            TaskEvent::ComputeDone => TaskOp::Done,
            other => unreachable!("compute task got {other:?}"),
        }
    }
}

/// A task driven by a closure — convenient for workload builders.
pub struct FnTask<F>(pub F);

impl<F> TaskBody for FnTask<F>
where
    F: FnMut(TaskEvent) -> TaskOp,
{
    fn step(&mut self, event: TaskEvent) -> TaskOp {
        (self.0)(event)
    }
}

/// A task that performs a fixed list of operations in order, then finishes.
pub struct OpsBody {
    ops: std::collections::VecDeque<TaskOp>,
}

impl OpsBody {
    /// Creates the body from an op list.
    pub fn new(ops: Vec<TaskOp>) -> Self {
        OpsBody { ops: ops.into() }
    }
}

impl TaskBody for OpsBody {
    fn step(&mut self, _event: TaskEvent) -> TaskOp {
        self.ops.pop_front().unwrap_or(TaskOp::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_task_runs_once() {
        let mut t = Task::compute("t", SimDur::from_millis(1));
        match t.body.step(TaskEvent::Start) {
            TaskOp::Compute(d) => assert_eq!(d, SimDur::from_millis(1)),
            other => panic!("expected compute, got {other:?}"),
        }
        assert!(matches!(t.body.step(TaskEvent::ComputeDone), TaskOp::Done));
    }

    #[test]
    fn ops_body_plays_list() {
        let mut b = OpsBody::new(vec![
            TaskOp::Compute(SimDur::from_micros(1)),
            TaskOp::Barrier(BarrierId(0)),
        ]);
        assert!(matches!(b.step(TaskEvent::Start), TaskOp::Compute(_)));
        assert!(matches!(b.step(TaskEvent::ComputeDone), TaskOp::Barrier(_)));
        assert!(matches!(b.step(TaskEvent::BarrierPassed), TaskOp::Done));
    }

    #[test]
    fn fn_task_closures_work() {
        let mut calls = 0;
        let mut b = FnTask(move |_| {
            calls += 1;
            if calls == 1 {
                TaskOp::Compute(SimDur::from_micros(5))
            } else {
                TaskOp::Done
            }
        });
        assert!(matches!(b.step(TaskEvent::Start), TaskOp::Compute(_)));
        assert!(matches!(b.step(TaskEvent::ComputeDone), TaskOp::Done));
    }
}
