//! Launching a threads-package application onto the simulated kernel.

use std::cell::RefCell;
use std::rc::Rc;

use simkernel::{AppId, Kernel, Pid, PortId};

use crate::shared::{AppMetrics, AppShared, ThreadsConfig};
use crate::task::{BarrierId, ChanId, Task};
use crate::worker::Worker;

/// Everything an application needs besides its worker configuration: the
/// initial tasks and any barriers/channels the tasks reference.
pub struct AppSpec {
    /// Tasks enqueued before the first worker starts.
    pub tasks: Vec<Task>,
    /// Barrier participant counts; `BarrierId(i)` refers to entry `i`.
    pub barriers: Vec<u32>,
    /// Number of channels; `ChanId(i)` refers to channel `i`.
    pub channels: u32,
}

impl AppSpec {
    /// A spec with only initial tasks.
    pub fn tasks(tasks: Vec<Task>) -> Self {
        AppSpec {
            tasks,
            barriers: Vec::new(),
            channels: 0,
        }
    }

    /// Adds a barrier, returning its id.
    pub fn add_barrier(&mut self, participants: u32) -> BarrierId {
        assert!(participants >= 1, "a barrier needs a participant");
        self.barriers.push(participants);
        BarrierId((self.barriers.len() - 1) as u32)
    }

    /// Adds a channel, returning its id.
    pub fn add_channel(&mut self) -> ChanId {
        let id = ChanId(self.channels);
        self.channels += 1;
        id
    }
}

/// Handle to a launched application.
pub struct ThreadsApp {
    /// The kernel-level application id.
    pub app: AppId,
    /// The root process.
    pub root: Pid,
    /// The control reply mailbox, if process control is enabled.
    pub reply_port: Option<PortId>,
    shared: Rc<RefCell<AppShared>>,
}

impl ThreadsApp {
    /// Package counters (suspends, resumes, polls, idle time, tasks run).
    pub fn metrics(&self) -> AppMetrics {
        self.shared.borrow().metrics()
    }

    /// Current number of non-suspended workers.
    pub fn active(&self) -> u32 {
        self.shared.borrow().active()
    }

    /// Whether the application has finished all tasks.
    pub fn is_done(&self) -> bool {
        self.shared.borrow().is_done()
    }

    /// The latest process-control target, if control is enabled.
    pub fn target(&self) -> Option<u32> {
        self.shared.borrow().target()
    }

    /// The CR queue lock's current active-set bound, if CR is enabled.
    pub fn cr_active_max(&self) -> Option<u32> {
        self.shared.borrow().cr_active_max()
    }

    /// A copy of the span records emitted so far (task pickup/finish,
    /// suspension enter/exit, queue-lock waits, control polls).
    pub fn spans(&self) -> Vec<crate::span::SpanRecord> {
        self.shared.borrow().spans().records()
    }

    /// Poll-to-convergence latencies observed so far: how long after each
    /// applied target the application reached it. See
    /// [`crate::poll_to_convergence`].
    pub fn convergence(&self) -> Vec<(desim::SimTime, desim::SimDur)> {
        let sh = self.shared.borrow();
        let records = sh.spans().records();
        crate::span::poll_to_convergence(&records, sh.nprocs())
    }
}

/// Launches an application onto the kernel: creates its queue lock and
/// reply mailbox, seeds the ready queue, and spawns the root worker (which
/// registers with the server and spawns the remaining `nprocs - 1`
/// workers itself).
pub fn launch(kernel: &mut Kernel, app: AppId, cfg: ThreadsConfig, spec: AppSpec) -> ThreadsApp {
    let qlock = kernel.create_lock();
    let reply_port = cfg.control.as_ref().map(|_| kernel.create_port());
    let ws = cfg.ws_lines;
    let mut shared = AppShared::new(cfg, qlock);
    for task in spec.tasks {
        shared.push_task(task);
    }
    for needed in spec.barriers {
        shared.barriers.push(crate::shared::BarrierState {
            needed,
            arrived: 0,
            parked: Vec::new(),
        });
    }
    for _ in 0..spec.channels {
        shared.channels.push(crate::shared::ChanState::default());
    }
    let shared = Rc::new(RefCell::new(shared));
    let root_worker = Worker::new(shared.clone(), true, reply_port);
    let root = kernel.spawn_root(app, ws, Box::new(root_worker));
    ThreadsApp {
        app,
        root,
        reply_port,
        shared,
    }
}
