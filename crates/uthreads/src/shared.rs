//! The application's shared memory, as seen by the threads package.
//!
//! Everything here corresponds to state the Brown threads package keeps in
//! the (real) shared address space of an application's processes: the
//! ready queue of tasks, barrier and channel state, and — with process
//! control enabled — the control block consulted at safe suspension
//! points. The simulation executes one process step at a time, so a plain
//! `RefCell` models shared memory; the *timing* of contended access is
//! modeled by the queue spinlock the workers take around every queue
//! operation.

use std::collections::VecDeque;

use desim::SimDur;
use procctl::ClientControl;
use simkernel::{LockId, Pid};

use crate::span::SpanLog;
use crate::task::{Task, TaskEvent};

/// Package-level counters, kept per application.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppMetrics {
    /// Tasks executed to completion.
    pub tasks_run: u64,
    /// Times a worker suspended itself at a safe point.
    pub suspends: u64,
    /// Times a worker resumed a suspended colleague.
    pub resumes: u64,
    /// Server polls issued.
    pub polls: u64,
    /// Time workers spent in the idle loop waiting for work to appear.
    pub idle_spin: SimDur,
}

#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    pub needed: u32,
    pub arrived: u32,
    pub parked: Vec<Task>,
}

#[derive(Debug, Default)]
pub(crate) struct ChanState {
    pub values: VecDeque<u64>,
    pub parked: Vec<Task>,
}

/// Tuning of the threads package for one application.
#[derive(Clone, Debug)]
pub struct ThreadsConfig {
    /// Number of worker processes to create.
    pub nprocs: u32,
    /// Per-worker working-set size, in cache lines.
    pub ws_lines: u64,
    /// Time spent under the queue lock per queue operation (dequeue,
    /// enqueue, barrier arrival, channel operation). Smaller grain sizes
    /// make this relatively larger — the paper's "fine-grained systems"
    /// remark.
    pub queue_op: SimDur,
    /// How long an idle worker computes between ready-queue checks while
    /// other tasks are still outstanding (busy-wait slice).
    pub idle_spin: SimDur,
    /// Process-control parameters; `None` reproduces the unmodified
    /// package (the paper's dashed curves).
    pub control: Option<ControlParams>,
    /// Span-log capacity (records retained); 0 = unbounded. The figure
    /// harnesses replay full histories, so unbounded is the default;
    /// bounded logs mirror the native flight recorder's drop-oldest ring.
    pub span_capacity: usize,
}

/// How an application learns its target number of runnable processes.
#[derive(Clone, Copy, Debug)]
pub enum ControlMode {
    /// Poll the central server (the paper's chosen design).
    Centralized {
        /// The server's request mailbox.
        server_port: simkernel::PortId,
    },
    /// Sample `rpstat` directly and estimate a fair share with no central
    /// registry — the variant the paper tried first and rejected as "too
    /// inefficient" with "stability problems".
    Decentralized {
        /// Modeled CPU cost of each private `rpstat` sweep.
        rpstat_cost: SimDur,
    },
}

/// Process-control parameters for one application.
#[derive(Clone, Copy, Debug)]
pub struct ControlParams {
    /// Where targets come from.
    pub mode: ControlMode,
    /// Poll period (6 s in the paper).
    pub poll_interval: SimDur,
    /// Share weight in thousandths (1000 = the paper's equal priority).
    pub weight_milli: u32,
}

impl ThreadsConfig {
    /// A package configuration with paper-like defaults and no process
    /// control.
    pub fn new(nprocs: u32) -> Self {
        assert!(nprocs >= 1, "an application needs at least one process");
        ThreadsConfig {
            nprocs,
            ws_lines: 1_024,
            // A queue operation is a full user-level thread switch under
            // the scheduler spinlock — hundreds of microseconds on a
            // late-80s 2-MIPS processor.
            queue_op: SimDur::from_micros(800),
            idle_spin: SimDur::from_micros(500),
            control: None,
            span_capacity: 0,
        }
    }

    /// Enables process control through the given central-server port.
    pub fn with_control(mut self, server_port: simkernel::PortId, poll_interval: SimDur) -> Self {
        self.control = Some(ControlParams {
            mode: ControlMode::Centralized { server_port },
            poll_interval,
            weight_milli: 1_000,
        });
        self
    }

    /// Enables centralized process control with an explicit share weight
    /// (thousandths; 1000 = equal priority).
    pub fn with_weighted_control(
        mut self,
        server_port: simkernel::PortId,
        poll_interval: SimDur,
        weight_milli: u32,
    ) -> Self {
        assert!(weight_milli > 0, "zero weight would starve the application");
        self.control = Some(ControlParams {
            mode: ControlMode::Centralized { server_port },
            poll_interval,
            weight_milli,
        });
        self
    }

    /// Enables the decentralized (serverless) control variant.
    pub fn with_decentralized_control(
        mut self,
        poll_interval: SimDur,
        rpstat_cost: SimDur,
    ) -> Self {
        self.control = Some(ControlParams {
            mode: ControlMode::Decentralized { rpstat_cost },
            poll_interval,
            weight_milli: 1_000,
        });
        self
    }
}

/// The shared-memory block of one application.
pub struct AppShared {
    pub(crate) cfg: ThreadsConfig,
    /// The task ready queue; entries carry the event that resumes the task.
    pub(crate) queue: VecDeque<(Task, TaskEvent)>,
    /// Tasks created and not yet finished (queued, running, or parked).
    pub(crate) outstanding: u32,
    pub(crate) barriers: Vec<BarrierState>,
    pub(crate) channels: Vec<ChanState>,
    /// The spinlock protecting the queue and all package state.
    pub(crate) qlock: LockId,
    /// Workers not currently suspended.
    pub(crate) active: u32,
    /// Suspended workers, most recently suspended last.
    pub(crate) suspended: Vec<Pid>,
    /// Set by the worker that discovers the work is complete.
    pub(crate) done: bool,
    /// A poll request is outstanding (guards the single reply mailbox).
    pub(crate) poll_in_flight: bool,
    pub(crate) control: Option<ClientControl>,
    pub(crate) metrics: AppMetrics,
    /// Span events emitted by the workers (task/suspension/lock-wait/poll).
    pub(crate) spans: SpanLog,
}

impl AppShared {
    pub(crate) fn new(cfg: ThreadsConfig, qlock: LockId) -> Self {
        let active = cfg.nprocs;
        let spans = SpanLog::bounded(cfg.span_capacity);
        AppShared {
            cfg,
            queue: VecDeque::new(),
            outstanding: 0,
            barriers: Vec::new(),
            channels: Vec::new(),
            qlock,
            active,
            suspended: Vec::new(),
            done: false,
            poll_in_flight: false,
            control: None,
            metrics: AppMetrics::default(),
            spans,
        }
    }

    /// Enqueues a fresh task.
    pub(crate) fn push_task(&mut self, task: Task) {
        self.outstanding += 1;
        self.queue.push_back((task, TaskEvent::Start));
    }

    /// Current number of non-suspended workers.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Whether all tasks have finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Package counters.
    pub fn metrics(&self) -> AppMetrics {
        self.metrics
    }

    /// The latest process-control target, if control is enabled.
    pub fn target(&self) -> Option<u32> {
        self.control.as_ref().map(ClientControl::target)
    }

    /// The span log recorded so far.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// The configured worker count.
    pub fn nprocs(&self) -> u32 {
        self.cfg.nprocs
    }
}
