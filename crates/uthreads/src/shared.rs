//! The application's shared memory, as seen by the threads package.
//!
//! Everything here corresponds to state the Brown threads package keeps in
//! the (real) shared address space of an application's processes: the
//! ready queue of tasks, barrier and channel state, and — with process
//! control enabled — the control block consulted at safe suspension
//! points. The simulation executes one process step at a time, so a plain
//! `RefCell` models shared memory; the *timing* of contended access is
//! modeled by the queue spinlock the workers take around every queue
//! operation.

use std::collections::VecDeque;

use desim::SimDur;
use procctl::ClientControl;
use simkernel::{LockId, Pid};

use crate::span::SpanLog;
use crate::task::{Task, TaskEvent};

/// Package-level counters, kept per application.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppMetrics {
    /// Tasks executed to completion.
    pub tasks_run: u64,
    /// Times a worker suspended itself at a safe point.
    pub suspends: u64,
    /// Times a worker resumed a suspended colleague.
    pub resumes: u64,
    /// Server polls issued.
    pub polls: u64,
    /// Time workers spent in the idle loop waiting for work to appear.
    pub idle_spin: SimDur,
    /// Workers culled by the concurrency-restricting queue lock.
    pub cr_passivations: u64,
    /// Culled workers promoted back into the CR lock's active set.
    pub cr_promotions: u64,
}

#[derive(Debug, Default)]
pub(crate) struct BarrierState {
    pub needed: u32,
    pub arrived: u32,
    pub parked: Vec<Task>,
}

#[derive(Debug, Default)]
pub(crate) struct ChanState {
    pub values: VecDeque<u64>,
    pub parked: Vec<Task>,
}

/// Parameters of the concurrency-restricting (CR) queue lock — the
/// simulated twin of `native-rt`'s `CrLock`. With CR enabled, at most
/// `active_max` workers circulate through the run queue at a time; excess
/// arrivals are *culled* (parked on a passive list, awaiting a signal)
/// instead of piling onto the queue lock, so heavy overcommit degrades
/// into a small circulating workforce plus a crowd of descheduled
/// workers rather than a mob of spinners feeding lock-holder preemption.
#[derive(Clone, Copy, Debug)]
pub struct CrParams {
    /// Maximum workers admitted to the circulating set at once (≥ 1;
    /// clamped to the worker count at launch).
    pub active_max: u32,
    /// Fairness bound: every this many dequeues, the longest-parked
    /// passive worker swaps places with a circulating one, so the
    /// passive list cannot starve its oldest entry.
    pub promotion_interval: u64,
    /// Adapt `active_max` from observed queue-lock wait times: shrink
    /// when waits blow up past the critical-section cost (a preempted
    /// holder is being spun on), grow when the lock is quiet but workers
    /// sit culled.
    pub adaptive: bool,
}

impl CrParams {
    /// A fixed active set of `active_max` workers with the default
    /// promotion interval.
    pub fn fixed(active_max: u32) -> Self {
        assert!(active_max >= 1, "the active set needs at least one slot");
        CrParams {
            active_max,
            promotion_interval: 32,
            adaptive: false,
        }
    }

    /// Like [`CrParams::fixed`], but `active_max` adapts to observed
    /// queue-lock waits (starting from the given value).
    pub fn adaptive(active_max: u32) -> Self {
        CrParams {
            adaptive: true,
            ..CrParams::fixed(active_max)
        }
    }
}

/// What the worker that just released the dequeue lock should do with
/// its admission slot (see [`CrSimState::on_unlock`]).
#[derive(Debug)]
pub(crate) enum CrUnlock {
    /// Keep the slot and run the dequeued task.
    Keep,
    /// Adaptive shrink took effect: the caller's slot is gone. It runs
    /// its task slotless and re-competes at the next safe point.
    Drop,
    /// A vacancy exists: wake the returned worker with a fresh slot; the
    /// caller keeps its own.
    Fill(Pid),
    /// Fairness rotation: the caller's slot transfers to the returned
    /// worker; the caller runs its task slotless.
    Rotate(Pid),
}

/// Live state of the CR queue lock for one application.
///
/// The *slot* invariant: `active` counts workers holding an admission
/// slot. Slots are **sticky** — held across the whole dequeue → run-task
/// → next-dequeue cycle — so the active set is the application's
/// circulating workforce and the passive list is genuinely descheduled
/// (blocked, consuming no processor). Slots change hands only at
/// dequeue-unlock ([`CrSimState::on_unlock`]: vacancy fill, fairness
/// rotation, adaptive resize) and at the shutdown drain
/// ([`CrSimState::grant`]). Crucially, no hand-off sits on the lock's
/// critical path: a promotion wakes a worker into the *workforce*, not
/// into a just-released lock, so wakeup latency never stalls the queue.
#[derive(Debug)]
pub(crate) struct CrSimState {
    /// Current active-set bound (moves only when adaptive).
    pub active_max: u32,
    /// Workers currently holding an admission slot.
    pub active: u32,
    /// Culled workers, FIFO: the longest-parked worker is promoted
    /// first, so rotation bounds every entry's wait.
    pub passive: VecDeque<Pid>,
    /// Dequeues completed — the rotation clock.
    dequeues: u64,
    /// Rotation clock reading at the last fairness rotation.
    last_rotation: u64,
    params: CrParams,
    /// Hard ceiling for adaptive growth (the worker count).
    cap: u32,
    /// EWMA of observed queue-lock wait, in simulated nanoseconds.
    ewma_wait_ns: u64,
    /// Waits observed so far (first sample seeds the EWMA).
    nwaits: u64,
    /// Waits since the adaptive policy last ran.
    since_adapt: u32,
}

/// Adaptive policy: revisit `active_max` every this many observed waits.
const CR_ADAPT_EVERY: u32 = 32;

impl CrSimState {
    pub(crate) fn new(params: CrParams, nprocs: u32) -> Self {
        CrSimState {
            active_max: params.active_max.clamp(1, nprocs),
            active: 0,
            passive: VecDeque::new(),
            dequeues: 0,
            last_rotation: 0,
            params,
            cap: nprocs,
            ewma_wait_ns: 0,
            nwaits: 0,
            since_adapt: 0,
        }
    }

    /// Tries to take an admission slot; false means the caller must park.
    pub(crate) fn try_admit(&mut self) -> bool {
        if self.active >= self.active_max {
            return false;
        }
        self.active += 1;
        true
    }

    /// Parks the caller on the passive list (caller holds no slot).
    pub(crate) fn park(&mut self, pid: Pid) {
        self.passive.push_back(pid);
    }

    /// Frees the caller's slot without promoting anyone (exit paths and
    /// wakeups that find nothing to do).
    pub(crate) fn release_slot(&mut self) {
        self.active -= 1;
    }

    /// Slot accounting after a dequeue-unlock: apply any pending adaptive
    /// resize, fill vacancies from the passive list, and rotate the
    /// longest-parked worker in every `promotion_interval` dequeues.
    pub(crate) fn on_unlock(&mut self) -> CrUnlock {
        self.dequeues += 1;
        if self.active > self.active_max {
            self.active -= 1;
            return CrUnlock::Drop;
        }
        if self.active < self.active_max {
            if let Some(pid) = self.passive.pop_front() {
                self.active += 1;
                return CrUnlock::Fill(pid);
            }
        }
        if self.dequeues - self.last_rotation >= self.params.promotion_interval {
            if let Some(pid) = self.passive.pop_front() {
                self.last_rotation = self.dequeues;
                return CrUnlock::Rotate(pid);
            }
        }
        CrUnlock::Keep
    }

    /// Shutdown drain: grants a fresh slot to a passive worker so it can
    /// observe `done` and exit. May transiently exceed `active_max`; the
    /// woken worker gives the slot straight back.
    pub(crate) fn grant(&mut self) -> Option<Pid> {
        let pid = self.passive.pop_front()?;
        self.active += 1;
        Some(pid)
    }

    /// Feeds one observed queue-lock wait to the adaptive policy. The
    /// reference cost is `queue_op` (the time the lock is held per
    /// operation): waits far above it mean the holder was preempted
    /// mid-section — shrink; waits far below it with workers culled mean
    /// the restriction is too tight — grow.
    pub(crate) fn observe_wait(&mut self, waited: SimDur, queue_op: SimDur) {
        if !self.params.adaptive {
            return;
        }
        let x = waited.nanos();
        self.ewma_wait_ns = if self.nwaits == 0 {
            x
        } else {
            (self.ewma_wait_ns / 8).saturating_mul(7) + x / 8
        };
        self.nwaits += 1;
        self.since_adapt += 1;
        if self.since_adapt < CR_ADAPT_EVERY {
            return;
        }
        self.since_adapt = 0;
        let op = queue_op.nanos();
        if self.ewma_wait_ns > op.saturating_mul(2) && self.active_max > 1 {
            self.active_max -= 1;
        } else if self.ewma_wait_ns < op / 4
            && !self.passive.is_empty()
            && self.active_max < self.cap
        {
            self.active_max += 1;
        }
    }
}

/// Tuning of the threads package for one application.
#[derive(Clone, Debug)]
pub struct ThreadsConfig {
    /// Number of worker processes to create.
    pub nprocs: u32,
    /// Per-worker working-set size, in cache lines.
    pub ws_lines: u64,
    /// Time spent under the queue lock per queue operation (dequeue,
    /// enqueue, barrier arrival, channel operation). Smaller grain sizes
    /// make this relatively larger — the paper's "fine-grained systems"
    /// remark.
    pub queue_op: SimDur,
    /// How long an idle worker computes between ready-queue checks while
    /// other tasks are still outstanding (busy-wait slice).
    pub idle_spin: SimDur,
    /// Process-control parameters; `None` reproduces the unmodified
    /// package (the paper's dashed curves).
    pub control: Option<ControlParams>,
    /// Concurrency-restricting queue-lock parameters; `None` keeps the
    /// unrestricted spinlock. Orthogonal to `control`: the four-way
    /// ablation crosses the two switches.
    pub cr: Option<CrParams>,
    /// Span-log capacity (records retained); 0 = unbounded. The figure
    /// harnesses replay full histories, so unbounded is the default;
    /// bounded logs mirror the native flight recorder's drop-oldest ring.
    pub span_capacity: usize,
}

/// How an application learns its target number of runnable processes.
#[derive(Clone, Copy, Debug)]
pub enum ControlMode {
    /// Poll the central server (the paper's chosen design).
    Centralized {
        /// The server's request mailbox.
        server_port: simkernel::PortId,
    },
    /// Sample `rpstat` directly and estimate a fair share with no central
    /// registry — the variant the paper tried first and rejected as "too
    /// inefficient" with "stability problems".
    Decentralized {
        /// Modeled CPU cost of each private `rpstat` sweep.
        rpstat_cost: SimDur,
    },
}

/// Process-control parameters for one application.
#[derive(Clone, Copy, Debug)]
pub struct ControlParams {
    /// Where targets come from.
    pub mode: ControlMode,
    /// Poll period (6 s in the paper).
    pub poll_interval: SimDur,
    /// Share weight in thousandths (1000 = the paper's equal priority).
    pub weight_milli: u32,
}

impl ThreadsConfig {
    /// A package configuration with paper-like defaults and no process
    /// control.
    pub fn new(nprocs: u32) -> Self {
        assert!(nprocs >= 1, "an application needs at least one process");
        ThreadsConfig {
            nprocs,
            ws_lines: 1_024,
            // A queue operation is a full user-level thread switch under
            // the scheduler spinlock — hundreds of microseconds on a
            // late-80s 2-MIPS processor.
            queue_op: SimDur::from_micros(800),
            idle_spin: SimDur::from_micros(500),
            control: None,
            cr: None,
            span_capacity: 0,
        }
    }

    /// Enables the concurrency-restricting queue lock.
    pub fn with_cr_lock(mut self, cr: CrParams) -> Self {
        self.cr = Some(cr);
        self
    }

    /// Enables process control through the given central-server port.
    pub fn with_control(mut self, server_port: simkernel::PortId, poll_interval: SimDur) -> Self {
        self.control = Some(ControlParams {
            mode: ControlMode::Centralized { server_port },
            poll_interval,
            weight_milli: 1_000,
        });
        self
    }

    /// Enables centralized process control with an explicit share weight
    /// (thousandths; 1000 = equal priority).
    pub fn with_weighted_control(
        mut self,
        server_port: simkernel::PortId,
        poll_interval: SimDur,
        weight_milli: u32,
    ) -> Self {
        assert!(weight_milli > 0, "zero weight would starve the application");
        self.control = Some(ControlParams {
            mode: ControlMode::Centralized { server_port },
            poll_interval,
            weight_milli,
        });
        self
    }

    /// Enables the decentralized (serverless) control variant.
    pub fn with_decentralized_control(
        mut self,
        poll_interval: SimDur,
        rpstat_cost: SimDur,
    ) -> Self {
        self.control = Some(ControlParams {
            mode: ControlMode::Decentralized { rpstat_cost },
            poll_interval,
            weight_milli: 1_000,
        });
        self
    }
}

/// The shared-memory block of one application.
pub struct AppShared {
    pub(crate) cfg: ThreadsConfig,
    /// The task ready queue; entries carry the event that resumes the task.
    pub(crate) queue: VecDeque<(Task, TaskEvent)>,
    /// Tasks created and not yet finished (queued, running, or parked).
    pub(crate) outstanding: u32,
    pub(crate) barriers: Vec<BarrierState>,
    pub(crate) channels: Vec<ChanState>,
    /// The spinlock protecting the queue and all package state.
    pub(crate) qlock: LockId,
    /// Workers not currently suspended.
    pub(crate) active: u32,
    /// Suspended workers, most recently suspended last.
    pub(crate) suspended: Vec<Pid>,
    /// Set by the worker that discovers the work is complete.
    pub(crate) done: bool,
    /// A poll request is outstanding (guards the single reply mailbox).
    pub(crate) poll_in_flight: bool,
    pub(crate) control: Option<ClientControl>,
    /// Concurrency-restricting queue-lock state, when enabled.
    pub(crate) cr: Option<CrSimState>,
    pub(crate) metrics: AppMetrics,
    /// Span events emitted by the workers (task/suspension/lock-wait/poll).
    pub(crate) spans: SpanLog,
}

impl AppShared {
    pub(crate) fn new(cfg: ThreadsConfig, qlock: LockId) -> Self {
        let active = cfg.nprocs;
        let spans = SpanLog::bounded(cfg.span_capacity);
        let cr = cfg.cr.map(|p| CrSimState::new(p, cfg.nprocs));
        AppShared {
            cfg,
            cr,
            queue: VecDeque::new(),
            outstanding: 0,
            barriers: Vec::new(),
            channels: Vec::new(),
            qlock,
            active,
            suspended: Vec::new(),
            done: false,
            poll_in_flight: false,
            control: None,
            metrics: AppMetrics::default(),
            spans,
        }
    }

    /// Enqueues a fresh task.
    pub(crate) fn push_task(&mut self, task: Task) {
        self.outstanding += 1;
        self.queue.push_back((task, TaskEvent::Start));
    }

    /// Current number of non-suspended workers.
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Whether all tasks have finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Package counters.
    pub fn metrics(&self) -> AppMetrics {
        self.metrics
    }

    /// The latest process-control target, if control is enabled.
    pub fn target(&self) -> Option<u32> {
        self.control.as_ref().map(ClientControl::target)
    }

    /// The CR queue lock's current active-set bound, if CR is enabled
    /// (differs from the configured value only under the adaptive policy).
    pub fn cr_active_max(&self) -> Option<u32> {
        self.cr.as_ref().map(|cr| cr.active_max)
    }

    /// The span log recorded so far.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// The configured worker count.
    pub fn nprocs(&self) -> u32 {
        self.cfg.nprocs
    }
}
