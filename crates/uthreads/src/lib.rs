//! `uthreads` — a task-queue threads package for the simulated kernel.
//!
//! The analog of the Brown University Threads package the paper built on:
//! applications are decomposed into *tasks* (user-level threads) that
//! worker *processes* pick from a spinlock-protected ready queue and
//! execute coroutine-style. The package provides user-level barriers and
//! channels, and — transparently to the application — the paper's dynamic
//! process control: at every safe suspension point (between tasks, holding
//! no lock) a worker compares the application's runnable-process count with
//! the server's target and suspends itself or resumes a suspended
//! colleague. "The interface to the threads commands was not changed when
//! process control was added": the same [`AppSpec`] runs unmodified with
//! control on or off ([`ThreadsConfig::with_control`]).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod app;
mod shared;
mod span;
mod task;
mod worker;

pub use app::{launch, AppSpec, ThreadsApp};
pub use shared::{AppMetrics, AppShared, ControlParams, CrParams, ThreadsConfig};
pub use span::{poll_to_convergence, wake_to_run, SpanKind, SpanLog, SpanRecord};
pub use task::{BarrierId, ChanId, FnTask, OpsBody, Task, TaskBody, TaskEvent, TaskOp};
pub use worker::Worker;
