//! Property tests for the threads package, driven end-to-end through the
//! simulated kernel under randomized workload shapes and machine sizes.

use desim::{SimDur, SimTime};
use proptest::prelude::*;
use simkernel::policy::FifoRoundRobin;
use simkernel::{AppId, Kernel, KernelConfig};
use uthreads::{launch, AppSpec, FnTask, Task, TaskEvent, TaskOp, ThreadsConfig};

const LIMIT: SimTime = SimTime(7_200 * 1_000_000_000);

fn kernel(cpus: usize) -> Kernel {
    Kernel::new(
        KernelConfig::multimax().with_cpus(cpus).without_trace(),
        Box::new(FifoRoundRobin::new()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every task runs exactly once, for any mix of task sizes, worker
    /// counts, and machine sizes.
    #[test]
    fn all_tasks_run_once(
        cpus in 1usize..6,
        nprocs in 1u32..10,
        durs in prop::collection::vec(1u64..40, 1..40),
    ) {
        let mut k = kernel(cpus);
        let tasks: Vec<Task> = durs
            .iter()
            .map(|&ms| Task::compute("t", SimDur::from_millis(ms)))
            .collect();
        let n = tasks.len() as u64;
        let app = launch(&mut k, AppId(0), ThreadsConfig::new(nprocs), AppSpec::tasks(tasks));
        prop_assert!(k.run_until_apps_done(&[AppId(0)], LIMIT));
        prop_assert_eq!(app.metrics().tasks_run, n);
        prop_assert_eq!(k.runnable_count(), 0);
    }

    /// Total useful work accounted by the kernel is at least the sum of
    /// requested compute (work conservation: nothing disappears).
    #[test]
    fn work_is_conserved(
        nprocs in 1u32..8,
        durs in prop::collection::vec(1u64..30, 1..30),
    ) {
        let mut k = kernel(4);
        let total: u64 = durs.iter().sum();
        let tasks: Vec<Task> = durs
            .iter()
            .map(|&ms| Task::compute("t", SimDur::from_millis(ms)))
            .collect();
        launch(&mut k, AppId(0), ThreadsConfig::new(nprocs), AppSpec::tasks(tasks));
        prop_assert!(k.run_until_apps_done(&[AppId(0)], LIMIT));
        let work = k.app_stats(AppId(0)).work;
        prop_assert!(
            work >= SimDur::from_millis(total),
            "work {} < requested {}ms", work, total
        );
    }

    /// Barriers never deadlock and never let a participant through early,
    /// for arbitrary participant counts and worker counts (including fewer
    /// workers than participants — parked tasks must not hold workers).
    #[test]
    fn barriers_complete_for_any_shape(
        participants in 2u32..12,
        nprocs in 1u32..10,
        rounds in 1u32..4,
    ) {
        let mut k = kernel(4);
        let mut spec = AppSpec::tasks(vec![]);
        let bar = spec.add_barrier(participants);
        for _ in 0..participants {
            let mut left = rounds;
            spec.tasks.push(Task::new(
                "phased",
                Box::new(FnTask(move |ev: TaskEvent| match ev {
                    TaskEvent::Start | TaskEvent::BarrierPassed => {
                        if left == 0 {
                            TaskOp::Done
                        } else {
                            TaskOp::Compute(SimDur::from_millis(2))
                        }
                    }
                    TaskEvent::ComputeDone => {
                        left -= 1;
                        TaskOp::Barrier(bar)
                    }
                    other => unreachable!("{other:?}"),
                })),
            ));
        }
        let app = launch(&mut k, AppId(0), ThreadsConfig::new(nprocs), spec);
        prop_assert!(k.run_until_apps_done(&[AppId(0)], LIMIT), "barrier deadlock");
        prop_assert_eq!(app.metrics().tasks_run, u64::from(participants));
    }

    /// Channels deliver every value exactly once, in FIFO order per
    /// channel, across arbitrary producer/consumer interleavings.
    #[test]
    fn channels_deliver_in_order(
        nprocs in 2u32..10,
        items in 1u64..30,
        produce_ms in 1u64..8,
        consume_ms in 1u64..8,
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut k = kernel(4);
        let mut spec = AppSpec::tasks(vec![]);
        let ch = spec.add_channel();
        let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));

        let mut seq = 0u64;
        spec.tasks.push(Task::new(
            "producer",
            Box::new(FnTask(move |ev: TaskEvent| match ev {
                TaskEvent::Start | TaskEvent::Sent if seq < items => {
                    seq += 1;
                    TaskOp::Compute(SimDur::from_millis(produce_ms))
                }
                TaskEvent::ComputeDone => TaskOp::Send(ch, seq),
                _ => TaskOp::Done,
            })),
        ));
        let sink = got.clone();
        let mut received = 0u64;
        spec.tasks.push(Task::new(
            "consumer",
            Box::new(FnTask(move |ev: TaskEvent| {
                match ev {
                    TaskEvent::Received(v) => {
                        sink.borrow_mut().push(v);
                        received += 1;
                        if received == items {
                            return TaskOp::Done;
                        }
                        TaskOp::Compute(SimDur::from_millis(consume_ms))
                    }
                    _ => TaskOp::Recv(ch),
                }
            })),
        ));
        launch(&mut k, AppId(0), ThreadsConfig::new(nprocs), spec);
        prop_assert!(k.run_until_apps_done(&[AppId(0)], LIMIT));
        let vals = got.borrow();
        prop_assert_eq!(vals.clone(), (1..=items).collect::<Vec<u64>>());
    }

    /// Under process control, every worker is eventually woken at
    /// completion, the suspend/resume counters balance against the final
    /// state, and no tasks are lost — for arbitrary overcommit ratios.
    #[test]
    fn control_never_loses_workers_or_tasks(
        cpus in 1usize..5,
        nprocs in 2u32..16,
        ntasks in 20u32..120,
    ) {
        let mut k = kernel(cpus);
        let port = k.create_port();
        k.spawn_root(
            AppId(999),
            64,
            Box::new(procctl::Server::new(procctl::ServerConfig::new(port))),
        );
        let tasks: Vec<Task> = (0..ntasks)
            .map(|_| Task::compute("t", SimDur::from_millis(25)))
            .collect();
        let cfg = ThreadsConfig::new(nprocs).with_control(port, SimDur::from_millis(500));
        let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
        prop_assert!(k.run_until_apps_done(&[AppId(0)], LIMIT), "workers stranded");
        prop_assert_eq!(app.metrics().tasks_run, u64::from(ntasks));
        // Every suspension was matched by a resume (worker-initiated or
        // the completion wake-up).
        prop_assert_eq!(k.app_runnable(AppId(0)), 0);
        let m = app.metrics();
        prop_assert!(m.resumes <= m.suspends, "more resumes than suspends");
    }

    /// With the concurrency-restricting queue lock enabled — alone or
    /// combined with process control — every task still runs exactly once
    /// and every culled worker is eventually promoted or drained, for
    /// arbitrary machine sizes, worker counts, and active-set bounds.
    #[test]
    fn cr_lock_never_loses_workers_or_tasks(
        cpus in 1usize..5,
        nprocs in 2u32..16,
        active_max in 1u32..6,
        with_control in any::<bool>(),
        ntasks in 10u32..80,
    ) {
        let mut k = kernel(cpus);
        let mut cfg = ThreadsConfig::new(nprocs)
            .with_cr_lock(uthreads::CrParams::fixed(active_max));
        if with_control {
            let port = k.create_port();
            k.spawn_root(
                AppId(999),
                64,
                Box::new(procctl::Server::new(procctl::ServerConfig::new(port))),
            );
            cfg = cfg.with_control(port, SimDur::from_millis(500));
        }
        let tasks: Vec<Task> = (0..ntasks)
            .map(|_| Task::compute("t", SimDur::from_millis(20)))
            .collect();
        let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
        prop_assert!(k.run_until_apps_done(&[AppId(0)], LIMIT), "CR lock wedged the app");
        prop_assert_eq!(app.metrics().tasks_run, u64::from(ntasks));
        prop_assert_eq!(k.runnable_count(), 0);
        let m = app.metrics();
        prop_assert!(
            m.cr_promotions <= m.cr_passivations,
            "more promotions ({}) than passivations ({})", m.cr_promotions, m.cr_passivations
        );
    }
}
