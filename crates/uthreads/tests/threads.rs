//! End-to-end tests: threads-package applications on the simulated kernel,
//! with and without process control.

use desim::{SimDur, SimTime};
use procctl::{Server, ServerConfig};
use simkernel::policy::FifoRoundRobin;
use simkernel::{AppId, Kernel, KernelConfig};
use uthreads::{launch, AppSpec, FnTask, Task, TaskEvent, TaskOp, ThreadsConfig};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(secs)
}

fn kernel(cpus: usize) -> Kernel {
    Kernel::new(
        KernelConfig::multimax().with_cpus(cpus),
        Box::new(FifoRoundRobin::new()),
    )
}

/// Spawns the central server; returns its request port.
fn spawn_server(k: &mut Kernel) -> simkernel::PortId {
    let port = k.create_port();
    let server = Server::new(ServerConfig::new(port));
    k.spawn_root(AppId(1000), 64, Box::new(server));
    port
}

#[test]
fn app_runs_tasks_to_completion() {
    let mut k = kernel(4);
    let tasks: Vec<Task> = (0..20)
        .map(|_| Task::compute("work", SimDur::from_millis(10)))
        .collect();
    let app = launch(
        &mut k,
        AppId(0),
        ThreadsConfig::new(4),
        AppSpec::tasks(tasks),
    );
    assert!(k.run_to_completion(t(30)));
    assert!(app.is_done());
    assert_eq!(app.metrics().tasks_run, 20);
    assert!(k.app_done_time(AppId(0)).is_some());
}

#[test]
fn single_worker_app_works() {
    let mut k = kernel(1);
    let tasks = vec![Task::compute("only", SimDur::from_millis(5))];
    let app = launch(
        &mut k,
        AppId(0),
        ThreadsConfig::new(1),
        AppSpec::tasks(tasks),
    );
    assert!(k.run_to_completion(t(10)));
    assert_eq!(app.metrics().tasks_run, 1);
}

#[test]
fn more_workers_speed_up_parallel_work() {
    // 32 independent 20 ms tasks on 8 processors.
    let run = |nprocs: u32| {
        let mut k = kernel(8);
        let tasks: Vec<Task> = (0..32)
            .map(|_| Task::compute("w", SimDur::from_millis(20)))
            .collect();
        launch(
            &mut k,
            AppId(0),
            ThreadsConfig::new(nprocs),
            AppSpec::tasks(tasks),
        );
        assert!(k.run_to_completion(t(60)));
        k.app_done_time(AppId(0)).unwrap().as_secs_f64()
    };
    let t1 = run(1);
    let t8 = run(8);
    let speedup = t1 / t8;
    assert!(speedup > 5.0, "8-worker speedup only {speedup:.2}");
}

#[test]
fn barrier_synchronizes_phases() {
    // 4 tasks meet at a barrier twice; a counter checks phase ordering.
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut k = kernel(4);
    let mut spec = AppSpec::tasks(vec![]);
    let bar = spec.add_barrier(4);
    let phase1_done = Rc::new(RefCell::new(0u32));
    let violations = Rc::new(RefCell::new(0u32));
    for _ in 0..4 {
        let p1 = phase1_done.clone();
        let viol = violations.clone();
        let mut stage = 0;
        spec.tasks.push(Task::new(
            "phased",
            Box::new(FnTask(move |ev: TaskEvent| {
                stage += 1;
                match (stage, ev) {
                    (1, TaskEvent::Start) => TaskOp::Compute(SimDur::from_millis(2)),
                    (2, TaskEvent::ComputeDone) => {
                        *p1.borrow_mut() += 1;
                        TaskOp::Barrier(bar)
                    }
                    (3, TaskEvent::BarrierPassed) => {
                        // Everyone must have finished phase 1 by now.
                        if *p1.borrow() != 4 {
                            *viol.borrow_mut() += 1;
                        }
                        TaskOp::Compute(SimDur::from_millis(2))
                    }
                    (4, TaskEvent::ComputeDone) => TaskOp::Done,
                    other => panic!("unexpected {other:?}"),
                }
            })),
        ));
    }
    let app = launch(&mut k, AppId(0), ThreadsConfig::new(4), spec);
    assert!(k.run_to_completion(t(30)));
    assert_eq!(*violations.borrow(), 0, "barrier let a task through early");
    assert_eq!(app.metrics().tasks_run, 4);
}

#[test]
fn channels_carry_producer_consumer_values() {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut k = kernel(2);
    let mut spec = AppSpec::tasks(vec![]);
    let ch = spec.add_channel();
    let got = Rc::new(RefCell::new(Vec::new()));

    // Producer: send 1, 2, 3 with pauses.
    let mut sent = 0;
    spec.tasks.push(Task::new(
        "producer",
        Box::new(FnTask(move |ev: TaskEvent| match ev {
            TaskEvent::Start | TaskEvent::Sent if sent < 3 => {
                sent += 1;
                TaskOp::Compute(SimDur::from_millis(5))
            }
            TaskEvent::ComputeDone => TaskOp::Send(ch, sent),
            _ => TaskOp::Done,
        })),
    ));
    // Consumer: receive 3 values.
    let sink = got.clone();
    let mut received = 0;
    spec.tasks.push(Task::new(
        "consumer",
        Box::new(FnTask(move |ev: TaskEvent| {
            if let TaskEvent::Received(v) = ev {
                sink.borrow_mut().push(v);
                received += 1;
            }
            if received < 3 {
                TaskOp::Recv(ch)
            } else {
                TaskOp::Done
            }
        })),
    ));
    let app = launch(&mut k, AppId(0), ThreadsConfig::new(2), spec);
    assert!(k.run_to_completion(t(30)));
    assert_eq!(*got.borrow(), vec![1, 2, 3]);
    assert_eq!(app.metrics().tasks_run, 2);
}

#[test]
fn control_suspends_excess_workers() {
    // 8 workers on a 4-CPU machine, controlled: the server should push the
    // application down to ~4 runnable processes.
    let mut k = kernel(4);
    let server_port = spawn_server(&mut k);
    let tasks: Vec<Task> = (0..1500)
        .map(|_| Task::compute("w", SimDur::from_millis(20)))
        .collect();
    let cfg = ThreadsConfig::new(8).with_control(server_port, SimDur::from_secs(2));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    // Run 5 seconds: registration + a couple of polls have happened.
    k.run_until(t(5));
    assert!(!app.is_done(), "test needs the app still running");
    let active = app.active();
    assert!(active <= 5, "active {active} workers, expected ~4");
    assert!(
        app.metrics().suspends >= 3,
        "suspends {}",
        app.metrics().suspends
    );
    assert_eq!(app.target(), Some(4));
    // Runnable processes (incl. transients) near the machine size.
    assert!(k.app_runnable(AppId(0)) <= 5);
    assert!(k.run_until_apps_done(&[AppId(0)], t(120)));
    assert_eq!(app.metrics().tasks_run, 1500);
}

#[test]
fn control_is_transparent_when_underloaded() {
    // 4 workers on 8 CPUs: control must not suspend anybody (target >=
    // process count) and the app completes normally.
    let mut k = kernel(8);
    let server_port = spawn_server(&mut k);
    let tasks: Vec<Task> = (0..100)
        .map(|_| Task::compute("w", SimDur::from_millis(10)))
        .collect();
    let cfg = ThreadsConfig::new(4).with_control(server_port, SimDur::from_secs(2));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    assert!(k.run_until_apps_done(&[AppId(0)], t(30)));
    assert_eq!(app.metrics().suspends, 0);
    assert_eq!(app.metrics().tasks_run, 100);
}

#[test]
fn two_controlled_apps_split_the_machine() {
    let mut k = kernel(8);
    let server_port = spawn_server(&mut k);
    let mk_tasks = || -> Vec<Task> {
        (0..4000)
            .map(|_| Task::compute("w", SimDur::from_millis(10)))
            .collect()
    };
    let cfg = |_| ThreadsConfig::new(8).with_control(server_port, SimDur::from_secs(2));
    let a = launch(&mut k, AppId(0), cfg(0), AppSpec::tasks(mk_tasks()));
    let b = launch(&mut k, AppId(1), cfg(1), AppSpec::tasks(mk_tasks()));
    k.run_until(t(8));
    assert!(
        !a.is_done() && !b.is_done(),
        "apps finished too early for the check"
    );
    // After a few polls both should sit at ~4 active workers each.
    assert_eq!(a.target(), Some(4));
    assert_eq!(b.target(), Some(4));
    assert!(a.active() <= 5, "a.active = {}", a.active());
    assert!(b.active() <= 5, "b.active = {}", b.active());
    assert!(k.run_until_apps_done(&[AppId(0), AppId(1)], t(120)));
}

#[test]
fn suspended_workers_resume_when_machine_frees_up() {
    let mut k = kernel(4);
    let server_port = spawn_server(&mut k);
    // App A: short. App B: long. B gets squeezed to ~2 while A runs, then
    // should grow back to ~4 after A finishes.
    let a_tasks: Vec<Task> = (0..160)
        .map(|_| Task::compute("a", SimDur::from_millis(100)))
        .collect();
    let b_tasks: Vec<Task> = (0..4000)
        .map(|_| Task::compute("b", SimDur::from_millis(10)))
        .collect();
    let cfg = ThreadsConfig::new(4).with_control(server_port, SimDur::from_secs(2));
    let _a = launch(&mut k, AppId(0), cfg.clone(), AppSpec::tasks(a_tasks));
    let b = launch(&mut k, AppId(1), cfg, AppSpec::tasks(b_tasks));
    // While A is alive, B should be told to shrink.
    k.run_until(t(6));
    let b_mid = b.target().unwrap();
    assert!(b_mid <= 2, "b target while sharing: {b_mid}");
    // A finishes (160 * 100 ms on ~2 cpus ≈ 8 s); after A's BYE and B's
    // next poll, B should be back to 4.
    assert!(k.run_until_apps_done(&[AppId(0)], t(30)), "A should finish");
    k.run_until(k.now() + SimDur::from_secs(6)); // one poll interval later
    assert!(!b.is_done(), "B finished too early for the check");
    assert_eq!(b.target(), Some(4));
    assert!(b.metrics().resumes >= 1, "B never resumed anyone");
    assert!(k.run_until_apps_done(&[AppId(1)], t(300)));
    assert_eq!(b.metrics().tasks_run, 4000);
}

#[test]
fn all_suspended_workers_are_woken_at_completion() {
    // If suspended workers were never resumed at app completion, the app
    // would hang with live processes; run_to_completion would fail.
    let mut k = kernel(2);
    let server_port = spawn_server(&mut k);
    let tasks: Vec<Task> = (0..600)
        .map(|_| Task::compute("w", SimDur::from_millis(20)))
        .collect();
    let cfg = ThreadsConfig::new(8).with_control(server_port, SimDur::from_secs(1));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    assert!(
        k.run_until_apps_done(&[AppId(0)], t(120)),
        "suspended workers left behind"
    );
    assert!(app.metrics().suspends > 0, "test should actually suspend");
    assert_eq!(k.app_runnable(AppId(0)), 0);
}

#[test]
fn uncontrolled_app_is_unaffected_by_server() {
    let mut k = kernel(2);
    let _server_port = spawn_server(&mut k);
    let tasks: Vec<Task> = (0..50)
        .map(|_| Task::compute("w", SimDur::from_millis(5)))
        .collect();
    let app = launch(
        &mut k,
        AppId(0),
        ThreadsConfig::new(4),
        AppSpec::tasks(tasks),
    );
    assert!(k.run_until_apps_done(&[AppId(0)], t(30)));
    assert_eq!(app.metrics().suspends, 0);
    assert_eq!(app.metrics().polls, 0);
}

#[test]
fn tasks_spawning_tasks() {
    // A root task spawns 10 children, then finishes.
    let mut k = kernel(4);
    let mut spawned = 0;
    let root = Task::new(
        "spawner",
        Box::new(FnTask(move |ev: TaskEvent| match ev {
            TaskEvent::Start | TaskEvent::Spawned if spawned < 10 => {
                spawned += 1;
                TaskOp::Spawn(Task::compute("child", SimDur::from_millis(5)))
            }
            _ => TaskOp::Done,
        })),
    );
    let app = launch(
        &mut k,
        AppId(0),
        ThreadsConfig::new(4),
        AppSpec::tasks(vec![root]),
    );
    assert!(k.run_to_completion(t(30)));
    assert_eq!(app.metrics().tasks_run, 11);
}

#[test]
fn weighted_apps_get_proportional_shares() {
    // Two identical workloads; app A registers with 3x the weight of B.
    let mut k = kernel(8);
    let server_port = spawn_server(&mut k);
    let mk_tasks = || -> Vec<Task> {
        (0..4000)
            .map(|_| Task::compute("w", SimDur::from_millis(10)))
            .collect()
    };
    let a_cfg =
        ThreadsConfig::new(8).with_weighted_control(server_port, SimDur::from_secs(1), 3_000);
    let b_cfg =
        ThreadsConfig::new(8).with_weighted_control(server_port, SimDur::from_secs(1), 1_000);
    let a = launch(&mut k, AppId(0), a_cfg, AppSpec::tasks(mk_tasks()));
    let b = launch(&mut k, AppId(1), b_cfg, AppSpec::tasks(mk_tasks()));
    k.run_until(t(6));
    assert!(!a.is_done() && !b.is_done());
    // 8 CPUs split 3:1 -> 6 and 2.
    assert_eq!(a.target(), Some(6), "heavy app target");
    assert_eq!(b.target(), Some(2), "light app target");
    // The heavy app finishes first despite identical work.
    assert!(k.run_until_apps_done(&[AppId(0), AppId(1)], t(300)));
    let da = k.app_done_time(AppId(0)).unwrap();
    let db = k.app_done_time(AppId(1)).unwrap();
    assert!(da < db, "weighted app not faster: {da} vs {db}");
}

#[test]
fn zero_task_app_completes_immediately() {
    let mut k = kernel(2);
    let app = launch(
        &mut k,
        AppId(0),
        ThreadsConfig::new(4),
        AppSpec::tasks(vec![]),
    );
    assert!(k.run_until_apps_done(&[AppId(0)], t(5)));
    assert!(app.is_done());
    assert_eq!(app.metrics().tasks_run, 0);
}

#[test]
fn controlled_zero_task_app_completes() {
    // Even with control enabled (registration, BYE) an empty application
    // must wind down cleanly.
    let mut k = kernel(2);
    let server_port = spawn_server(&mut k);
    let cfg = ThreadsConfig::new(4).with_control(server_port, SimDur::from_secs(1));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(vec![]));
    assert!(k.run_until_apps_done(&[AppId(0)], t(10)));
    assert!(app.is_done());
}

#[test]
fn single_process_controlled_app_never_suspends_itself_to_zero() {
    // One worker, target 1: the starvation guard must keep it running.
    let mut k = kernel(1);
    let server_port = spawn_server(&mut k);
    // Heavy competing load so the target would be pushed down if it could.
    let other = ThreadsConfig::new(4).with_control(server_port, SimDur::from_secs(1));
    let other_tasks: Vec<Task> = (0..400)
        .map(|_| Task::compute("w", SimDur::from_millis(10)))
        .collect();
    launch(&mut k, AppId(1), other, AppSpec::tasks(other_tasks));
    let cfg = ThreadsConfig::new(1).with_control(server_port, SimDur::from_secs(1));
    let tasks: Vec<Task> = (0..100)
        .map(|_| Task::compute("s", SimDur::from_millis(10)))
        .collect();
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    assert!(k.run_until_apps_done(&[AppId(0), AppId(1)], t(120)));
    assert_eq!(
        app.metrics().suspends,
        0,
        "the lone worker must not suspend"
    );
    assert_eq!(app.metrics().tasks_run, 100);
}

#[test]
fn requeue_creates_safe_points_in_long_tasks() {
    // A single huge task that periodically requeues itself lets control
    // engage even though the task never finishes until the end.
    let mut k = kernel(2);
    let server_port = spawn_server(&mut k);
    let mut spec = AppSpec::tasks(vec![]);
    let mut chunks_left = 200u32; // 200 x 20 ms = 4 s of work in one task
    spec.tasks.push(Task::new(
        "long-with-requeue",
        Box::new(FnTask(move |ev: TaskEvent| match ev {
            TaskEvent::Start | TaskEvent::Requeued => {
                if chunks_left == 0 {
                    TaskOp::Done
                } else {
                    TaskOp::Compute(SimDur::from_millis(20))
                }
            }
            TaskEvent::ComputeDone => {
                chunks_left -= 1;
                TaskOp::Requeue
            }
            other => panic!("unexpected {other:?}"),
        })),
    ));
    // Plus bulk work to keep other workers busy.
    for _ in 0..400 {
        spec.tasks
            .push(Task::compute("bulk", SimDur::from_millis(20)));
    }
    let cfg = ThreadsConfig::new(8).with_control(server_port, SimDur::from_secs(1));
    let app = launch(&mut k, AppId(0), cfg, spec);
    assert!(k.run_until_apps_done(&[AppId(0)], t(120)));
    assert_eq!(app.metrics().tasks_run, 401);
    // Overcommitted 8 workers on 2 CPUs: control must have engaged.
    assert!(app.metrics().suspends > 0);
}

#[test]
fn cr_lock_culls_excess_workers_and_loses_nothing() {
    // 8 workers, 2 admission slots: 6 arrivals at a non-empty queue find
    // the active set full and are culled; every culled worker is later
    // promoted (or drained at shutdown) and every task still runs.
    let mut k = kernel(4);
    let tasks: Vec<Task> = (0..64)
        .map(|_| Task::compute("w", SimDur::from_millis(10)))
        .collect();
    let cfg = ThreadsConfig::new(8).with_cr_lock(uthreads::CrParams::fixed(2));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    assert!(k.run_until_apps_done(&[AppId(0)], t(120)));
    let m = app.metrics();
    assert_eq!(m.tasks_run, 64);
    assert!(m.cr_passivations > 0, "no worker was ever culled");
    assert!(m.cr_promotions > 0, "no culled worker was ever promoted");
    assert!(m.cr_promotions <= m.cr_passivations);
    assert_eq!(app.cr_active_max(), Some(2));
}

#[test]
fn cr_lock_single_slot_survives_barriers_and_channels() {
    // active_max = 1 funnels every queue operation — dequeues, barrier
    // arrivals, channel sends/receives, task finishes — through a single
    // admission slot, exercising the task-side park/promote path hard.
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut k = kernel(4);
    let mut spec = AppSpec::tasks(vec![]);
    let bar = spec.add_barrier(4);
    let ch = spec.add_channel();
    for i in 0..4u64 {
        let mut stage = 0;
        spec.tasks.push(Task::new(
            "phased",
            Box::new(FnTask(move |ev: TaskEvent| {
                stage += 1;
                match (stage, ev) {
                    (1, TaskEvent::Start) => TaskOp::Compute(SimDur::from_millis(2)),
                    (2, TaskEvent::ComputeDone) => TaskOp::Barrier(bar),
                    (3, TaskEvent::BarrierPassed) => TaskOp::Send(ch, i),
                    (4, TaskEvent::Sent) => TaskOp::Done,
                    other => panic!("unexpected {other:?}"),
                }
            })),
        ));
    }
    let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = got.clone();
    let mut received = 0u32;
    spec.tasks.push(Task::new(
        "consumer",
        Box::new(FnTask(move |ev: TaskEvent| match ev {
            TaskEvent::Received(v) => {
                sink.borrow_mut().push(v);
                received += 1;
                if received == 4 {
                    TaskOp::Done
                } else {
                    TaskOp::Recv(ch)
                }
            }
            _ => TaskOp::Recv(ch),
        })),
    ));
    let cfg = ThreadsConfig::new(6).with_cr_lock(uthreads::CrParams::fixed(1));
    let app = launch(&mut k, AppId(0), cfg, spec);
    assert!(k.run_until_apps_done(&[AppId(0)], t(120)));
    assert_eq!(app.metrics().tasks_run, 5);
    let mut vals = got.borrow().clone();
    vals.sort_unstable();
    assert_eq!(vals, vec![0, 1, 2, 3]);
}

#[test]
fn cr_lock_composes_with_process_control() {
    // The four-way ablation's {both} cell in miniature: server control
    // suspends workers at safe points while the CR lock culls lock-level
    // excess. The two mechanisms must not strand each other's workers.
    let mut k = kernel(2);
    let server_port = spawn_server(&mut k);
    let tasks: Vec<Task> = (0..200)
        .map(|_| Task::compute("w", SimDur::from_millis(20)))
        .collect();
    let cfg = ThreadsConfig::new(8)
        .with_control(server_port, SimDur::from_millis(500))
        .with_cr_lock(uthreads::CrParams::fixed(2));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    assert!(k.run_until_apps_done(&[AppId(0)], t(240)));
    let m = app.metrics();
    assert_eq!(m.tasks_run, 200);
    // Overcommitted 8 workers on 2 CPUs: control engaged.
    assert!(m.suspends > 0, "control never engaged");
    assert!(m.cr_passivations > 0, "CR lock never engaged");
}

#[test]
fn adaptive_cr_lock_shrinks_when_lock_waits_dwarf_the_critical_section() {
    // Start wide open (active_max = 8). Eight workers hammering a
    // spinlock whose hold time is queue_op makes the mean acquisition
    // wait several multiples of queue_op, so the adaptive policy must
    // ratchet the active set down.
    let mut k = kernel(8);
    let tasks: Vec<Task> = (0..300)
        .map(|_| Task::compute("w", SimDur::from_micros(100)))
        .collect();
    let cfg = ThreadsConfig::new(8).with_cr_lock(uthreads::CrParams::adaptive(8));
    let app = launch(&mut k, AppId(0), cfg, AppSpec::tasks(tasks));
    assert!(k.run_until_apps_done(&[AppId(0)], t(600)));
    assert_eq!(app.metrics().tasks_run, 300);
    let bound = app.cr_active_max().expect("CR enabled");
    assert!(bound < 8, "adaptive bound never shrank: still {bound}");
}
