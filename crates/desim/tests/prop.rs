//! Property tests for the simulation engine.

use desim::{Calendar, DurHistogram, SimDur, SimRng, SimTime, TimeWeighted};
use proptest::prelude::*;

proptest! {
    /// Popping the calendar yields events sorted by time, and insertion
    /// order is preserved among equal timestamps (stability).
    #[test]
    fn calendar_is_stable_priority_queue(times in prop::collection::vec(0u64..50, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime(t), (t, i));
        }
        let mut out = Vec::new();
        while let Some((t, payload)) = cal.pop() {
            prop_assert_eq!(t.nanos(), payload.0);
            out.push(payload);
        }
        prop_assert_eq!(out.len(), times.len());
        // Expected: stable sort of (time, insertion index).
        let mut expected: Vec<(u64, usize)> = times.iter().copied().enumerate()
            .map(|(i, t)| (t, i)).collect();
        expected.sort(); // (time, seq) lexicographic == stable by time
        prop_assert_eq!(out, expected);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn calendar_cancellation_is_exact(
        times in prop::collection::vec(0u64..50, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut cal = Calendar::new();
        let ids: Vec<_> = times.iter().enumerate()
            .map(|(i, &t)| (i, cal.schedule(SimTime(t), i)))
            .collect();
        let mut kept = Vec::new();
        for (i, id) in &ids {
            if cancel_mask[*i % cancel_mask.len()] {
                prop_assert!(cal.cancel(*id));
            } else {
                kept.push(*i);
            }
        }
        prop_assert_eq!(cal.len(), kept.len());
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = cal.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        kept.sort_unstable();
        prop_assert_eq!(popped, kept);
    }

    /// `range_u64` stays within bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = SimRng::new(seed);
        for _ in 0..100 {
            let x = r.range_u64(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
        }
    }

    /// The same seed always reproduces the same stream.
    #[test]
    fn rng_is_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// A time-weighted average always lies between the signal's min and max.
    #[test]
    fn time_weighted_average_bounded(values in prop::collection::vec(0.0f64..100.0, 1..50)) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, values[0]);
        let mut t = SimTime::ZERO;
        for (i, &v) in values.iter().enumerate().skip(1) {
            t = SimTime::ZERO + SimDur::from_secs(i as u64);
            tw.set(t, v);
        }
        let end = t + SimDur::from_secs(1);
        let avg = tw.average(end);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {} not in [{}, {}]", avg, lo, hi);
    }

    /// Histogram quantiles are monotone in q and total count is conserved.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(0u64..10_000_000, 1..200)) {
        let mut h = DurHistogram::exponential();
        for &s in &samples {
            h.record(SimDur(s));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
    }
}
