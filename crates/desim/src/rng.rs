//! Deterministic pseudo-random numbers for the simulator.
//!
//! The simulator uses its own SplitMix64 generator rather than the `rand`
//! crate so that simulation results are bit-for-bit stable across dependency
//! upgrades. SplitMix64 passes BigCrush for this register size and is more
//! than adequate for workload jitter and tie-breaking.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use desim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated entity its own stream so entity creation order does not
    /// perturb unrelated entities.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let mix = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::new(mix)
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly spaced mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased modulo via rejection sampling on the widening multiply.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Returns a uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Guard against ln(0).
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Samples a uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_u64(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::new(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(19);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn fork_streams_are_independent_of_parent_progress() {
        let mut parent1 = SimRng::new(23);
        let child1 = parent1.fork(0);
        let mut parent2 = SimRng::new(23);
        let child2 = parent2.fork(0);
        assert_eq!(child1, child2);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(1).range_u64(5, 5);
    }
}
