//! `desim` — a small deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the Tucker–Gupta (SOSP '89) reproduction:
//! everything above it (the machine model, the simulated kernel, the threads
//! package, the process-control server) advances time through the primitives
//! defined here.
//!
//! The engine deliberately contains no domain knowledge. It provides:
//!
//! - [`SimTime`] / [`SimDur`] — integer nanosecond time, overflow-checked;
//! - [`Calendar`] — a *stable*, cancellable event priority queue (ties are
//!   broken by insertion order so runs are exactly reproducible);
//! - [`SimRng`] — a local SplitMix64 generator, so results cannot drift with
//!   `rand` version bumps;
//! - [`Tracer`] — an append-only structured event log used to reconstruct
//!   the paper's time-series figures;
//! - [`Welford`], [`TimeWeighted`], [`DurHistogram`] — online statistics.
//!
//! # Examples
//!
//! ```
//! use desim::{Calendar, SimDur, SimTime};
//!
//! let mut cal = Calendar::new();
//! let mut now = SimTime::ZERO;
//! cal.schedule(now + SimDur::from_millis(3), "quantum expiry");
//! cal.schedule(now + SimDur::from_millis(1), "io done");
//! while let Some((t, what)) = cal.pop() {
//!     now = t;
//!     println!("{now}: {what}");
//! }
//! assert_eq!(now, SimTime::ZERO + SimDur::from_millis(3));
//! ```

#![warn(missing_docs)]

mod event;
mod rng;
mod stats;
mod time;
mod trace;

pub use event::{Calendar, EventId};
pub use rng::SimRng;
pub use stats::{DurHistogram, TimeWeighted, Welford};
pub use time::{SimDur, SimTime, MSEC, SEC, USEC};
pub use trace::{TraceEvent, Tracer};
