//! Online statistics used by the simulator's instrumentation.

use crate::time::{SimDur, SimTime};

/// Welford online mean/variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 for the empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. run-queue
/// length over simulated time.
///
/// Feed it every change point with [`TimeWeighted::set`]; query the average
/// over the observed interval with [`TimeWeighted::average`].
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    peak: f64,
}

impl TimeWeighted {
    /// Starts observing at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            weighted_sum: 0.0,
            start,
            peak: value,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `now` precedes the previous change.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time);
        self.weighted_sum += self.last_value * dt.as_secs_f64();
        self.last_time = now;
        self.last_value = value;
        self.peak = self.peak.max(value);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Largest value observed so far.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average of the signal on `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.last_value;
        }
        let tail = now.since(self.last_time).as_secs_f64();
        (self.weighted_sum + self.last_value * tail) / total
    }
}

/// A fixed-bucket histogram of durations, used for e.g. scheduling latency.
#[derive(Clone, Debug)]
pub struct DurHistogram {
    /// Upper bounds of each bucket (exclusive), ascending; an implicit
    /// overflow bucket follows the last bound.
    bounds: Vec<SimDur>,
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
}

impl DurHistogram {
    /// Creates a histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<SimDur>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        let n = bounds.len();
        DurHistogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            sum_ns: 0,
        }
    }

    /// A useful default: exponentially spaced bounds from 1 us to ~17 min.
    pub fn exponential() -> Self {
        let bounds = (0..31).map(|i| SimDur(1_000u64 << i)).collect();
        DurHistogram::new(bounds)
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDur) {
        let idx = self.bounds.partition_point(|&b| b <= d);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += d.nanos() as u128;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all recorded samples, or zero when empty.
    pub fn mean(&self) -> SimDur {
        if self.total == 0 {
            SimDur::ZERO
        } else {
            SimDur((self.sum_ns / self.total as u128) as u64)
        }
    }

    /// Approximate quantile: returns the upper bound of the bucket containing
    /// the q-th sample (q in `[0,1]`).
    pub fn quantile(&self, q: f64) -> SimDur {
        if self.total == 0 {
            return SimDur::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    SimDur::MAX
                };
            }
        }
        SimDur::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let t0 = SimTime::ZERO;
        let mut tw = TimeWeighted::new(t0, 0.0);
        tw.set(t0 + SimDur::from_secs(10), 4.0); // 0 for 10 s
        tw.set(t0 + SimDur::from_secs(20), 2.0); // 4 for 10 s
        let avg = tw.average(t0 + SimDur::from_secs(40)); // 2 for 20 s
                                                          // (0*10 + 4*10 + 2*20) / 40 = 2.0
        assert!((avg - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4.0);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::ZERO, 7.0);
        assert_eq!(tw.average(SimTime::ZERO), 7.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = DurHistogram::new(vec![
            SimDur::from_millis(1),
            SimDur::from_millis(10),
            SimDur::from_millis(100),
        ]);
        for _ in 0..90 {
            h.record(SimDur::from_micros(500)); // bucket 0
        }
        for _ in 0..10 {
            h.record(SimDur::from_millis(50)); // bucket 2
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), SimDur::from_millis(1));
        assert_eq!(h.quantile(0.95), SimDur::from_millis(100));
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = DurHistogram::new(vec![SimDur::from_millis(1)]);
        h.record(SimDur::from_secs(5));
        assert_eq!(h.quantile(1.0), SimDur::MAX);
        assert_eq!(h.mean(), SimDur::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn histogram_rejects_unsorted_bounds() {
        DurHistogram::new(vec![SimDur(5), SimDur(2)]);
    }
}
