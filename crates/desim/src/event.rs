//! Deterministic event calendar.
//!
//! The calendar is a priority queue of `(time, payload)` pairs. Events that
//! share a timestamp are delivered in insertion order, so simulation runs are
//! exactly reproducible: the queue behaves as a *stable* priority queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: Option<E>,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable, cancellable event calendar.
///
/// # Examples
///
/// ```
/// use desim::{Calendar, SimDur, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::ZERO + SimDur::from_secs(2), "late");
/// cal.schedule(SimTime::ZERO + SimDur::from_secs(1), "early");
/// let (t, e) = cal.pop().unwrap();
/// assert_eq!((t.nanos(), e), (1_000_000_000, "early"));
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers scheduled but not yet delivered or cancelled.
    pending: std::collections::HashSet<u64>,
    /// Sequence numbers of cancelled events not yet physically removed.
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` for delivery at `time` and returns a cancellation
    /// handle. Events at equal times are delivered in the order scheduled.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            payload: Some(payload),
        });
        self.pending.insert(seq);
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns true if the event was
    /// still pending (i.e. not yet delivered or cancelled); cancelling a
    /// delivered or already-cancelled handle is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Lazy deletion: remember the id and drop the entry when it surfaces
        // at the head of the heap.
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Returns the timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skim();
        let mut entry = self.heap.pop()?;
        self.pending.remove(&entry.seq);
        let payload = entry.payload.take().expect("entry payload present");
        Some((entry.time, payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drops cancelled entries sitting at the head of the heap.
    fn skim(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    fn at(s: u64) -> SimTime {
        SimTime::ZERO + SimDur::from_secs(s)
    }

    #[test]
    fn orders_by_time() {
        let mut cal = Calendar::new();
        cal.schedule(at(3), 3u32);
        cal.schedule(at(1), 1u32);
        cal.schedule(at(2), 2u32);
        let out: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn stable_at_equal_times() {
        let mut cal = Calendar::new();
        for i in 0..100u32 {
            cal.schedule(at(7), i);
        }
        let out: Vec<u32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut cal = Calendar::new();
        let a = cal.schedule(at(1), "a");
        cal.schedule(at(2), "b");
        assert!(cal.cancel(a));
        assert_eq!(cal.len(), 1);
        assert_eq!(cal.pop().map(|(_, e)| e), Some("b"));
        assert!(cal.is_empty());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut cal = Calendar::new();
        let a = cal.schedule(at(1), ());
        assert!(cal.cancel(a));
        assert!(!cal.cancel(a));
        assert!(cal.pop().is_none());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut cal = Calendar::new();
        let a = cal.schedule(at(1), "a");
        cal.schedule(at(5), "b");
        cal.cancel(a);
        assert_eq!(cal.peek_time(), Some(at(5)));
    }

    #[test]
    fn empty_calendar_behaves() {
        let mut cal: Calendar<()> = Calendar::new();
        assert!(cal.is_empty());
        assert_eq!(cal.peek_time(), None);
        assert!(cal.pop().is_none());
    }
}
