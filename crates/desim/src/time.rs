//! Simulated time.
//!
//! All simulation time is kept as an integer number of nanoseconds since the
//! start of the run. Using integers (rather than floats) keeps the simulator
//! exactly deterministic and makes event ordering total. Workload "cycles"
//! are converted to nanoseconds by the machine model, so one simulated
//! nanosecond corresponds to one cycle of a 1 GHz-equivalent processor.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(pub u64);

/// One microsecond.
pub const USEC: SimDur = SimDur(1_000);
/// One millisecond.
pub const MSEC: SimDur = SimDur(1_000_000);
/// One second.
pub const SEC: SimDur = SimDur(1_000_000_000);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        debug_assert!(earlier <= self, "time went backwards");
        SimDur(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// The empty span.
    pub const ZERO: SimDur = SimDur(0);
    /// The largest representable span.
    pub const MAX: SimDur = SimDur(u64::MAX);

    /// Builds a span from a nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDur {
        SimDur(ns)
    }

    /// Builds a span from a microsecond count.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDur {
        SimDur(us * 1_000)
    }

    /// Builds a span from a millisecond count.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDur {
        SimDur(ms * 1_000_000)
    }

    /// Builds a span from a second count.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDur {
        SimDur(s * 1_000_000_000)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDur {
        debug_assert!(s >= 0.0, "negative duration");
        SimDur((s * 1e9).round().clamp(0.0, u64::MAX as f64) as u64)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Returns this span expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns true if the span is empty.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// nanosecond.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDur {
        debug_assert!(factor >= 0.0, "negative scale factor");
        SimDur((self.0 as f64 * factor).round().clamp(0.0, u64::MAX as f64) as u64)
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.min(rhs.0))
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.max(rhs.0))
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDur {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fmt_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDur::from_millis(5);
        assert_eq!(t.nanos(), 5_000_000);
        assert_eq!(t.since(SimTime::ZERO), SimDur::from_millis(5));
        assert_eq!((t - SimDur::from_millis(5)), SimTime::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDur::from_secs(1), SEC);
        assert_eq!(SimDur::from_millis(1), MSEC);
        assert_eq!(SimDur::from_micros(1), USEC);
        assert_eq!(SimDur::from_secs_f64(0.25), SimDur::from_millis(250));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime(10);
        let b = SimTime(20);
        assert_eq!(a.saturating_since(b), SimDur::ZERO);
        assert_eq!(b.saturating_since(a), SimDur(10));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDur(100).mul_f64(1.5), SimDur(150));
        assert_eq!(SimDur(3).mul_f64(0.5), SimDur(2)); // round-half-up
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDur(12).to_string(), "12ns");
        assert_eq!(SimDur(12_000).to_string(), "12.000us");
        assert_eq!(SimDur(12_000_000).to_string(), "12.000ms");
        assert_eq!(SimDur(12_000_000_000).to_string(), "12.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_underflow_panics() {
        let _ = SimDur(1) - SimDur(2);
    }
}
