//! Lightweight structured tracing for simulation runs.
//!
//! Simulator components append [`TraceEvent`]s to a [`Tracer`]; harnesses
//! read the log back to build figures (e.g. runnable-process counts over
//! time, as in Figure 5 of the paper). Tracing can be disabled wholesale for
//! benchmark runs, in which case appends are nearly free.
//!
//! A tracer may be bounded with [`Tracer::with_capacity`], giving it
//! ring-buffer semantics: once full, each append overwrites the oldest
//! retained event and bumps a dropped-event counter. Long multiprogrammed
//! scenarios can therefore keep a recent window of the schedule without
//! growing an unbounded `Vec`.

use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent<K> {
    /// When the event occurred.
    pub time: SimTime,
    /// Component-defined event kind.
    pub kind: K,
}

/// An append-only trace log, optionally bounded (ring buffer).
#[derive(Clone, Debug)]
pub struct Tracer<K> {
    enabled: bool,
    /// Retained events. When bounded and full this is used as a ring with
    /// `head` marking the oldest entry; otherwise it is in emission order.
    events: Vec<TraceEvent<K>>,
    capacity: Option<usize>,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl<K> Default for Tracer<K> {
    fn default() -> Self {
        Self::new(true)
    }
}

impl<K> Tracer<K> {
    /// Creates an unbounded tracer; if `enabled` is false all appends are
    /// dropped (and not counted — the tracer is off, not overflowing).
    pub fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            events: Vec::new(),
            capacity: None,
            head: 0,
            dropped: 0,
        }
    }

    /// Creates an enabled tracer retaining at most `capacity` events; once
    /// full, each append evicts the oldest event and increments
    /// [`dropped`](Self::dropped). A capacity of 0 retains nothing.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
            capacity: Some(capacity),
            head: 0,
            dropped: 0,
        }
    }

    /// Returns whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The retention bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of events evicted (or refused, for capacity 0) because the
    /// buffer was full. Always 0 for unbounded or disabled tracers.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event (no-op when disabled; evicts the oldest retained
    /// event when bounded and full).
    #[inline]
    pub fn emit(&mut self, time: SimTime, kind: K) {
        if !self.enabled {
            return;
        }
        match self.capacity {
            Some(0) => self.dropped += 1,
            Some(cap) if self.events.len() == cap => {
                self.events[self.head] = TraceEvent { time, kind };
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.events.push(TraceEvent { time, kind }),
        }
    }

    /// Retained events in emission order (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent<K>> {
        let (wrapped, start) = self.events.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true if no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the tracer and returns the event log in emission order.
    pub fn into_events(mut self) -> Vec<TraceEvent<K>> {
        self.events.rotate_left(self.head);
        self.events
    }

    /// Iterates over events matching a predicate, oldest first.
    pub fn filtered<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a TraceEvent<K>>
    where
        F: FnMut(&K) -> bool + 'a,
    {
        self.events().filter(move |e| pred(&e.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    #[test]
    fn records_in_order() {
        let mut t = Tracer::new(true);
        t.emit(SimTime::ZERO, "a");
        t.emit(SimTime::ZERO + SimDur::from_secs(1), "b");
        assert_eq!(t.len(), 2);
        let events: Vec<_> = t.events().collect();
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].time, SimTime::ZERO + SimDur::from_secs(1));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn disabled_drops_everything() {
        let mut t = Tracer::new(false);
        t.emit(SimTime::ZERO, 1u8);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn filtered_selects() {
        let mut t = Tracer::new(true);
        for i in 0..10u32 {
            t.emit(SimTime(i as u64), i);
        }
        let evens: Vec<u32> = t.filtered(|k| k % 2 == 0).map(|e| e.kind).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn bounded_keeps_most_recent_in_order() {
        let mut t = Tracer::with_capacity(4);
        for i in 0..10u32 {
            t.emit(SimTime(i as u64), i);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let kept: Vec<u32> = t.events().map(|e| e.kind).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        // Timestamps still monotone across the ring seam.
        let times: Vec<u64> = t.events().map(|e| e.time.nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bounded_into_events_linearizes() {
        let mut t = Tracer::with_capacity(3);
        for i in 0..5u32 {
            t.emit(SimTime(i as u64), i);
        }
        let out: Vec<u32> = t.into_events().into_iter().map(|e| e.kind).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn capacity_zero_counts_but_keeps_nothing() {
        let mut t = Tracer::with_capacity(0);
        t.emit(SimTime::ZERO, 1u8);
        t.emit(SimTime::ZERO, 2u8);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn under_capacity_behaves_like_unbounded() {
        let mut t = Tracer::with_capacity(16);
        for i in 0..5u32 {
            t.emit(SimTime(i as u64), i);
        }
        assert_eq!(t.dropped(), 0);
        let kept: Vec<u32> = t.events().map(|e| e.kind).collect();
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
    }
}
