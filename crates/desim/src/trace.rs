//! Lightweight structured tracing for simulation runs.
//!
//! Simulator components append [`TraceEvent`]s to a [`Tracer`]; harnesses
//! read the log back to build figures (e.g. runnable-process counts over
//! time, as in Figure 5 of the paper). Tracing can be disabled wholesale for
//! benchmark runs, in which case appends are nearly free.

use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent<K> {
    /// When the event occurred.
    pub time: SimTime,
    /// Component-defined event kind.
    pub kind: K,
}

/// An append-only trace log.
#[derive(Clone, Debug)]
pub struct Tracer<K> {
    enabled: bool,
    events: Vec<TraceEvent<K>>,
}

impl<K> Default for Tracer<K> {
    fn default() -> Self {
        Self::new(true)
    }
}

impl<K> Tracer<K> {
    /// Creates a tracer; if `enabled` is false all appends are dropped.
    pub fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            events: Vec::new(),
        }
    }

    /// Returns whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, time: SimTime, kind: K) {
        if self.enabled {
            self.events.push(TraceEvent { time, kind });
        }
    }

    /// All retained events, in emission order.
    pub fn events(&self) -> &[TraceEvent<K>] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true if no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the tracer and returns the event log.
    pub fn into_events(self) -> Vec<TraceEvent<K>> {
        self.events
    }

    /// Iterates over events matching a predicate.
    pub fn filtered<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a TraceEvent<K>>
    where
        F: FnMut(&K) -> bool + 'a,
    {
        self.events.iter().filter(move |e| pred(&e.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    #[test]
    fn records_in_order() {
        let mut t = Tracer::new(true);
        t.emit(SimTime::ZERO, "a");
        t.emit(SimTime::ZERO + SimDur::from_secs(1), "b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].kind, "a");
        assert_eq!(t.events()[1].time, SimTime::ZERO + SimDur::from_secs(1));
    }

    #[test]
    fn disabled_drops_everything() {
        let mut t = Tracer::new(false);
        t.emit(SimTime::ZERO, 1u8);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn filtered_selects() {
        let mut t = Tracer::new(true);
        for i in 0..10u32 {
            t.emit(SimTime(i as u64), i);
        }
        let evens: Vec<u32> = t.filtered(|k| k % 2 == 0).map(|e| e.kind).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }
}
