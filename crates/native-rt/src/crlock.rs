//! A concurrency-restricting lock (CR lock), after Dice & Kogan's
//! *Malthusian Locks* and *Avoiding Scalability Collapse by Restricting
//! Concurrency*.
//!
//! The paper's Figure-1 collapse is, at bottom, a saturated-lock problem:
//! once more threads contend for a lock than the lock can service, every
//! additional contender only adds cache-line traffic and preemption
//! exposure. A CR lock fixes this *locally*: it splits contenders into a
//! small **active set** that is admitted to the inner lock and a passive
//! **culled list** whose threads park instead of competing. Culled
//! threads are promoted back periodically, so long-run fairness holds
//! even though short-run admission is deliberately unfair (LIFO — the
//! most recently culled thread has the warmest cache).
//!
//! Two layers:
//!
//! - [`CrGate`] is the admission mechanism alone — an `enter()`/`exit()`
//!   pair callers wrap around an *existing* contended acquisition (the
//!   pool's injector sweep, the central pool's queue mutex). This is how
//!   CR retrofits onto locks that also carry condvars.
//! - [`CrLock`] composes a gate with an inner [`RawLock`] and the data it
//!   protects — the self-contained form `lock_bench` measures.
//!
//! **Hand-off protocol** (no lost wakeup — modeled in
//! `tests/loom_crlock.rs`): an arriving thread that finds the active set
//! full publishes itself on the culled list and then *re-checks*
//! admission before parking; a releasing thread first tries to transfer
//! its slot to a culled thread, and after giving a slot back re-checks
//! the culled list. The two store→load pairs (`passive_len` vs `admitted`)
//! form a Dekker handshake and use `SeqCst` so at least one side always
//! sees the other.
//!
//! **Adaptive sizing**: with [`AdaptiveConfig`] set, the gate samples the
//! observed acquisition latency of the inner lock. When hold+hand-off
//! time degrades against the best latency seen, the active set shrinks
//! (fewer contenders ⇒ shorter convoys); when the lock is underutilized
//! while threads sit culled, it grows. See DESIGN.md §15.

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::stats::{Counter, Gauge, Hist, Registry};

/// Configuration of one concurrency-restricting gate or lock.
#[derive(Clone, Copy, Debug)]
pub struct CrConfig {
    /// Initial (and, without [`CrConfig::adaptive`], permanent) active-set
    /// size: how many threads may contend for the inner lock at once.
    pub active_max: usize,
    /// Fairness cadence: a culled thread older than this many admissions
    /// is promoted oldest-first instead of LIFO, bounding starvation (see
    /// [`promote_index`]).
    pub promotion_interval: u64,
    /// Adaptive active-set sizing; `None` keeps `active_max` fixed.
    pub adaptive: Option<AdaptiveConfig>,
}

impl CrConfig {
    /// A fixed-size active set of `active_max` threads with the default
    /// promotion cadence.
    pub fn fixed(active_max: usize) -> Self {
        CrConfig {
            active_max,
            promotion_interval: 64,
            adaptive: None,
        }
    }

    /// Enables adaptive sizing with the given bounds.
    pub fn with_adaptive(mut self, adaptive: AdaptiveConfig) -> Self {
        self.adaptive = Some(adaptive);
        self
    }
}

impl Default for CrConfig {
    /// Two admitted threads — enough to keep a hand-off pipelined,
    /// few enough that convoys cannot form.
    fn default() -> Self {
        CrConfig::fixed(2)
    }
}

/// Bounds and cadence of the adaptive active-set policy.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Smallest active set the policy may shrink to (≥ 1).
    pub min: usize,
    /// Largest active set the policy may grow to.
    pub max: usize,
    /// Latency samples between sizing decisions.
    pub adapt_every: u64,
    /// Shrink when the latency EWMA exceeds `shrink_ratio ×` the best
    /// EWMA observed (hold+hand-off has degraded).
    pub shrink_ratio: f64,
    /// Grow when the EWMA is below `grow_ratio ×` the best EWMA *and*
    /// threads are culled (the lock has headroom someone is waiting for).
    pub grow_ratio: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min: 1,
            max: 64,
            adapt_every: 128,
            shrink_ratio: 2.0,
            grow_ratio: 1.25,
        }
    }
}

/// Pure promotion policy, shared by the gate, the fairness proptest, and
/// (mirrored) the simulation model in `uthreads`.
///
/// `cull_stamps` holds, oldest first, the admission count at which each
/// culled thread was culled; `now` is the current admission count. The
/// returned index is the entry to promote: LIFO (the back — warmest
/// cache) unless the oldest entry has waited at least `interval`
/// admissions, in which case the oldest is promoted. Once a thread is
/// the oldest waiter it is therefore promoted within `interval`
/// admissions, which bounds every thread's wait (the starvation-bound
/// proptest in `tests/crlock_fairness.rs` pins the constant).
pub fn promote_index(cull_stamps: &VecDeque<u64>, now: u64, interval: u64) -> Option<usize> {
    let oldest = *cull_stamps.front()?;
    if now.saturating_sub(oldest) >= interval {
        Some(0)
    } else {
        Some(cull_stamps.len() - 1)
    }
}

/// The adaptive active-set sizer: a pure state machine fed acquisition
/// latencies, emitting a new active-set size when the policy moves.
#[derive(Clone, Debug)]
pub struct AdaptiveSizer {
    cfg: AdaptiveConfig,
    ewma_ns: f64,
    best_ns: f64,
    since_adapt: u64,
}

impl AdaptiveSizer {
    /// A sizer with the given bounds and cadence.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveSizer {
            cfg,
            ewma_ns: 0.0,
            best_ns: 0.0,
            since_adapt: 0,
        }
    }

    /// Feeds one observed acquisition latency. `cur_max` is the current
    /// active-set size and `culled_waiting` whether any thread sits on
    /// the culled list. Returns `Some(new_max)` when the policy resizes.
    pub fn observe(
        &mut self,
        latency_ns: u64,
        cur_max: usize,
        culled_waiting: bool,
    ) -> Option<usize> {
        let x = latency_ns as f64;
        self.ewma_ns = if self.ewma_ns == 0.0 {
            x
        } else {
            self.ewma_ns * 0.875 + x * 0.125
        };
        self.since_adapt += 1;
        if self.since_adapt < self.cfg.adapt_every {
            return None;
        }
        self.since_adapt = 0;
        if self.best_ns == 0.0 || self.ewma_ns < self.best_ns {
            self.best_ns = self.ewma_ns;
        }
        if self.ewma_ns > self.cfg.shrink_ratio * self.best_ns && cur_max > self.cfg.min {
            Some(cur_max - 1)
        } else if self.ewma_ns < self.cfg.grow_ratio * self.best_ns
            && culled_waiting
            && cur_max < self.cfg.max
        {
            Some(cur_max + 1)
        } else {
            None
        }
    }
}

/// Registry-backed statistics of one gate.
struct CrStats {
    passivations: Counter,
    promotions: Counter,
    active_size: Gauge,
    cull_ns: Hist,
}

impl CrStats {
    fn register(registry: &Registry) -> Self {
        CrStats {
            passivations: registry.counter("cr_passivations"),
            promotions: registry.counter("cr_promotions"),
            active_size: registry.gauge("cr_active_size"),
            cull_ns: registry.histogram("cr_cull_ns"),
        }
    }
}

/// One culled thread's park token. The promoter sets `promoted` under
/// the token's own mutex and signals; the parker loops on the flag, so a
/// promotion that lands before the park is never lost.
struct Waiter {
    promoted: Mutex<bool>,
    cv: Condvar,
}

/// The mutex-protected slow-path state: the culled list (with cull
/// stamps for the fairness policy) and the adaptive sizer.
struct CrCore {
    /// Culled threads, oldest first, each with the admission count at
    /// cull time.
    culled: VecDeque<(Arc<Waiter>, u64)>,
    sizer: Option<AdaptiveSizer>,
}

/// How a thread got through [`CrGate::enter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted directly — the active set had room.
    Direct,
    /// Culled first, then promoted (or self-admitted on the re-check);
    /// `waited_ns` is the time spent parked on the culled list.
    Culled {
        /// Nanoseconds spent culled before promotion.
        waited_ns: u64,
    },
}

/// The concurrency-restricting admission gate.
///
/// Wrap a contended acquisition in `enter()` … `exit()`: at most
/// `active_max` threads are between the two at any instant; the rest
/// park on the culled list and are promoted per [`promote_index`].
pub struct CrGate {
    /// Threads currently admitted (between `enter` and `exit`).
    // sched-atomic(seqcst): Dekker store-load handshake with
    // `passive_len` — the parker publishes itself then re-checks
    // `admitted`; the releaser decrements `admitted` then re-checks
    // `passive_len`. SeqCst total order guarantees at least one side
    // sees the other (no lost wakeup); modeled in tests/loom_crlock.rs.
    admitted: AtomicUsize,
    /// Culled-list occupancy, maintained under `core`'s mutex.
    // sched-atomic(seqcst): the other half of the Dekker handshake with
    // `admitted`; see above and tests/loom_crlock.rs.
    passive_len: AtomicUsize,
    /// Current active-set bound (written by the adaptive policy).
    // sched-atomic(relaxed): advisory admission bound; exceeding or
    // undershooting it momentarily is harmless, the mutex-protected
    // sizer is the only writer.
    active_max: AtomicUsize,
    /// Total admissions, the fairness policy's clock.
    // sched-atomic(relaxed): monotonic stamp source for promote_index;
    // ± a few ticks only skews the LIFO/oldest choice.
    admissions: AtomicU64,
    promotion_interval: u64,
    /// Whether an adaptive sizer is installed — checked on the hot path
    /// so fixed-size gates skip latency timestamping and the `core`
    /// mutex entirely.
    adaptive_enabled: bool,
    core: Mutex<CrCore>,
    stats: CrStats,
    /// Keeps a privately created registry alive for `CrGate::new`.
    _own_registry: Option<Arc<Registry>>,
}

impl CrGate {
    /// A gate with a private statistics registry.
    pub fn new(cfg: CrConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let mut gate = Self::with_registry(cfg, &registry);
        gate._own_registry = Some(registry);
        gate
    }

    /// A gate whose `cr_*` statistics ride `registry` (the pool's, so
    /// they show up in `STATS` exports and `schedtop`).
    pub fn with_registry(cfg: CrConfig, registry: &Registry) -> Self {
        assert!(cfg.active_max >= 1, "an empty active set admits no one");
        assert!(cfg.promotion_interval >= 1, "promotion cadence must be ≥ 1");
        let stats = CrStats::register(registry);
        stats.active_size.set(cfg.active_max as i64);
        CrGate {
            admitted: AtomicUsize::new(0),
            passive_len: AtomicUsize::new(0),
            active_max: AtomicUsize::new(cfg.active_max),
            admissions: AtomicU64::new(0),
            promotion_interval: cfg.promotion_interval,
            adaptive_enabled: cfg.adaptive.is_some(),
            core: Mutex::new(CrCore {
                culled: VecDeque::new(),
                sizer: cfg.adaptive.map(AdaptiveSizer::new),
            }),
            stats,
            _own_registry: None,
        }
    }

    /// Current active-set bound.
    pub fn active_max(&self) -> usize {
        self.active_max.load(Ordering::Relaxed)
    }

    /// Threads currently culled.
    pub fn culled(&self) -> usize {
        self.passive_len.load(Ordering::SeqCst)
    }

    /// Claims an active-set slot if the set has room.
    fn try_admit(&self) -> bool {
        let max = self.active_max.load(Ordering::Relaxed);
        loop {
            let a = self.admitted.load(Ordering::SeqCst);
            if a >= max {
                return false;
            }
            if self
                .admitted
                .compare_exchange(a, a + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.admissions.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
    }

    /// Enters the gate, culling (parking) the calling thread if the
    /// active set is full. Returns how admission happened.
    pub fn enter(&self) -> Admission {
        if self.try_admit() {
            return Admission::Direct;
        }
        // Slow path: publish ourselves on the culled list, then re-check
        // admission — a releaser that decremented `admitted` before our
        // publish cannot have seen us, so we must look again ourselves.
        let waiter = Arc::new(Waiter {
            promoted: Mutex::new(false),
            cv: Condvar::new(),
        });
        let culled_at = Instant::now();
        {
            let mut core = self.core.lock();
            let stamp = self.admissions.load(Ordering::Relaxed);
            core.culled.push_back((Arc::clone(&waiter), stamp));
            self.passive_len.fetch_add(1, Ordering::SeqCst);
        }
        if self.try_admit() {
            // Raced a release: we hold a fresh slot. Withdraw from the
            // culled list — unless a promoter already popped us, in
            // which case we hold *two* slots and must give one back.
            let mut core = self.core.lock();
            if let Some(pos) = core
                .culled
                .iter()
                .position(|(w, _)| Arc::ptr_eq(w, &waiter))
            {
                core.culled.remove(pos);
                self.passive_len.fetch_sub(1, Ordering::SeqCst);
                return Admission::Direct;
            }
            drop(core);
            self.admitted.fetch_sub(1, Ordering::SeqCst);
            // Fall through to the park, which returns immediately: the
            // promoter has already set our flag (or is about to).
        }
        self.stats.passivations.incr();
        let mut flag = waiter.promoted.lock();
        while !*flag {
            waiter.cv.wait(&mut flag);
        }
        drop(flag);
        let waited_ns = culled_at.elapsed().as_nanos() as u64;
        self.stats.cull_ns.record(waited_ns);
        Admission::Culled { waited_ns }
    }

    /// Pops a culled thread per the fairness policy and hands it the
    /// caller's slot. Returns false if the list was empty.
    fn promote(&self) -> bool {
        let waiter = {
            let mut core = self.core.lock();
            let stamps: VecDeque<u64> = core.culled.iter().map(|&(_, s)| s).collect();
            let now = self.admissions.load(Ordering::Relaxed);
            let Some(idx) = promote_index(&stamps, now, self.promotion_interval) else {
                return false;
            };
            let (waiter, _) = core.culled.remove(idx).expect("index from promote_index");
            self.passive_len.fetch_sub(1, Ordering::SeqCst);
            waiter
        };
        self.admissions.fetch_add(1, Ordering::Relaxed);
        self.stats.promotions.incr();
        *waiter.promoted.lock() = true;
        waiter.cv.notify_one();
        true
    }

    /// Leaves the gate: transfers the slot to a culled thread, or gives
    /// it back and re-checks for late arrivals (the Dekker pairing —
    /// see the `admitted` field). Returns true when a thread was promoted.
    pub fn exit(&self) -> bool {
        if self.passive_len.load(Ordering::SeqCst) > 0 && self.promote() {
            return true;
        }
        self.admitted.fetch_sub(1, Ordering::SeqCst);
        loop {
            if self.passive_len.load(Ordering::SeqCst) == 0 {
                return false;
            }
            // Someone culled themselves between our check and decrement.
            // Re-claim a slot and hand it over; if the set refilled
            // meanwhile, those holders will promote on their own exit.
            if !self.try_admit() {
                return false;
            }
            if self.promote() {
                return true;
            }
            self.admitted.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Whether this gate carries an adaptive sizer (callers can skip
    /// latency measurement otherwise).
    pub fn adaptive_enabled(&self) -> bool {
        self.adaptive_enabled
    }

    /// Feeds one observed inner-lock acquisition latency to the adaptive
    /// sizer (no-op without [`CrConfig::adaptive`]).
    pub fn observe_acquire(&self, latency_ns: u64) {
        if !self.adaptive_enabled {
            return;
        }
        let mut core = self.core.lock();
        let culled_waiting = !core.culled.is_empty();
        let cur = self.active_max.load(Ordering::Relaxed);
        let resized = core
            .sizer
            .as_mut()
            .and_then(|s| s.observe(latency_ns, cur, culled_waiting));
        drop(core);
        if let Some(new_max) = resized {
            self.active_max.store(new_max, Ordering::Relaxed);
            self.stats.active_size.set(new_max as i64);
        }
    }

    /// Point-in-time `cr_*` statistics: (passivations, promotions).
    pub fn counters(&self) -> (u64, u64) {
        (self.stats.passivations.get(), self.stats.promotions.get())
    }
}

/// The minimal mutual-exclusion surface [`CrLock`] composes over.
pub trait RawLock: Send + Sync {
    /// Acquires the lock, blocking (or spinning) until held.
    fn lock(&self);
    /// Acquires the lock if free; never blocks.
    fn try_lock(&self) -> bool;
    /// Releases the lock. Caller must hold it.
    fn unlock(&self);
}

/// A test-and-test-and-set spinlock — the inner lock whose collapse the
/// CR layer prevents (spinning is exactly what the culled list removes).
#[derive(Default)]
pub struct RawSpin {
    // sched-atomic(handoff): the Release store in unlock publishes the
    // critical section to the next holder's Acquire CAS/load.
    locked: AtomicUsize,
}

impl RawLock for RawSpin {
    fn lock(&self) {
        loop {
            if self.try_lock() {
                return;
            }
            while self.locked.load(Ordering::Acquire) != 0 {
                std::hint::spin_loop();
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    fn unlock(&self) {
        self.locked.store(0, Ordering::Release);
    }
}

/// A parking (sleeping) inner lock, for hold times long enough that
/// spinning is waste even inside the active set.
#[derive(Default)]
pub struct RawParking {
    held: Mutex<bool>,
    cv: Condvar,
}

impl RawLock for RawParking {
    fn lock(&self) {
        let mut held = self.held.lock();
        while *held {
            self.cv.wait(&mut held);
        }
        *held = true;
    }

    fn try_lock(&self) -> bool {
        let mut held = self.held.lock();
        if *held {
            false
        } else {
            *held = true;
            true
        }
    }

    fn unlock(&self) {
        *self.held.lock() = false;
        self.cv.notify_one();
    }
}

/// A concurrency-restricting lock: a [`CrGate`] in front of an inner
/// [`RawLock`] and the data it protects.
pub struct CrLock<T, L: RawLock = RawSpin> {
    gate: CrGate,
    inner: L,
    data: UnsafeCell<T>,
}

// `lock()` admits through the gate and then acquires `inner` before
// handing out a guard, and the guard releases both on drop.
// SAFETY: mutual exclusion — at most one `CrGuard` (and thus one
// `&mut T`) exists at a time, so `T: Send` suffices for sharing.
unsafe impl<T: Send, L: RawLock> Sync for CrLock<T, L> {}
// SAFETY: moving the lock moves the owned data; no thread affinity.
unsafe impl<T: Send, L: RawLock> Send for CrLock<T, L> {}

impl<T, L: RawLock + Default> CrLock<T, L> {
    /// A CR lock over `data` with a default-constructed inner lock.
    pub fn new(cfg: CrConfig, data: T) -> Self {
        CrLock {
            gate: CrGate::new(cfg),
            inner: L::default(),
            data: UnsafeCell::new(data),
        }
    }
}

impl<T, L: RawLock> CrLock<T, L> {
    /// Acquires the lock: gate admission first (possibly parking on the
    /// culled list), then the inner lock. With an adaptive sizer the
    /// measured admission-to-held latency feeds it; fixed-size gates
    /// skip the two clock reads.
    pub fn lock(&self) -> CrGuard<'_, T, L> {
        self.gate.enter();
        if self.gate.adaptive_enabled() {
            let admitted_at = Instant::now();
            self.inner.lock();
            self.gate
                .observe_acquire(admitted_at.elapsed().as_nanos() as u64);
        } else {
            self.inner.lock();
        }
        CrGuard { lock: self }
    }

    /// The admission gate, for inspecting `cr_*` statistics.
    pub fn gate(&self) -> &CrGate {
        &self.gate
    }
}

/// RAII guard of a [`CrLock`]; releases the inner lock and the gate slot
/// on drop.
pub struct CrGuard<'a, T, L: RawLock> {
    lock: &'a CrLock<T, L>,
}

impl<T, L: RawLock> Deref for CrGuard<'_, T, L> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only between inner-lock acquisition
        // and release, so this thread has exclusive access to `data`.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T, L: RawLock> DerefMut for CrGuard<'_, T, L> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive access under the held lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T, L: RawLock> Drop for CrGuard<'_, T, L> {
    fn drop(&mut self) {
        self.lock.inner.unlock();
        self.lock.gate.exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;

    #[test]
    fn gate_admits_up_to_active_max_directly() {
        let gate = CrGate::new(CrConfig::fixed(2));
        assert_eq!(gate.enter(), Admission::Direct);
        assert_eq!(gate.enter(), Admission::Direct);
        assert_eq!(gate.culled(), 0);
        assert!(!gate.exit());
        assert!(!gate.exit());
    }

    #[test]
    fn excess_threads_are_culled_and_promoted() {
        let gate = Arc::new(CrGate::new(CrConfig::fixed(1)));
        let inside = Arc::new(StdAtomicUsize::new(0));
        let peak = Arc::new(StdAtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        g.enter();
                        let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        g.exit();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "active set of 1 breached");
        assert_eq!(gate.culled(), 0, "culled list drained");
    }

    /// Deterministic cull + promote: while the only slot is held, a
    /// second entrant *must* park; the holder's exit must hand over.
    #[test]
    fn blocked_entrant_is_culled_and_release_promotes_it() {
        let gate = Arc::new(CrGate::new(CrConfig::fixed(1)));
        assert_eq!(gate.enter(), Admission::Direct);
        let g = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            let admission = g.enter();
            g.exit();
            admission
        });
        // The slot is held, so the entrant cannot self-admit: once it
        // shows on the culled list it is committed to parking.
        while gate.culled() == 0 {
            std::thread::yield_now();
        }
        assert!(gate.exit(), "release with a culled thread must promote");
        match t.join().unwrap() {
            Admission::Culled { .. } => {}
            a => panic!("expected a culled admission, got {a:?}"),
        }
        let (passivations, promotions) = gate.counters();
        assert!(passivations >= 1, "parked entrant not counted");
        assert!(promotions >= 1, "hand-off not counted");
        assert_eq!(gate.culled(), 0);
    }

    #[test]
    fn crlock_protects_its_data() {
        let lk: Arc<CrLock<u64>> = Arc::new(CrLock::new(CrConfig::fixed(2), 0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lk = Arc::clone(&lk);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *lk.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lk.lock(), 4_000);
    }

    #[test]
    fn crlock_over_parking_inner_also_counts_correctly() {
        let lk: Arc<CrLock<u64, RawParking>> = Arc::new(CrLock::new(CrConfig::fixed(1), 0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lk = Arc::clone(&lk);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        *lk.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lk.lock(), 2_000);
    }

    #[test]
    fn promote_index_is_lifo_until_the_oldest_is_overdue() {
        let stamps: VecDeque<u64> = [10, 20, 30].into_iter().collect();
        // Oldest culled at 10; at admission 40 it has waited 30 < 64.
        assert_eq!(promote_index(&stamps, 40, 64), Some(2));
        // At admission 80 it is overdue: promote oldest-first.
        assert_eq!(promote_index(&stamps, 80, 64), Some(0));
        assert_eq!(promote_index(&VecDeque::new(), 80, 64), None);
    }

    #[test]
    fn sizer_shrinks_on_degradation_and_grows_on_headroom() {
        let cfg = AdaptiveConfig {
            min: 1,
            max: 8,
            adapt_every: 4,
            shrink_ratio: 2.0,
            grow_ratio: 1.25,
        };
        let mut s = AdaptiveSizer::new(cfg);
        // Establish a fast baseline.
        let mut cur = 4usize;
        for _ in 0..4 {
            if let Some(n) = s.observe(1_000, cur, false) {
                cur = n;
            }
        }
        // Latency degrades 100×: the EWMA crosses 2× best → shrink.
        let mut shrunk = false;
        for _ in 0..64 {
            if let Some(n) = s.observe(100_000, cur, false) {
                assert!(n < cur, "degradation must shrink, got {n} from {cur}");
                cur = n;
                shrunk = true;
                break;
            }
        }
        assert!(shrunk, "sizer never reacted to degradation");
        // Recovery with culled threads waiting → grow again.
        let mut grew = false;
        for _ in 0..256 {
            if let Some(n) = s.observe(900, cur, true) {
                if n > cur {
                    grew = true;
                    break;
                }
                cur = n;
            }
        }
        assert!(grew, "sizer never grew back on headroom");
    }

    #[test]
    fn adaptive_gate_updates_its_gauge() {
        let registry = Arc::new(Registry::new());
        let cfg = CrConfig {
            active_max: 4,
            promotion_interval: 16,
            adaptive: Some(AdaptiveConfig {
                adapt_every: 2,
                ..AdaptiveConfig::default()
            }),
        };
        let gate = CrGate::with_registry(cfg, &registry);
        assert_eq!(registry.snapshot().gauges["cr_active_size"], 4);
        for _ in 0..4 {
            gate.observe_acquire(1_000);
        }
        // Degrade hard; the gauge must track the shrink.
        for _ in 0..64 {
            gate.observe_acquire(1_000_000);
        }
        assert!(
            registry.snapshot().gauges["cr_active_size"] < 4,
            "gauge did not track the adaptive shrink"
        );
    }
}
