//! A fault-injecting Unix-socket proxy for chaos-testing the control
//! plane.
//!
//! The proxy sits between a [`crate::UdsClient`] and a
//! [`crate::UdsServer`], forwarding request lines upstream untouched and
//! applying seeded, deterministic faults to the reply stream:
//!
//! - **drop** — swallow a reply line (the client waits, then times out);
//! - **delay** — hold a reply for a fixed duration before forwarding;
//! - **truncate** — forward half a reply with no newline, then sever the
//!   connection (a torn frame);
//! - **garble** — overwrite the reply's payload bytes (a corrupt frame,
//!   still newline-terminated);
//! - **disconnect** — sever the connection between replies.
//!
//! The whole proxy can also be [paused](ChaosProxy::pause), freezing both
//! directions — the "wedged but alive" server that only client-side
//! timeouts and server-side leases can defend against.
//!
//! All randomness comes from one seeded xorshift per connection
//! (`seed ^ connection-index`), so a given configuration replays the same
//! fault schedule every run — chaos tests stay deterministic. Injected
//! faults are counted in a [`Registry`] readable via
//! [`ChaosProxy::stats`].
//!
//! Wire faults exercise the *control* plane; [`JobChaos`] extends the
//! same seeded-schedule idea to the *data* plane, wrapping pool jobs so
//! a deterministic fraction panic or stall in place. That is what the
//! pool's panic isolation (`jobs_panicked` conservation) and stall
//! watchdog (`stalls_detected`, `Stall`/`Recovered` trace events) are
//! tested against.
//!
//! This is a test-support module: the CI `chaos` lane drives it with a
//! fixed seed (see `crates/native-rt/tests/chaos.rs`).

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::stats::{Registry, Snapshot};

/// Proxy tuning: where to listen, where to forward, and the fault mix.
///
/// Probabilities are per reply line and evaluated in the order
/// disconnect → drop → truncate → garble → delay; their sum should stay
/// ≤ 1.0 (the remainder is clean forwarding).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Socket path the proxy listens on (clients connect here).
    pub listen: PathBuf,
    /// Socket path of the real server.
    pub upstream: PathBuf,
    /// RNG seed; a fixed seed replays the same fault schedule.
    pub seed: u64,
    /// Probability of severing the connection instead of forwarding.
    pub disconnect_prob: f64,
    /// Probability of swallowing a reply line.
    pub drop_prob: f64,
    /// Probability of forwarding a torn (half, unterminated) reply and
    /// then severing the connection.
    pub truncate_prob: f64,
    /// Probability of corrupting a reply's payload bytes.
    pub garble_prob: f64,
    /// Probability of delaying a reply by [`ChaosConfig::delay`].
    pub delay_prob: f64,
    /// How long a delayed reply is held.
    pub delay: Duration,
}

impl ChaosConfig {
    /// A clean pass-through proxy (all fault probabilities zero).
    pub fn passthrough(
        listen: impl Into<PathBuf>,
        upstream: impl Into<PathBuf>,
        seed: u64,
    ) -> Self {
        ChaosConfig {
            listen: listen.into(),
            upstream: upstream.into(),
            seed,
            disconnect_prob: 0.0,
            drop_prob: 0.0,
            truncate_prob: 0.0,
            garble_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(50),
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn unit(state: &mut u64) -> f64 {
    (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// What the fault schedule decided for one reply line.
enum Fault {
    Forward,
    Disconnect,
    Drop,
    Truncate,
    Garble,
    Delay,
}

fn pick_fault(cfg: &ChaosConfig, rng: &mut u64) -> Fault {
    let r = unit(rng);
    let mut edge = cfg.disconnect_prob;
    if r < edge {
        return Fault::Disconnect;
    }
    edge += cfg.drop_prob;
    if r < edge {
        return Fault::Drop;
    }
    edge += cfg.truncate_prob;
    if r < edge {
        return Fault::Truncate;
    }
    edge += cfg.garble_prob;
    if r < edge {
        return Fault::Garble;
    }
    edge += cfg.delay_prob;
    if r < edge {
        return Fault::Delay;
    }
    Fault::Forward
}

/// What [`JobChaos`] decided for one wrapped job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFault {
    /// Run the wrapped work unchanged.
    Run,
    /// Panic instead of running the work — exercises the pool's
    /// catch_unwind isolation and `jobs_panicked` conservation.
    Panic,
    /// Sleep past the watchdog's stall threshold, then run the work —
    /// exercises stall detection and the `Stall`/`Recovered` events.
    Stall,
}

/// Seeded generator of misbehaving pool jobs.
///
/// Wraps ordinary closures so a deterministic fraction panic or stall
/// in place, with the same replay guarantee as the wire proxy: one
/// xorshift stream per instance, schedule a pure function of the seed.
/// The caller reads [`JobChaos::injected`] afterwards to know exactly
/// how many faults of each kind went in, which is what conservation
/// assertions (`submitted == jobs_run + jobs_panicked`) check against.
#[derive(Debug)]
pub struct JobChaos {
    rng: u64,
    panic_prob: f64,
    stall_prob: f64,
    stall_for: Duration,
    panics: u64,
    stalls: u64,
}

impl JobChaos {
    /// A schedule injecting panics and stalls with the given per-job
    /// probabilities (evaluated in that order; their sum should stay
    /// ≤ 1.0). Stalled jobs sleep `stall_for` before doing their work.
    pub fn new(seed: u64, panic_prob: f64, stall_prob: f64, stall_for: Duration) -> Self {
        JobChaos {
            rng: seed,
            panic_prob,
            stall_prob,
            stall_for,
            panics: 0,
            stalls: 0,
        }
    }

    /// Draws the next fault from the schedule and tallies it.
    pub fn next_fault(&mut self) -> JobFault {
        let r = unit(&mut self.rng);
        if r < self.panic_prob {
            self.panics += 1;
            JobFault::Panic
        } else if r < self.panic_prob + self.stall_prob {
            self.stalls += 1;
            JobFault::Stall
        } else {
            JobFault::Run
        }
    }

    /// Wraps `work` with the next fault in the schedule. The returned
    /// closure is submitted to a pool like any other job; the returned
    /// [`JobFault`] tells the caller what will happen when it runs.
    pub fn wrap<F>(&mut self, work: F) -> (JobFault, Box<dyn FnOnce() + Send + 'static>)
    where
        F: FnOnce() + Send + 'static,
    {
        let fault = self.next_fault();
        let stall_for = self.stall_for;
        let job: Box<dyn FnOnce() + Send + 'static> = match fault {
            JobFault::Run => Box::new(work),
            JobFault::Panic => Box::new(|| panic!("chaos: injected job panic")),
            JobFault::Stall => Box::new(move || {
                std::thread::sleep(stall_for);
                work();
            }),
        };
        (fault, job)
    }

    /// `(panics, stalls)` injected so far.
    pub fn injected(&self) -> (u64, u64) {
        (self.panics, self.stalls)
    }
}

/// The running fault-injection proxy. Dropping it stops the listener,
/// severs every proxied connection, and removes the listen socket.
pub struct ChaosProxy {
    listen_path: PathBuf,
    // sched-atomic(handoff): Release store in Drop publishes the
    // tear-down decision before the listener socket is unlinked; pump
    // threads' Acquire loads pair with it.
    stop: Arc<AtomicBool>,
    // sched-atomic(handoff): pause()/resume() publish with Release; the
    // pump loop's Acquire load pairs with it.
    paused: Arc<AtomicBool>,
    registry: Arc<Registry>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds the listen socket and starts proxying to the upstream path.
    /// The upstream server does not need to be up yet (each client
    /// connection dials upstream on arrival, and fails that client if
    /// nobody answers).
    pub fn start(cfg: ChaosConfig) -> io::Result<Self> {
        let listen_path = cfg.listen.clone();
        let _ = std::fs::remove_file(&cfg.listen);
        let listener = UnixListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let paused = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new());
        for name in [
            "connections",
            "upstream_failures",
            "forwards",
            "disconnects",
            "drops",
            "truncates",
            "garbles",
            "delays",
        ] {
            // sched-counters: connections upstream_failures forwards disconnects drops truncates garbles delays
            registry.counter(name);
        }
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let paused = Arc::clone(&paused);
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("chaos-proxy-accept".into())
                .spawn(move || {
                    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                    let mut conn_index: u64 = 0;
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((client, _)) => {
                                conn_index += 1;
                                registry.counter("connections").incr();
                                let upstream = match UnixStream::connect(&cfg.upstream) {
                                    Ok(s) => s,
                                    Err(_) => {
                                        registry.counter("upstream_failures").incr();
                                        // Dropping `client` gives the real
                                        // client an immediate EOF.
                                        continue;
                                    }
                                };
                                spawn_pumps(
                                    &mut pumps, client, upstream, &cfg, conn_index, &stop, &paused,
                                    &registry,
                                );
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            Err(_) => break,
                        }
                    }
                    for p in pumps {
                        let _ = p.join();
                    }
                })
                .expect("spawn chaos accept thread")
        };
        Ok(ChaosProxy {
            listen_path,
            stop,
            paused,
            registry,
            accept_thread: Some(accept_thread),
        })
    }

    /// The path clients should connect to.
    pub fn path(&self) -> &Path {
        &self.listen_path
    }

    /// Freezes both directions: requests and replies are held (not
    /// dropped) until [`ChaosProxy::resume`] — the wedged-server
    /// simulation.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Release);
    }

    /// Thaws a [`ChaosProxy::pause`]; held lines flow again.
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Release);
    }

    /// Counts of injected faults and proxied connections so far.
    pub fn stats(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.listen_path);
    }
}

/// Severs both halves of a proxied connection.
fn sever(a: &UnixStream, b: &UnixStream) {
    let _ = a.shutdown(std::net::Shutdown::Both);
    let _ = b.shutdown(std::net::Shutdown::Both);
}

/// Blocks while the proxy is paused; false when stopping.
fn wait_unpaused(stop: &AtomicBool, paused: &AtomicBool) -> bool {
    while paused.load(Ordering::Acquire) {
        if stop.load(Ordering::Acquire) {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    !stop.load(Ordering::Acquire)
}

/// Reads one line, treating read timeouts as "check the stop flag and
/// keep waiting". Returns `None` on EOF, any hard error, or shutdown.
fn read_line_interruptible(
    reader: &mut BufReader<UnixStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> Option<usize> {
    loop {
        if stop.load(Ordering::Acquire) {
            return None;
        }
        line.clear();
        match reader.read_line(line) {
            Ok(0) => return None,
            Ok(n) => return Some(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return None,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_pumps(
    pumps: &mut Vec<JoinHandle<()>>,
    client: UnixStream,
    upstream: UnixStream,
    cfg: &ChaosConfig,
    conn_index: u64,
    stop: &Arc<AtomicBool>,
    paused: &Arc<AtomicBool>,
    registry: &Arc<Registry>,
) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(50)));

    // Request pump: client → server, faithful pass-through (requests are
    // the client's own words; the chaos budget is spent on replies).
    {
        let (client, upstream) = (
            client.try_clone().expect("clone client"),
            upstream.try_clone().expect("clone upstream"),
        );
        let (stop, paused) = (Arc::clone(stop), Arc::clone(paused));
        pumps.push(
            std::thread::Builder::new()
                .name("chaos-proxy-up".into())
                .spawn(move || {
                    let mut writer = upstream.try_clone().expect("clone upstream writer");
                    let mut reader = BufReader::new(client.try_clone().expect("clone client"));
                    let mut line = String::new();
                    while read_line_interruptible(&mut reader, &mut line, &stop).is_some() {
                        if !wait_unpaused(&stop, &paused) {
                            break;
                        }
                        if writer.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                    }
                    sever(&client, &upstream);
                })
                .expect("spawn up pump"),
        );
    }

    // Reply pump: server → client, with the fault schedule applied.
    {
        let cfg = cfg.clone();
        let (stop, paused) = (Arc::clone(stop), Arc::clone(paused));
        let registry = Arc::clone(registry);
        let mut rng = cfg.seed ^ conn_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        pumps.push(
            std::thread::Builder::new()
                .name("chaos-proxy-down".into())
                .spawn(move || {
                    let mut writer = client.try_clone().expect("clone client writer");
                    let mut reader = BufReader::new(upstream.try_clone().expect("clone upstream"));
                    let mut line = String::new();
                    while read_line_interruptible(&mut reader, &mut line, &stop).is_some() {
                        if !wait_unpaused(&stop, &paused) {
                            break;
                        }
                        match pick_fault(&cfg, &mut rng) {
                            Fault::Forward => {
                                registry.counter("forwards").incr();
                                if writer.write_all(line.as_bytes()).is_err() {
                                    break;
                                }
                            }
                            Fault::Disconnect => {
                                registry.counter("disconnects").incr();
                                break;
                            }
                            Fault::Drop => {
                                registry.counter("drops").incr();
                            }
                            Fault::Truncate => {
                                registry.counter("truncates").incr();
                                let torn = &line.as_bytes()[..line.len() / 2];
                                let _ = writer.write_all(torn);
                                break;
                            }
                            Fault::Garble => {
                                registry.counter("garbles").incr();
                                // Corrupt the payload but keep it valid
                                // UTF-8 and newline-terminated: the parser
                                // must answer, not crash or stall.
                                let garbled: String = line
                                    .trim_end()
                                    .chars()
                                    .map(|c| if c.is_whitespace() { c } else { '#' })
                                    .collect();
                                if writer.write_all(format!("{garbled}\n").as_bytes()).is_err() {
                                    break;
                                }
                            }
                            Fault::Delay => {
                                registry.counter("delays").incr();
                                std::thread::sleep(cfg.delay);
                                if writer.write_all(line.as_bytes()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    sever(&client, &upstream);
                })
                .expect("spawn down pump"),
        );
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::uds::{UdsClient, UdsServer, UdsServerConfig};
    use std::time::Instant;

    fn paths(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        (
            base.join(format!("chaos-{pid}-{tag}-proxy.sock")),
            base.join(format!("chaos-{pid}-{tag}-server.sock")),
        )
    }

    #[test]
    fn passthrough_proxy_is_transparent() {
        let (listen, upstream) = paths("clean");
        let _server = UdsServer::start(UdsServerConfig::new(&upstream, 8)).expect("server");
        let _proxy =
            ChaosProxy::start(ChaosConfig::passthrough(&listen, &upstream, 1)).expect("proxy");
        let mut c = UdsClient::register(&listen, 16).expect("client via proxy");
        assert_eq!(c.poll().expect("poll"), 8);
        c.bye().expect("bye");
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let cfg = ChaosConfig {
            drop_prob: 0.3,
            garble_prob: 0.3,
            ..ChaosConfig::passthrough("/x", "/y", 42)
        };
        for _ in 0..100 {
            let fa = pick_fault(&cfg, &mut a);
            let fb = pick_fault(&cfg, &mut b);
            assert_eq!(
                std::mem::discriminant(&fa),
                std::mem::discriminant(&fb),
                "same seed must give the same schedule"
            );
        }
        assert_eq!(a, b);
    }

    #[test]
    fn job_chaos_schedule_is_deterministic_and_tallied() {
        let mut a = JobChaos::new(7, 0.25, 0.25, Duration::from_millis(1));
        let mut b = JobChaos::new(7, 0.25, 0.25, Duration::from_millis(1));
        let faults: Vec<JobFault> = (0..200).map(|_| a.next_fault()).collect();
        assert_eq!(faults, (0..200).map(|_| b.next_fault()).collect::<Vec<_>>());
        let (panics, stalls) = a.injected();
        assert_eq!(
            panics,
            faults.iter().filter(|f| **f == JobFault::Panic).count() as u64
        );
        assert_eq!(
            stalls,
            faults.iter().filter(|f| **f == JobFault::Stall).count() as u64
        );
        assert!(panics > 0 && stalls > 0, "probabilities must bite");
        // A clean wrap runs the work; an injected panic never reaches it.
        let mut clean = JobChaos::new(1, 0.0, 0.0, Duration::from_millis(1));
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let (fault, job) = clean.wrap(move || flag.store(true, Ordering::Release));
        assert_eq!(fault, JobFault::Run);
        job();
        assert!(ran.load(Ordering::Acquire));
    }

    #[test]
    fn paused_proxy_wedges_then_releases() {
        let (listen, upstream) = paths("pause");
        let _server = UdsServer::start(UdsServerConfig::new(&upstream, 4)).expect("server");
        let proxy =
            ChaosProxy::start(ChaosConfig::passthrough(&listen, &upstream, 7)).expect("proxy");
        let mut c = UdsClient::register_with_timeout(&listen, 4, Duration::from_millis(150))
            .expect("client");
        proxy.pause();
        let started = Instant::now();
        assert!(
            c.poll().is_err(),
            "poll through a wedged proxy must time out"
        );
        assert!(started.elapsed() >= Duration::from_millis(100));
        proxy.resume();
        // The held request eventually flows; drain until a fresh poll
        // succeeds on a new connection (this one's stream offset may be
        // torn by the timed-out read).
        let mut c2 = UdsClient::register(&listen, 4).expect("fresh client");
        assert_eq!(c2.poll().expect("poll after resume"), 4);
    }
}
