//! A hand-rolled Chase–Lev work-stealing deque.
//!
//! One owner thread pushes and pops at the *bottom* of a circular buffer;
//! any number of stealers take from the *top*. The owner's fast path is a
//! pair of relaxed loads and one store — no locks, no CAS — so a worker
//! draining its own queue pays almost nothing. A CAS appears only when
//! owner and stealers race for the last element, exactly as in Chase &
//! Lev's *Dynamic Circular Work-Stealing Deque* with the memory orderings
//! of Lê et al., *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP '13).
//!
//! Two deliberate simplifications keep the unsafe surface small:
//!
//! - Elements are `Box<T>`, stored as raw pointers in `AtomicPtr` slots.
//!   Slot reads and writes are therefore atomic, so the racy speculative
//!   read in `steal` (reading a slot the owner may be about to overwrite)
//!   yields a stale *pointer*, never a torn value; the top-CAS then
//!   decides whether the read pointer is owned.
//! - Buffers grow by doubling, and retired buffers are kept alive until
//!   the deque drops (a stealer may still be reading a stale buffer
//!   pointer). A deque that peaked at `n` elements retains at most `2n`
//!   slots of garbage — bounded, and free of reclamation machinery.
//!
//! Built with `RUSTFLAGS="--cfg loom"` the atomics come from `loom`, so
//! the model-checking tests in `tests/loom_deque.rs` drive these exact
//! push/pop/steal paths.

#[cfg(loom)]
use loom::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

/// Initial buffer capacity (must be a power of two).
const INITIAL_CAP: usize = 64;

/// One circular buffer generation. Indices grow without bound and are
/// masked into the slot array; capacity is always a power of two.
struct Buffer<T> {
    mask: isize,
    // sched-atomic(verified): Relaxed slot accesses are ordered by the
    // Release fence in push / the top CAS, per the Chase-Lev protocol
    // (Le et al., PPoPP'13); loom model-checks this in deque_tests.
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: cap as isize - 1,
            slots,
        }))
    }

    fn cap(&self) -> isize {
        self.mask + 1
    }

    fn put(&self, index: isize, ptr: *mut T) {
        self.slots[(index & self.mask) as usize].store(ptr, Ordering::Relaxed);
    }

    fn get(&self, index: isize) -> *mut T {
        self.slots[(index & self.mask) as usize].load(Ordering::Relaxed)
    }
}

struct Inner<T> {
    /// Next index stealers take from.
    // sched-atomic(verified): orderings follow Le et al. (PPoPP'13)
    // exactly, including the SeqCst fences; loom-checked in deque_tests.
    top: AtomicIsize,
    /// Next index the owner pushes to.
    // sched-atomic(verified): see `top` — same proof covers the pair.
    bottom: AtomicIsize,
    /// Current buffer generation.
    // sched-atomic(verified): Release store in grow pairs with the
    // Acquire load in steal; owner-side Relaxed loads are single-thread.
    buffer: AtomicPtr<Buffer<T>>,
    /// Outgrown generations, freed on drop (stealers may hold stale
    /// buffer pointers until then).
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the raw buffer pointers are owned by `Inner` and only ever
// dereferenced under the Chase-Lev protocol (at most one owner thread,
// stealers arbitrated by the CAS on `top`); `T: Send` is the real
// requirement the bounds carry over.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: shared access is the whole point of the algorithm — every
// cross-thread path goes through the fences/CAS above, never through
// unsynchronized `&mut`.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: free unconsumed elements, then every buffer.
        let buf = self.buffer.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        // SAFETY: `drop(&mut self)` proves no Worker/Stealer handle is
        // left, so every slot in [t, b) and every retired buffer is
        // exclusively ours to free; the pointers were all minted by
        // Box::into_raw / Buffer::alloc.
        unsafe {
            for i in t..b {
                drop(Box::from_raw((*buf).get(i)));
            }
            drop(Box::from_raw(buf));
            for old in self.retired.lock().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner handle: push and pop at the bottom. `Send` but deliberately
/// neither `Sync` nor `Clone` — exactly one thread may own it at a time,
/// which is what makes the lock-free fast path sound.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Opts out of `Sync` (a `&Worker` must not cross threads).
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

/// A thief handle: take from the top. Cheap to clone and fully
/// thread-safe.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of a steal attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// The deque had nothing to take.
    Empty,
    /// Lost a race with the owner or another stealer; worth retrying
    /// after backoff.
    Retry,
    /// Took the element.
    Success(Box<T>),
}

impl<T> Steal<T> {
    /// True for [`Steal::Retry`].
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

/// Creates a deque, returning the owner handle and a stealer.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Buffer::alloc(INITIAL_CAP)),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

impl<T: Send> Worker<T> {
    /// Pushes an element at the bottom (owner only; never blocks, grows
    /// the buffer when full).
    pub fn push(&self, value: Box<T>) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: `buffer` always points at the live generation; only
        // the owner (us, single-threaded by !Sync + !Clone) retires it,
        // and retired generations are freed no earlier than Inner::drop.
        if b - t >= unsafe { (*buf).cap() } {
            buf = self.grow(t, b);
        }
        // SAFETY: same buffer liveness as above; slot `b` is outside
        // [top, bottom) so no stealer reads it until bottom is published.
        unsafe { (*buf).put(b, Box::into_raw(value)) };
        // Publish the slot before publishing the new bottom.
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pops from the bottom (owner only). LIFO relative to `push`.
    pub fn pop(&self) -> Option<Box<T>> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        // The store of bottom must be visible before we read top, and
        // symmetrically for stealers — the Dekker handshake of the
        // algorithm.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            // SAFETY: buffer liveness as in push; slot `b` was filled by
            // a prior push on this same thread.
            let ptr = unsafe { (*buf).get(b) };
            if t == b {
                // Last element: race the stealers for it via top.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                // SAFETY: winning the CAS on `top` means no stealer took
                // slot `b`; the pointer is ours exclusively.
                return won.then(|| unsafe { Box::from_raw(ptr) });
            }
            // SAFETY: t < b leaves at least one element below the
            // stealers' range after our bottom store; exclusive.
            Some(unsafe { Box::from_raw(ptr) })
        } else {
            // Already empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Approximate number of queued elements (exact when quiescent).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when [`Worker::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Doubles the buffer, copying live elements; retires the old
    /// generation (owner only).
    fn grow(&self, t: isize, b: isize) -> *mut Buffer<T> {
        let inner = &*self.inner;
        let old = inner.buffer.load(Ordering::Relaxed);
        // SAFETY: `old` is the live generation (owner-only call); `new`
        // was just allocated and is unshared until the Release store.
        let new = unsafe { Buffer::alloc(((*old).cap() as usize) * 2) };
        // SAFETY: same pointers as above; indices [t, b) are in range of
        // both generations by construction (new.cap = 2 * old.cap).
        unsafe {
            for i in t..b {
                (*new).put(i, (*old).get(i));
            }
        }
        inner.buffer.store(new, Ordering::Release);
        inner.retired.lock().push(old);
        new
    }
}

impl<T: Send> Stealer<T> {
    /// Attempts to take the oldest element (any thread). FIFO relative to
    /// the owner's `push`.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Speculative read: the owner may be popping this very slot. The
        // CAS on top arbitrates; on failure the pointer is dead to us.
        let buf = inner.buffer.load(Ordering::Acquire);
        // SAFETY: the Acquire load sees a fully initialized generation
        // (grow publishes with Release); the slot read is speculative
        // and the value is only trusted after the CAS below succeeds.
        // TSan flags this read by design -- see .tsan-suppressions.
        let ptr = unsafe { (*buf).get(t) };
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: the CAS on `top` succeeded, so this thread (and
            // no other, owner included) owns slot `t`'s pointer.
            Steal::Success(unsafe { Box::from_raw(ptr) })
        } else {
            Steal::Retry
        }
    }

    /// Approximate number of queued elements.
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// True when [`Stealer::len`] is zero (approximate).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicBool, Ordering as O};

    #[test]
    fn lifo_for_owner_fifo_for_stealer() {
        let (w, s) = deque::<u64>();
        for i in 0..4 {
            w.push(Box::new(i));
        }
        assert_eq!(w.len(), 4);
        assert_eq!(*w.pop().unwrap(), 3);
        match s.steal() {
            Steal::Success(v) => assert_eq!(*v, 0),
            other => panic!("expected success, got {other:?}"),
        }
        assert_eq!(*w.pop().unwrap(), 2);
        assert_eq!(*w.pop().unwrap(), 1);
        assert!(w.pop().is_none());
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (w, s) = deque::<usize>();
        let n = INITIAL_CAP * 4 + 7;
        for i in 0..n {
            w.push(Box::new(i));
        }
        assert_eq!(w.len(), n);
        // Steal a few from the top (oldest first) ...
        for expect in 0..10 {
            match s.steal() {
                Steal::Success(v) => assert_eq!(*v, expect),
                other => panic!("expected success, got {other:?}"),
            }
        }
        // ... and pop the rest from the bottom (newest first).
        for expect in (10..n).rev() {
            assert_eq!(*w.pop().unwrap(), expect);
        }
        assert!(w.pop().is_none());
    }

    #[test]
    fn drop_frees_unconsumed_elements() {
        let (w, _s) = deque::<Vec<u8>>();
        for _ in 0..100 {
            w.push(Box::new(vec![0u8; 128]));
        }
        let _ = w.pop();
        // Dropping with 99 queued elements must not leak or double-free
        // (exercised under the CI sanitizer lane).
    }

    #[test]
    fn concurrent_stealers_take_each_element_once() {
        let (w, s) = deque::<usize>();
        let n = 10_000;
        let stop = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let s = s.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while !stop.load(O::Acquire) {
                        match s.steal() {
                            Steal::Success(v) => got.push(*v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        let mut popped = Vec::new();
        for i in 0..n {
            w.push(Box::new(i));
            if i % 3 == 0 {
                if let Some(v) = w.pop() {
                    popped.push(*v);
                }
            }
        }
        while let Some(v) = w.pop() {
            popped.push(*v);
        }
        stop.store(true, O::Release);
        let mut all: Vec<usize> = popped;
        for t in thieves {
            all.extend(t.join().unwrap());
        }
        assert_eq!(all.len(), n, "every element taken exactly once");
        let distinct: BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(distinct.len(), n, "no element duplicated");
    }
}
