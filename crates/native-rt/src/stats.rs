//! Lock-free runtime statistics: named counters, gauges, and log-bucketed
//! latency histograms with a snapshot API.
//!
//! Hot paths (worker safe points, job dequeues, park/unpark) touch only
//! pre-registered atomics with `Relaxed` ordering — a statistic is a
//! statistic, not a synchronization edge. The registry's map is locked only
//! at registration and snapshot time. Snapshots are advisory under
//! concurrent updates: each histogram's totals are derived from one pass
//! over its buckets, so every snapshot is internally consistent even if it
//! interleaves with writers.
//!
//! This intentionally mirrors (but does not depend on) the simulation-side
//! `metrics` crate: the same power-of-two bucket scheme, so the two sides'
//! histograms can be compared bucket-for-bucket in reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

const BUCKETS: usize = 65;

/// The bucket index for a value: 0 for 0, else `ilog2(v) + 1`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The smallest value bucket `b` can hold.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// The largest value bucket `b` can hold.
fn bucket_hi(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A log-bucketed histogram updated with relaxed atomics.
pub struct AtomicHistogram {
    // sched-atomic(relaxed): statistics only; snapshots tolerate torn
    // cross-field reads by design (see Hist docs).
    buckets: [AtomicU64; BUCKETS],
    // sched-atomic(relaxed): see `buckets`.
    sum: AtomicU64,
    // sched-atomic(relaxed): see `buckets`.
    min: AtomicU64,
    // sched-atomic(relaxed): see `buckets`.
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one sample (typically nanoseconds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Reads the current contents into a plain snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (b, c) in self.buckets.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c > 0 {
                count += c;
                buckets.push((bucket_lo(b), bucket_hi(b), c));
            }
        }
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: (count > 0).then(|| self.min.load(Ordering::Relaxed)),
            max: (count > 0).then(|| self.max.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// A point-in-time copy of an [`AtomicHistogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples recorded (sum of bucket counts at snapshot time).
    pub count: u64,
    /// Sum of all samples (wraps at `u64::MAX`; irrelevant for latencies).
    pub sum: u64,
    /// Smallest sample, or `None` when empty.
    pub min: Option<u64>,
    /// Largest sample, or `None` when empty.
    pub max: Option<u64>,
    /// Non-empty buckets as `(lo, hi, count)`, in increasing order.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistSnapshot {
    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile: the top of the first bucket
    /// whose cumulative count reaches `q × count`, clamped to the observed
    /// maximum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(_, hi, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(hi.min(self.max.unwrap_or(hi)));
            }
        }
        self.max
    }
}

/// A monotonic counter handle (cheap to clone, updates are `Relaxed`).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge handle (e.g. live worker count vs target).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Stores the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle.
#[derive(Clone)]
pub struct Hist(Arc<AtomicHistogram>);

impl Hist {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.record(v);
    }

    /// Reads the current contents.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.snapshot()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicI64>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
}

/// A named registry of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        Counter(Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Gets or creates the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        Gauge(Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        ))
    }

    /// Gets or creates the named histogram.
    pub fn histogram(&self, name: &str) -> Hist {
        let mut inner = self.inner.lock();
        Hist(Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::default())),
        ))
    }

    /// Copies every statistic out, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Per-counter increase since an `earlier` snapshot of the same
    /// registry (saturating, so a counter absent earlier reports its full
    /// value) — what `pool_bench` uses to attribute one measurement
    /// phase's jobs to the local/injector/steal acquisition paths.
    pub fn counters_delta(&self, earlier: &Snapshot) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, &v)| {
                let before = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(before))
            })
            .collect()
    }

    /// Renders scalar statistics as sorted `name=value` pairs on one line
    /// (histograms contribute `name.count`, `name.mean`, `name.p50`, and
    /// `name.p99`) — the payload of the UDS `STATS` reply and the rows of
    /// `schedtop`.
    pub fn render_line(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (k, v) in &self.counters {
            parts.push(format!("{k}={v}"));
        }
        for (k, v) in &self.gauges {
            parts.push(format!("{k}={v}"));
        }
        for (k, h) in &self.histograms {
            parts.push(format!("{k}.count={}", h.count));
            parts.push(format!("{k}.mean={:.0}", h.mean()));
            parts.push(format!("{k}.p50={}", h.quantile(0.5).unwrap_or(0)));
            parts.push(format!("{k}.p99={}", h.quantile(0.99).unwrap_or(0)));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("jobs");
        c.incr();
        c.add(4);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("jobs").get(), 5);
        let g = r.gauge("active");
        g.set(-3);
        assert_eq!(r.gauge("active").get(), -3);
        let snap = r.snapshot();
        assert_eq!(snap.counters["jobs"], 5);
        assert_eq!(snap.gauges["active"], -3);
    }

    #[test]
    fn histogram_snapshot_is_internally_consistent() {
        let r = Registry::new();
        let h = r.histogram("queue_wait_ns");
        for v in [0, 1, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1_001_004);
        assert_eq!(s.min, Some(0));
        assert_eq!(s.max, Some(1_000_000));
        let bucket_total: u64 = s.buckets.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(bucket_total, s.count);
        assert!(s.quantile(0.5).unwrap() <= 3);
        assert_eq!(s.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("n");
                    let h = r.histogram("lat");
                    for i in 0..10_000u64 {
                        c.incr();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["n"], 40_000);
        assert_eq!(snap.histograms["lat"].count, 40_000);
    }

    #[test]
    fn counters_delta_subtracts_per_name() {
        let r = Registry::new();
        let c = r.counter("steals");
        c.add(5);
        let before = r.snapshot();
        c.add(7);
        r.counter("local_hits").add(3); // born after `before`
        let delta = r.snapshot().counters_delta(&before);
        assert_eq!(delta["steals"], 7);
        assert_eq!(delta["local_hits"], 3);
    }

    #[test]
    fn render_line_is_sorted_and_parsable() {
        let r = Registry::new();
        r.counter("polls").add(2);
        r.counter("byes").incr();
        r.gauge("apps").set(1);
        let line = r.snapshot().render_line();
        assert_eq!(line, "byes=1 polls=2 apps=1");
    }
}
