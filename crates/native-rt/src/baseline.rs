//! The pre-work-stealing pool, kept as the measured baseline.
//!
//! This is the central-queue design [`crate::Pool`] replaced: every
//! submit and dequeue serializes through one `Mutex<VecDeque>` and a
//! global condvar — the saturated-lock collapse `pool_bench` quantifies.
//! It stays in-tree so the comparison is reproducible on any host
//! (`pool_bench --engine central` vs `--engine stealing`) and so the two
//! designs share the controller, stats, and safe-suspension-point
//! semantics exactly.
//!
//! Two latent defects of the original were fixed here as well, so the
//! benchmark compares queue disciplines rather than bugs: the
//! suspension hand-off is atomic (token claimed under the suspended-list
//! lock, withdrawal on shutdown — see [`crate::Pool`] for the race), and
//! job timestamps are taken *before* the queue lock is acquired so the
//! queue-wait histogram does not inflate the contention it measures.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::controller::{Controller, TargetSlot};
use crate::crlock::{CrConfig, CrGate};
use crate::pool::{Job, PoolMetrics};
use crate::stats::{Counter, Gauge, Hist, Registry, Snapshot};

#[derive(Clone, Copy)]
enum ParkState {
    Parked,
    Resumed(Option<Instant>),
}

struct ParkToken {
    state: Mutex<ParkState>,
    cv: Condvar,
}

struct PoolShared {
    /// Jobs with their submission instants (for queue-wait latency).
    queue: Mutex<VecDeque<(Instant, Job)>>,
    /// Signaled when work arrives or the pool shuts down.
    work_cv: Condvar,
    // sched-atomic(handoff): final fetch_sub(AcqRel) publishes the last
    // job's writes to wait_idle's Acquire load.
    outstanding: AtomicUsize,
    idle_cv: Condvar,
    idle_mu: Mutex<()>,
    // sched-atomic(handoff): suspend/resume CAS (AcqRel) orders the
    // worker's hand-off against peers reading the count.
    active: AtomicUsize,
    suspended: Mutex<Vec<Arc<ParkToken>>>,
    target: Arc<TargetSlot>,
    // sched-atomic(handoff): Release store in shutdown() publishes final
    // queue state to the workers' Acquire re-check.
    shutdown: AtomicBool,
    registry: Arc<Registry>,
    jobs_run: Counter,
    suspends: Counter,
    resumes: Counter,
    active_gauge: Gauge,
    target_gauge: Gauge,
    queue_wait: Hist,
    park: Hist,
    unpark: Hist,
    /// Concurrency-restricting gate over the central queue's dequeue
    /// (the pool's one collapse-prone lock); `None` = ungated baseline.
    cr_gate: Option<CrGate>,
    idle_spin: bool,
}

/// The central-queue worker pool (baseline for [`crate::Pool`]).
pub struct CentralPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl CentralPool {
    /// Creates a pool of `nworkers` threads registered with `controller`.
    pub fn new(controller: &Controller, nworkers: usize, idle_spin: bool) -> Self {
        let target = controller.register(nworkers);
        Self::with_slot(target, nworkers, idle_spin)
    }

    /// Creates a pool whose target is driven externally through `target`.
    pub fn with_slot(target: Arc<TargetSlot>, nworkers: usize, idle_spin: bool) -> Self {
        Self::with_slot_cr(target, nworkers, idle_spin, None)
    }

    /// As [`CentralPool::with_slot`], optionally putting a
    /// concurrency-restricting gate ([`CrGate`]) in front of the central
    /// queue mutex: at most `active_max` workers contend for the dequeue
    /// at once, the rest park on the gate's culled list until promoted.
    /// This is the lock the paper's Figure-1 collapse convoys on, so the
    /// gate is the purest native test of "how much does the lock fix".
    pub fn with_slot_cr(
        target: Arc<TargetSlot>,
        nworkers: usize,
        idle_spin: bool,
        cr: Option<CrConfig>,
    ) -> Self {
        assert!(nworkers >= 1);
        let registry = Arc::new(Registry::new());
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            idle_cv: Condvar::new(),
            idle_mu: Mutex::new(()),
            active: AtomicUsize::new(nworkers),
            suspended: Mutex::new(Vec::new()),
            target,
            shutdown: AtomicBool::new(false),
            jobs_run: registry.counter("jobs_run"),
            suspends: registry.counter("suspends"),
            resumes: registry.counter("resumes"),
            active_gauge: registry.gauge("active"),
            target_gauge: registry.gauge("target"),
            queue_wait: registry.histogram("queue_wait_ns"),
            park: registry.histogram("park_ns"),
            unpark: registry.histogram("unpark_ns"),
            cr_gate: cr.map(|c| CrGate::with_registry(c, &registry)),
            registry,
            idle_spin,
        });
        let workers = (0..nworkers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("central-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker")
            })
            .collect();
        CentralPool { shared, workers }
    }

    /// Submits a job through the central queue.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        // Timestamp and box outside the lock (instrumentation must not
        // lengthen the critical section it measures).
        let submitted = Instant::now();
        let boxed: Job = Box::new(job);
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        self.shared.queue.lock().push_back((submitted, boxed));
        self.shared.work_cv.notify_one();
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_mu.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }

    /// Current number of unsuspended workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// The controller's current target for this pool.
    pub fn target(&self) -> usize {
        self.shared.target.target.load(Ordering::Acquire)
    }

    /// Pool counters (the stealing-path fields are always zero here).
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_run: self.shared.jobs_run.get(),
            suspends: self.shared.suspends.get(),
            resumes: self.shared.resumes.get(),
            ..PoolMetrics::default()
        }
    }

    /// The pool's statistics registry.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A point-in-time copy of every pool statistic.
    pub fn stats(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }
}

impl Drop for CentralPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        {
            let mut suspended = self.shared.suspended.lock();
            for t in suspended.drain(..) {
                *t.state.lock() = ParkState::Resumed(None);
                t.cv.notify_one();
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

enum SuspendOutcome {
    Resumed,
    Shutdown,
}

fn park_suspended(sh: &PoolShared) -> SuspendOutcome {
    let token = Arc::new(ParkToken {
        state: Mutex::new(ParkState::Parked),
        cv: Condvar::new(),
    });
    sh.suspended.lock().push(Arc::clone(&token));
    let parked_at = Instant::now();
    let mut st = token.state.lock();
    loop {
        if let ParkState::Resumed(signaled_at) = *st {
            drop(st);
            sh.park.record(parked_at.elapsed().as_nanos() as u64);
            if let Some(at) = signaled_at {
                sh.unpark.record(at.elapsed().as_nanos() as u64);
            }
            return SuspendOutcome::Resumed;
        }
        if sh.shutdown.load(Ordering::Acquire) {
            drop(st);
            let mut list = sh.suspended.lock();
            if let Some(pos) = list.iter().position(|t| Arc::ptr_eq(t, &token)) {
                list.remove(pos);
                drop(list);
                sh.park.record(parked_at.elapsed().as_nanos() as u64);
                return SuspendOutcome::Shutdown;
            }
            drop(list);
            st = token.state.lock();
            continue;
        }
        token.cv.wait_for(&mut st, Duration::from_millis(50));
    }
}

fn worker_loop(sh: &Arc<PoolShared>) {
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // --- Safe suspension point: no job held, no lock held. ---
        let target = sh.target.target.load(Ordering::Acquire);
        let active = sh.active.load(Ordering::Acquire);
        sh.active_gauge.set(active as i64);
        sh.target_gauge.set(target as i64);
        if active > target && active > 1 {
            if sh
                .active
                .compare_exchange(active, active - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                sh.suspends.incr();
                match park_suspended(sh) {
                    SuspendOutcome::Resumed => continue,
                    SuspendOutcome::Shutdown => return,
                }
            }
        } else if active < target {
            let mut list = sh.suspended.lock();
            if let Some(token) = list.pop() {
                sh.active.fetch_add(1, Ordering::AcqRel);
                sh.resumes.incr();
                *token.state.lock() = ParkState::Resumed(Some(Instant::now()));
                token.cv.notify_one();
            }
        }
        // --- Dequeue and run. ---
        // With a CR gate configured, only `active_max` workers contend
        // for the queue mutex; the rest park on the culled list. The
        // gate wraps *only* the dequeue — the empty-queue sleep below
        // stays outside it, so a gate slot is never held across a
        // blocking wait and every culled worker is promoted by some
        // holder's exit (workers check shutdown only between balanced
        // enter/exit pairs, so none is left behind at shutdown either).
        let job = match &sh.cr_gate {
            Some(gate) => {
                gate.enter();
                let admitted_at = Instant::now();
                let job = sh.queue.lock().pop_front();
                gate.observe_acquire(admitted_at.elapsed().as_nanos() as u64);
                gate.exit();
                job
            }
            None => sh.queue.lock().pop_front(),
        };
        match job {
            Some((submitted_at, job)) => {
                // Lock already released: the histogram update happens
                // outside the critical section.
                sh.queue_wait
                    .record(submitted_at.elapsed().as_nanos() as u64);
                job();
                sh.jobs_run.incr();
                if sh.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = sh.idle_mu.lock();
                    sh.idle_cv.notify_all();
                }
            }
            None => {
                if sh.idle_spin {
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                } else {
                    let mut q = sh.queue.lock();
                    if q.is_empty() && !sh.shutdown.load(Ordering::Acquire) {
                        sh.work_cv.wait_for(&mut q, Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_pool_runs_all_jobs() {
        let c = Controller::new(2, Duration::from_millis(10));
        let pool = CentralPool::new(&c, 4, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        assert_eq!(pool.metrics().jobs_run, 200);
        assert_eq!(pool.stats().histograms["queue_wait_ns"].count, 200);
    }

    #[test]
    fn central_pool_with_cr_gate_conserves_jobs() {
        let c = Controller::new(2, Duration::from_millis(10));
        let target = c.register(8);
        // 8 workers funneled through a 2-slot gate: passivation and
        // promotion both get exercised, and nothing may be lost.
        let pool = CentralPool::with_slot_cr(target, 8, false, Some(CrConfig::fixed(2)));
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..400 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 400);
        assert_eq!(pool.metrics().jobs_run, 400);
        let stats = pool.stats();
        assert_eq!(stats.gauges["cr_active_size"], 2);
        assert!(stats.counters.contains_key("cr_passivations"));
        assert!(stats.counters.contains_key("cr_promotions"));
    }

    #[test]
    fn central_pool_still_suspends_and_shuts_down() {
        let c = Controller::new(1, Duration::from_millis(10));
        let pool = CentralPool::new(&c, 4, false);
        for _ in 0..100 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        pool.wait_idle();
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.metrics().suspends == 0 {
            assert!(Instant::now() < deadline, "no worker suspended");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(pool); // must join cleanly with suspended workers
    }
}
