//! The single-threaded reactor core of the control server.
//!
//! Tucker & Gupta's centralized server must be cheaper than the
//! resource it manages; a thread-per-connection control plane inverts
//! that at fleet scale — thousands of registered applications mean
//! thousands of mostly-idle server threads contending on one state
//! mutex, the exact saturated-centralized-resource collapse the server
//! exists to prevent. The reactor removes both costs: **one** thread
//! owns every connection's state machine *and* the
//! [`ServerState`](crate::uds) outright (no `Mutex`, no handoff), and a
//! readiness loop (epoll on Linux, `poll(2)` elsewhere — hand-rolled
//! FFI, matching the repo's zero-extra-dependency style) multiplexes
//! thousands of sockets through it.
//!
//! Per wakeup, the loop:
//!
//! 1. drains every ready socket into its connection's [`FrameBuffer`]
//!    (frames split across read boundaries reassemble; pipelined frames
//!    all surface at once),
//! 2. answers each complete frame through the same
//!    [`handle_line`](crate::uds) the thread engine uses — the wire
//!    protocol is byte-identical across engines *by construction* —
//!    appending replies to the connection's write buffer,
//! 3. flushes each touched connection **once** (replies batched per
//!    wakeup: N pipelined polls cost one `write(2)`, not N), and
//! 4. fires due lease timers from the server state's deadline-ordered
//!    queue (the wait timeout is the earliest deadline, so expiry needs
//!    no per-poll scans and no idle spinning).
//!
//! Observability: `reactor_wakeups` counts readiness-loop returns,
//! `frames_batched` counts frames served beyond the first of each
//! wakeup (the pipelining/batching win), and the server state's
//! `timer_fires` / `recompute_coalesced` count timer pops and partition
//! recomputations saved by the dirty-flag gate. See DESIGN.md §13.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::stats::Registry;
use crate::uds::{handle_line_into, write_snapshot, ServerState, UdsServerConfig};

/// The longest line the reactor will buffer for one frame before
/// answering `ERR malformed` and dropping the connection. Generous —
/// a full EVENTS batch is a few KiB — but bounded, so one misbehaving
/// client cannot grow the reactor's memory without limit.
pub const MAX_FRAME: usize = 256 * 1024;

/// Upper bound on one readiness wait, so the shutdown flag is honored
/// promptly even with no traffic and no pending lease deadline.
const MAX_WAIT_MS: i32 = 100;

/// Reassembles newline-delimited frames from arbitrarily-split reads.
///
/// The reactor's read path hands this buffer whatever `read(2)` returned
/// — half a frame, seventeen pipelined frames and a torn tail, one byte
/// — and pulls complete frames (without their terminator) back out.
/// Bytes are consumed front-to-back with an offset cursor, compacted
/// only when the buffer runs dry or a partial frame must slide down, so
/// draining k frames from one read costs O(bytes), not O(k·bytes).
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    pos: usize,
    /// End of the newline-scanned prefix (≥ `pos`): re-extending after
    /// an incomplete frame re-scans only the new bytes.
    scanned: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends bytes from one read.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame (the bytes before the next `\n`,
    /// exclusive), or `None` when only a partial frame remains buffered.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        let range = self.next_frame_range()?;
        Some(self.buf[range].to_vec())
    }

    /// Pops the next complete frame as a range into the buffer — the
    /// zero-copy variant of [`FrameBuffer::next_frame`]: read the bytes
    /// back with [`FrameBuffer::frame_bytes`] before the next mutating
    /// call. The buffer compacts itself on the `None` that ends every
    /// drain loop, so consumed bytes never accumulate across a
    /// long-lived connection.
    pub fn next_frame_range(&mut self) -> Option<std::ops::Range<usize>> {
        let start = self.scanned.max(self.pos);
        match self.buf[start..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let nl = start + off;
                let range = self.pos..nl;
                self.pos = nl + 1;
                self.scanned = self.pos;
                Some(range)
            }
            None => {
                self.scanned = self.buf.len();
                // Slide the partial tail down so consumed bytes do not
                // accumulate across long-lived connections.
                if self.pos > 0 {
                    self.buf.drain(..self.pos);
                    self.scanned -= self.pos;
                    self.pos = 0;
                }
                None
            }
        }
    }

    /// The bytes of a frame returned by
    /// [`FrameBuffer::next_frame_range`], valid until the next mutating
    /// call.
    pub fn frame_bytes(&self, range: &std::ops::Range<usize>) -> &[u8] {
        &self.buf[range.clone()]
    }

    /// Bytes buffered for the (incomplete) current frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes whatever partial frame remains — the final unterminated
    /// line of a connection that hit EOF mid-frame.
    pub fn take_residue(&mut self) -> Vec<u8> {
        let residue = self.buf.split_off(self.pos);
        self.buf.clear();
        self.pos = 0;
        self.scanned = 0;
        residue
    }
}

/// One connection's state machine: its stream, the partial-frame read
/// buffer, and the batched-reply write buffer.
struct Conn {
    stream: UnixStream,
    frames: FrameBuffer,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written.
    wpos: usize,
    /// Whether the poller currently watches this fd for writability.
    want_write: bool,
    /// Close once `wbuf` drains (EOF seen or a fatal protocol error —
    /// the reply is still delivered first: no silent drops).
    closing: bool,
}

impl Conn {
    fn new(stream: UnixStream) -> Conn {
        Conn {
            stream,
            frames: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            want_write: false,
            closing: false,
        }
    }

    /// Writes as much of the pending reply bytes as the socket accepts.
    /// `Ok(true)` means fully flushed.
    fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }
}

/// Readiness-notification backend: epoll. Registered fds carry a `u64`
/// token; `wait` reports `(token, readable, writable)` triples.
#[cfg(target_os = "linux")]
mod sys {
    use std::io;
    use std::os::unix::io::RawFd;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    /// The kernel's `struct epoll_event`. x86-64 is the one 64-bit ABI
    /// where the kernel packs it (no padding between `events` and
    /// `data`); every other architecture uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// A thin safe wrapper over one epoll instance.
    pub struct Poller {
        epfd: RawFd,
        events: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall with no pointer arguments; the
            // returned fd is owned by the Poller and closed on drop.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                events: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&mut self, op: i32, fd: RawFd, token: u64, write: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | if write { EPOLLOUT } else { 0 },
                data: token,
            };
            // SAFETY: `ev` is a live stack value for the duration of the
            // call; the kernel copies it before returning. `fd` is a
            // valid open descriptor owned by the caller.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, write)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, write)
        }

        pub fn remove(&mut self, fd: RawFd) {
            // Best-effort: the fd is about to be closed anyway (closing
            // an fd removes it from every epoll set it belongs to).
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, false);
        }

        /// Waits up to `timeout_ms` and appends `(token, readable,
        /// writable)` for each ready fd. Error/hangup conditions report
        /// as readable so the read path observes the EOF/error.
        pub fn wait(
            &mut self,
            timeout_ms: i32,
            out: &mut Vec<(u64, bool, bool)>,
        ) -> io::Result<()> {
            // SAFETY: `events` is a live, properly-sized buffer; the
            // kernel writes at most `maxevents` entries into it.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.events.as_mut_ptr(),
                    self.events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                // Copy out of the (possibly packed) event by value —
                // references into packed fields would be unaligned.
                let ev = self.events[i];
                let bits = { ev.events };
                let token = { ev.data };
                let readable = bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0;
                let writable = bits & EPOLLOUT != 0;
                out.push((token, readable, writable));
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is a descriptor this Poller opened and
            // uniquely owns; double-close is impossible here.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

/// Readiness-notification backend: portable `poll(2)` fallback for
/// non-Linux Unixes. Same interface as the epoll backend; the fd set is
/// rebuilt into a `pollfd` array per wait, which is O(fds) — acceptable
/// for portability, and Linux (the perf target) uses epoll.
#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use std::io;
    use std::os::unix::io::RawFd;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        // `nfds_t` is `unsigned long` on the supported Unixes, which
        // matches `usize` on both LP64 and ILP32.
        fn poll(fds: *mut PollFd, nfds: usize, timeout: i32) -> i32;
    }

    /// A thin `poll(2)`-backed poller with the epoll backend's API.
    pub struct Poller {
        interest: Vec<(RawFd, u64, bool)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                interest: Vec::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, write: bool) -> io::Result<()> {
            self.interest.push((fd, token, write));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, write: bool) -> io::Result<()> {
            if let Some(e) = self.interest.iter_mut().find(|(f, _, _)| *f == fd) {
                *e = (fd, token, write);
            }
            Ok(())
        }

        pub fn remove(&mut self, fd: RawFd) {
            self.interest.retain(|(f, _, _)| *f != fd);
        }

        pub fn wait(
            &mut self,
            timeout_ms: i32,
            out: &mut Vec<(u64, bool, bool)>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .interest
                .iter()
                .map(|&(fd, _, write)| PollFd {
                    fd,
                    events: POLLIN | if write { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // SAFETY: `fds` is a live, contiguous array of `nfds`
            // properly-initialized pollfd records for the call duration.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&self.interest) {
                let readable = pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0;
                let writable = pfd.revents & POLLOUT != 0;
                if readable || writable {
                    out.push((token, readable, writable));
                }
            }
            Ok(())
        }
    }
}

/// The listener's poller token; connections get ids counting up from 0.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Runs the reactor until `stop` is raised. Owns the listener, every
/// connection, and the server state; on a poller setup failure the
/// error is reported and the server goes dark (the same contract as the
/// accept thread's `Err(_) => break`).
pub(crate) fn serve(
    listener: UnixListener,
    mut state: ServerState,
    cfg: &UdsServerConfig,
    stop: &AtomicBool,
    registry: &Registry,
    epoch: u64,
) {
    let mut poller = match sys::Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("procctl reactor: cannot create poller: {e}");
            return;
        }
    };
    if let Err(e) = poller.add(listener.as_raw_fd(), LISTENER_TOKEN, false) {
        eprintln!("procctl reactor: cannot watch listener: {e}");
        return;
    }
    let wakeups = registry.counter("reactor_wakeups");
    let batched = registry.counter("frames_batched");

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut ready: Vec<(u64, bool, bool)> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut reply = String::new();
    let mut last_snapshot = Instant::now();

    while !stop.load(Ordering::Acquire) {
        // Sleep until traffic or the next lease deadline, capped so the
        // stop flag stays responsive.
        let timeout_ms = match state.next_lease_deadline() {
            Some(at) => {
                let left = at.saturating_duration_since(Instant::now()).as_millis();
                (left.min(MAX_WAIT_MS as u128) as i32).max(0)
            }
            None => MAX_WAIT_MS,
        };
        ready.clear();
        if let Err(e) = poller.wait(timeout_ms, &mut ready) {
            eprintln!("procctl reactor: wait failed: {e}");
            return;
        }
        wakeups.incr();
        // One clock read serves the whole wakeup: the lease math is
        // 30-second-granular, and a wakeup is microseconds long.
        let now = Instant::now();
        let env = FrameEnv {
            cfg,
            registry,
            epoch,
            now,
        };
        // Fire due lease timers (cheap heap peek when nothing is due;
        // the /proc liveness sweep throttles itself inside).
        state.prune(cfg, now);
        // Periodic crash-recovery snapshot, off the same timer wakeups
        // (the wait cap bounds staleness; the hot frame path below is
        // untouched when no interval has elapsed).
        if cfg.snapshot_path.is_some() && now.duration_since(last_snapshot) >= cfg.snapshot_interval
        {
            write_snapshot(&state, cfg, epoch, now);
            last_snapshot = now;
        }

        // Phase 1: accept and drain every ready socket, staging batched
        // replies. Nothing is written back yet, so the wakeup's frame
        // accounting below is complete before any client can observe
        // (and race) it.
        let mut frames_this_wakeup: u64 = 0;
        for &(token, readable, _) in &ready {
            if token == LISTENER_TOKEN {
                accept_ready(&listener, &mut poller, &mut conns, &mut next_token);
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            if readable && !conn.closing {
                frames_this_wakeup +=
                    drain_and_handle(conn, &mut scratch, &mut reply, &mut state, &env);
            }
        }
        if frames_this_wakeup > 1 {
            batched.add(frames_this_wakeup - 1);
        }

        // Phase 2: flush each touched connection once — N pipelined
        // frames cost one write(2) — managing EPOLLOUT interest for the
        // rare short write.
        let mut dead: Vec<u64> = Vec::new();
        for &(token, readable, writable) in &ready {
            if token == LISTENER_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(&token) else {
                continue; // closed earlier this wakeup
            };
            if readable || writable {
                match conn.flush() {
                    Ok(true) => {
                        if conn.closing {
                            dead.push(token);
                        } else if conn.want_write {
                            conn.want_write = false;
                            let _ = poller.modify(conn.stream.as_raw_fd(), token, false);
                        }
                    }
                    Ok(false) => {
                        if !conn.want_write {
                            conn.want_write = true;
                            let _ = poller.modify(conn.stream.as_raw_fd(), token, true);
                        }
                    }
                    Err(_) => dead.push(token),
                }
            }
        }
        for token in dead {
            if let Some(conn) = conns.remove(&token) {
                poller.remove(conn.stream.as_raw_fd());
            }
        }
    }
    // Final write on the way out: a graceful shutdown (SIGTERM → drop)
    // persists everything served, so the next boot restores the exact
    // fleet this instance was managing.
    write_snapshot(&state, cfg, epoch, Instant::now());
}

/// Accepts every pending connection (the listener is non-blocking).
fn accept_ready(
    listener: &UnixListener,
    poller: &mut sys::Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller.add(stream.as_raw_fd(), token, false).is_ok() {
                    conns.insert(token, Conn::new(stream));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Loop-invariant context shared by every frame served in one wakeup.
struct FrameEnv<'a> {
    cfg: &'a UdsServerConfig,
    registry: &'a Registry,
    epoch: u64,
    now: Instant,
}

/// Drains the socket, answers every complete frame, and stages the
/// batched replies in the connection's write buffer. Returns the number
/// of frames served.
fn drain_and_handle(
    conn: &mut Conn,
    scratch: &mut [u8],
    reply: &mut String,
    state: &mut ServerState,
    env: &FrameEnv<'_>,
) -> u64 {
    let mut eof = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => conn.frames.extend(&scratch[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                eof = true;
                break;
            }
        }
    }
    let mut frames: u64 = 0;
    while let Some(range) = conn.frames.next_frame_range() {
        frames += 1;
        // Field-disjoint borrows: the frame bytes stay in `conn.frames`
        // (no per-frame copy) while the reply lands in `conn.wbuf`.
        if !answer_frame(
            conn.frames.frame_bytes(&range),
            &mut conn.wbuf,
            reply,
            state,
            env,
        ) {
            conn.closing = true;
            break;
        }
    }
    if !conn.closing && conn.frames.pending() > MAX_FRAME {
        // An unbounded line: answer (no silent drops) and drop the
        // connection — the stream offset is unrecoverable, exactly like
        // the thread engine's non-UTF-8 path.
        env.registry.counter("malformed").incr();
        conn.wbuf.extend_from_slice(b"ERR malformed\n");
        conn.closing = true;
    }
    if eof && !conn.closing {
        // Mirror `BufReader::read_line` semantics: a final unterminated
        // line still gets served before the connection closes.
        let residue = conn.frames.take_residue();
        if !residue.is_empty() {
            frames += 1;
            answer_frame(&residue, &mut conn.wbuf, reply, state, env);
        }
        conn.closing = true;
    }
    frames
}

/// Answers one frame, appending the reply to `wbuf` (via the reusable
/// `reply` scratch). Returns false when the connection must close
/// (non-UTF-8 on the wire).
fn answer_frame(
    frame: &[u8],
    wbuf: &mut Vec<u8>,
    reply: &mut String,
    state: &mut ServerState,
    env: &FrameEnv<'_>,
) -> bool {
    match std::str::from_utf8(frame) {
        Ok(line) => {
            reply.clear();
            handle_line_into(
                line,
                state,
                env.cfg,
                env.registry,
                env.epoch,
                env.now,
                reply,
            );
            wbuf.extend_from_slice(reply.as_bytes());
            true
        }
        Err(_) => {
            env.registry.counter("malformed").incr();
            wbuf.extend_from_slice(b"ERR malformed\n");
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"POLL 1");
        assert_eq!(fb.next_frame(), None, "no newline yet");
        fb.extend(b"234\nREG");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"POLL 1234"[..]));
        assert_eq!(fb.next_frame(), None);
        fb.extend(b"ISTER 1 2\n\n");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"REGISTER 1 2"[..]));
        assert_eq!(fb.next_frame().as_deref(), Some(&b""[..]));
        assert_eq!(fb.next_frame(), None);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buffer_residue_is_the_unterminated_tail() {
        let mut fb = FrameBuffer::new();
        fb.extend(b"BYE 7\nPOLL 9");
        assert_eq!(fb.next_frame().as_deref(), Some(&b"BYE 7"[..]));
        assert_eq!(fb.next_frame(), None);
        assert_eq!(fb.take_residue(), b"POLL 9");
        assert_eq!(fb.pending(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Feeding a pipelined multi-frame stream in arbitrary chunks
        /// reproduces exactly the original frames, regardless of where
        /// the read boundaries fall — the reactor's read path can never
        /// stall on or misparse a torn frame.
        #[test]
        fn frames_survive_arbitrary_split_boundaries(
            frames in prop::collection::vec("[ -~]{0,40}", 0..12),
            cuts in prop::collection::vec(any::<usize>(), 0..8),
        ) {
            let stream: Vec<u8> = frames
                .iter()
                .flat_map(|f| f.bytes().chain(std::iter::once(b'\n')))
                .collect();
            // Cut the stream at arbitrary (sorted, deduplicated) byte
            // positions and feed the chunks one by one.
            let mut positions: Vec<usize> =
                cuts.iter().map(|i| i % (stream.len() + 1)).collect();
            positions.push(stream.len());
            positions.sort_unstable();
            positions.dedup();
            let mut fb = FrameBuffer::new();
            let mut got: Vec<Vec<u8>> = Vec::new();
            let mut prev = 0;
            for &at in &positions {
                fb.extend(&stream[prev..at]);
                prev = at;
                while let Some(frame) = fb.next_frame() {
                    got.push(frame);
                }
            }
            let want: Vec<Vec<u8>> = frames.iter().map(|f| f.as_bytes().to_vec()).collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(fb.pending(), 0, "fully-terminated stream leaves no residue");
        }

        /// Interleaving reads and pops (pop-as-you-go rather than after
        /// the full stream) never duplicates or reorders frames, and the
        /// residue is exactly the unterminated tail.
        #[test]
        fn partial_tail_is_preserved_as_residue(
            head in prop::collection::vec("[ -~]{0,20}", 0..6),
            tail in "[ -~]{1,20}",
            chunk in 1usize..7,
        ) {
            let mut stream: Vec<u8> = head
                .iter()
                .flat_map(|f| f.bytes().chain(std::iter::once(b'\n')))
                .collect();
            stream.extend(tail.bytes()); // no trailing newline
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                fb.extend(piece);
                while let Some(frame) = fb.next_frame() {
                    got.push(frame);
                }
            }
            let want: Vec<Vec<u8>> = head.iter().map(|f| f.as_bytes().to_vec()).collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(fb.take_residue(), tail.as_bytes().to_vec());
        }
    }
}
