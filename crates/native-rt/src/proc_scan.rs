//! `/proc`-based process inspection — the native analog of UMAX's
//! "system call for determining information about the runnable processes
//! in the system" (`rpstat`).
//!
//! Linux-only; on other platforms the functions return
//! [`std::io::ErrorKind::Unsupported`].

use std::io;

/// Number of runnable ('R' state) threads of process `pid`, from
/// `/proc/<pid>/task/*/stat`.
#[cfg(target_os = "linux")]
pub fn runnable_threads(pid: u32) -> io::Result<u32> {
    let dir = format!("/proc/{pid}/task");
    let mut count = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let stat_path = entry.path().join("stat");
        match std::fs::read_to_string(&stat_path) {
            Ok(stat) => {
                if parse_stat_state(&stat) == Some('R') {
                    count += 1;
                }
            }
            // Threads exit between readdir and read; skip them.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(count)
}

/// Whether process `pid` still exists.
#[cfg(target_os = "linux")]
pub fn process_exists(pid: u32) -> bool {
    std::path::Path::new(&format!("/proc/{pid}")).exists()
}

/// Total runnable threads across the whole system, excluding the given
/// pids (the registered/controlled applications and the server itself) —
/// what the paper calls "the number of runnable processes not belonging
/// to controllable applications".
///
/// This walks all of `/proc`, so callers should cache the result for a
/// sampling interval, exactly as the centralized server amortizes its
/// single `rpstat` across all applications.
#[cfg(target_os = "linux")]
pub fn system_runnable_excluding(exclude: &[u32]) -> io::Result<u32> {
    let mut total = 0;
    for entry in std::fs::read_dir("/proc")? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        if exclude.contains(&pid) {
            continue;
        }
        if let Ok(n) = runnable_threads(pid) {
            total += n;
        }
    }
    Ok(total)
}

#[cfg(not(target_os = "linux"))]
mod unsupported {
    use super::io;

    /// Unsupported on this platform.
    pub fn runnable_threads(_pid: u32) -> io::Result<u32> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }

    /// Unsupported on this platform.
    pub fn process_exists(_pid: u32) -> bool {
        false
    }

    /// Unsupported on this platform.
    pub fn system_runnable_excluding(_exclude: &[u32]) -> io::Result<u32> {
        Err(io::Error::from(io::ErrorKind::Unsupported))
    }
}

#[cfg(not(target_os = "linux"))]
pub use unsupported::{process_exists, runnable_threads, system_runnable_excluding};

/// Extracts the state field (third, after the parenthesized comm which may
/// itself contain spaces and parentheses) from a `/proc/*/stat` line.
fn parse_stat_state(stat: &str) -> Option<char> {
    let after_comm = stat.rfind(')')?;
    stat[after_comm + 1..]
        .split_whitespace()
        .next()?
        .chars()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_state_simple() {
        assert_eq!(parse_stat_state("123 (bash) S 1 123"), Some('S'));
        assert_eq!(parse_stat_state("9 (kworker/0:1) R 2 0"), Some('R'));
    }

    #[test]
    fn parse_state_with_evil_comm() {
        // comm may contain spaces and parens: ") R" inside must not fool us.
        assert_eq!(parse_stat_state("7 (a) R (b) x) Z 1 7"), Some('Z'));
        assert_eq!(parse_stat_state("8 (fn (x y)) R 1 8"), Some('R'));
    }

    #[test]
    fn parse_state_malformed() {
        assert_eq!(parse_stat_state("no parens here"), None);
        assert_eq!(parse_stat_state("1 (x)"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn own_process_is_visible() {
        let me = std::process::id();
        assert!(process_exists(me));
        // A busy-spinning thread guarantees at least one R state.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let s2 = stop.clone();
        let h = std::thread::spawn(move || {
            while !s2.load(std::sync::atomic::Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        // Sample a few times; at least one sample must see a runnable
        // thread (the spinner, or this thread itself while on-CPU).
        let mut saw_runnable = false;
        for _ in 0..50 {
            if runnable_threads(me).expect("read own /proc") >= 1 {
                saw_runnable = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        h.join().expect("spinner joins");
        assert!(saw_runnable, "never observed a runnable thread in self");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn nonexistent_process_reported() {
        // Pid 0 has no /proc entry on Linux.
        assert!(!process_exists(0));
        assert!(runnable_threads(0).is_err());
    }
}
