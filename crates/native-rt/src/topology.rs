//! CPU topology discovery and the distance model behind tiered stealing.
//!
//! Tucker & Gupta's fourth collapse cause is processor-cache corruption:
//! a process migrated across caches refetches its working set at main-
//! memory latency. The native pool therefore wants to know *how far*
//! one CPU is from another, so an empty worker steals from the nearest
//! deque first (SMT sibling → same LLC → same socket → remote) and so
//! the control server can hand out topologically *contiguous* CPU sets
//! rather than bare counts.
//!
//! Topology comes from `/sys/devices/system/cpu/cpu*/topology` (plus
//! `cache/index*/shared_cpu_list` for the last-level cache) when the
//! kernel exposes it, and falls back to a deterministic synthetic
//! layout — 2-way SMT cores, 4-CPU LLC groups, 8-CPU sockets — inside
//! containers and tests where sysfs is absent or clipped. Everything
//! here is plain data: no atomics, no locks, safe under `--cfg loom`.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};

/// Number of steal-distance tiers ([`STEAL_TIER_NAMES`]).
pub const NUM_STEAL_TIERS: usize = 4;

/// Tier labels, nearest first, used to name the pool's per-tier steal
/// counters (`steal_tier_smt`, `steal_tier_llc`, ...).
pub const STEAL_TIER_NAMES: [&str; NUM_STEAL_TIERS] = ["smt", "llc", "socket", "remote"];

/// One logical CPU's placement: which package (socket), physical core,
/// and last-level-cache group it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuRecord {
    /// Logical CPU id (the `N` in `cpuN`).
    pub id: u32,
    /// Physical package (socket) id.
    pub package: u32,
    /// Physical core id (unique within a package; SMT siblings share it).
    pub core: u32,
    /// Last-level-cache group key (CPUs sharing the LLC share it).
    pub llc: u32,
}

/// An immutable map of the machine's CPUs and their mutual distances.
#[derive(Clone, Debug)]
pub struct CpuTopology {
    /// Records sorted by CPU id.
    records: Vec<CpuRecord>,
    /// CPU id → index into `records`.
    index: BTreeMap<u32, usize>,
}

impl CpuTopology {
    /// Builds a topology from explicit records (duplicates by id keep
    /// the first occurrence; records end up sorted by id).
    pub fn from_records(mut records: Vec<CpuRecord>) -> CpuTopology {
        records.sort_by_key(|r| r.id);
        records.dedup_by_key(|r| r.id);
        let index = records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        CpuTopology { records, index }
    }

    /// The deterministic fallback layout for `n` CPUs: 2-way SMT cores,
    /// 4-CPU LLC groups, 8-CPU sockets. Used when sysfs is absent
    /// (containers, non-Linux, tests); `n == 0` is treated as 1.
    pub fn synthetic(n: usize) -> CpuTopology {
        let n = n.max(1);
        Self::from_records(
            (0..n as u32)
                .map(|i| CpuRecord {
                    id: i,
                    package: i / 8,
                    core: i / 2,
                    llc: i / 4,
                })
                .collect(),
        )
    }

    /// Parses a sysfs CPU tree rooted at `root` (normally
    /// `/sys/devices/system/cpu`). Each `cpuN` directory contributes one
    /// record from `topology/physical_package_id` + `topology/core_id`;
    /// the LLC group is the highest-level `cache/index*/shared_cpu_list`
    /// (keyed by the smallest CPU id in the shared list), defaulting to
    /// the package when no cache hierarchy is exposed. Directories that
    /// fail to parse are skipped; an empty result is an error.
    pub fn from_sysfs(root: &Path) -> io::Result<CpuTopology> {
        let mut records = Vec::new();
        for entry in std::fs::read_dir(root)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("cpu"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue; // cpufreq, cpuidle, online, ...
            };
            let cpu_dir = entry.path();
            let Some(package) = read_u32(&cpu_dir.join("topology/physical_package_id")) else {
                continue;
            };
            let Some(core) = read_u32(&cpu_dir.join("topology/core_id")) else {
                continue;
            };
            let llc = llc_group(&cpu_dir).unwrap_or(package);
            records.push(CpuRecord {
                id,
                package,
                core,
                llc,
            });
        }
        if records.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("no parsable cpu*/topology entries under {}", root.display()),
            ));
        }
        Ok(Self::from_records(records))
    }

    /// Detects the running machine's topology: the live sysfs tree when
    /// it parses, otherwise [`CpuTopology::synthetic`] sized by
    /// `available_parallelism`.
    pub fn detect() -> CpuTopology {
        #[cfg(target_os = "linux")]
        if let Ok(t) = Self::from_sysfs(Path::new("/sys/devices/system/cpu")) {
            return t;
        }
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::synthetic(n)
    }

    /// The process-wide detected topology, computed once.
    pub fn shared() -> &'static Arc<CpuTopology> {
        static SHARED: OnceLock<Arc<CpuTopology>> = OnceLock::new();
        SHARED.get_or_init(|| Arc::new(CpuTopology::detect()))
    }

    /// Number of CPUs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no CPUs are known.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `i`-th CPU's id, in id order.
    pub fn cpu_at(&self, i: usize) -> u32 {
        self.records[i % self.records.len()].id
    }

    /// The record for CPU `id`, if known.
    pub fn record(&self, id: u32) -> Option<&CpuRecord> {
        self.index.get(&id).map(|&i| &self.records[i])
    }

    /// Distance between two CPUs: 0 self, 1 SMT sibling (same core),
    /// 2 same LLC, 3 same package, 4 remote. Unknown ids are remote.
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        let (Some(ra), Some(rb)) = (self.record(a), self.record(b)) else {
            return 4;
        };
        if ra.package != rb.package {
            return 4;
        }
        if ra.core == rb.core {
            1
        } else if ra.llc == rb.llc {
            2
        } else {
            3
        }
    }

    /// CPU ids sorted so that topological neighbors are adjacent
    /// (package, then LLC group, then core, then id). Contiguous slices
    /// of this order are what the control server hands out as CPU sets.
    pub fn linear_order(&self) -> Vec<u32> {
        let mut ids: Vec<&CpuRecord> = self.records.iter().collect();
        ids.sort_by_key(|r| (r.package, r.llc, r.core, r.id));
        ids.into_iter().map(|r| r.id).collect()
    }
}

/// Maps a [`CpuTopology::distance`] to its steal tier index
/// (0 = `smt`, 1 = `llc`, 2 = `socket`, 3 = `remote`). Distance 0 —
/// two workers time-sharing one CPU under oversubscription — counts as
/// the nearest tier.
pub fn tier_of_distance(d: u32) -> usize {
    match d {
        0 | 1 => 0,
        2 => 1,
        3 => 2,
        _ => 3,
    }
}

/// Groups worker `from`'s potential steal victims by distance tier,
/// given each worker's assigned CPU. Pure data → usable from both the
/// pool's hot path and the loom model of the tiered victim order.
pub fn steal_tiers(
    topo: &CpuTopology,
    cpu_of_worker: &[u32],
    from: usize,
) -> [Vec<usize>; NUM_STEAL_TIERS] {
    let mut tiers: [Vec<usize>; NUM_STEAL_TIERS] = Default::default();
    for (w, &cpu) in cpu_of_worker.iter().enumerate() {
        if w == from {
            continue;
        }
        let d = topo.distance(cpu_of_worker[from], cpu);
        tiers[tier_of_distance(d)].push(w);
    }
    tiers
}

/// Parses a kernel cpulist ("0-3,8,10-11") into sorted, deduplicated
/// CPU ids. Empty input is the empty set; `None` on malformed input.
pub fn parse_cpulist(s: &str) -> Option<Vec<u32>> {
    let s = s.trim();
    let mut out = Vec::new();
    if s.is_empty() {
        return Some(out);
    }
    for part in s.split(',') {
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: u32 = lo.trim().parse().ok()?;
                let hi: u32 = hi.trim().parse().ok()?;
                if lo > hi || hi - lo >= 1 << 20 {
                    return None;
                }
                out.extend(lo..=hi);
            }
            None => out.push(part.trim().parse().ok()?),
        }
    }
    out.sort_unstable();
    out.dedup();
    Some(out)
}

/// Renders CPU ids as a kernel-style cpulist, compressing runs
/// ("0-3,8"). The inverse of [`parse_cpulist`] for sorted inputs.
pub fn format_cpulist(cpus: &[u32]) -> String {
    let mut sorted = cpus.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = String::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start;
        while i + 1 < sorted.len() && sorted[i + 1] == end + 1 {
            i += 1;
            end = sorted[i];
        }
        if !out.is_empty() {
            out.push(',');
        }
        if start == end {
            out.push_str(&start.to_string());
        } else {
            out.push_str(&format!("{start}-{end}"));
        }
        i += 1;
    }
    out
}

/// Restricts the calling thread to `cpus` via `sched_setaffinity(2)`.
/// Best-effort: returns false for an empty set, off-range ids, kernel
/// rejection (e.g. every listed CPU is offline or nonexistent — the
/// synthetic fallback on small machines), or a non-Linux target.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpus: &[u32]) -> bool {
    // cpu_set_t is 1024 bits of unsigned long; building the mask by
    // word keeps it endianness-correct without the libc crate (the
    // build environment is offline; std already links libc).
    const BITS: usize = usize::BITS as usize;
    const WORDS: usize = 1024 / BITS;
    let mut mask = [0usize; WORDS];
    for &c in cpus {
        let c = c as usize;
        if c / BITS < WORDS {
            mask[c / BITS] |= 1 << (c % BITS);
        }
    }
    if mask.iter().all(|&w| w == 0) {
        return false;
    }
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const usize) -> i32;
    }
    // SAFETY: the mask buffer is a live stack array of the size we pass;
    // pid 0 targets the calling thread, so no other thread's state is
    // touched; the kernel copies the mask before returning.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux stub: pinning is never applied.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpus: &[u32]) -> bool {
    false
}

/// Reads a whitespace-trimmed `u32` from a sysfs file.
fn read_u32(path: &Path) -> Option<u32> {
    std::fs::read_to_string(path)
        .ok()?
        .trim()
        .parse::<u32>()
        .ok()
}

/// The LLC group key for one `cpuN` dir: among `cache/index*` entries,
/// take the highest cache level's `shared_cpu_list` and key the group
/// by its smallest member.
fn llc_group(cpu_dir: &Path) -> Option<u32> {
    let cache = cpu_dir.join("cache");
    let mut best: Option<(u32, u32)> = None; // (level, group key)
    for entry in std::fs::read_dir(cache).ok()? {
        let entry = entry.ok()?;
        let dir = entry.path();
        if !entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.starts_with("index"))
        {
            continue;
        }
        let Some(level) = read_u32(&dir.join("level")) else {
            continue;
        };
        let shared = std::fs::read_to_string(dir.join("shared_cpu_list")).ok()?;
        let Some(list) = parse_cpulist(&shared) else {
            continue;
        };
        let Some(&key) = list.first() else { continue };
        match best {
            Some((l, _)) if level <= l => {}
            _ => best = Some((level, key)),
        }
    }
    best.map(|(_, key)| key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_distances_follow_the_layout() {
        let t = CpuTopology::synthetic(16);
        assert_eq!(t.len(), 16);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 1), 1, "SMT sibling");
        assert_eq!(t.distance(0, 2), 2, "same LLC");
        assert_eq!(t.distance(0, 4), 3, "same socket");
        assert_eq!(t.distance(0, 8), 4, "remote");
        assert_eq!(t.distance(0, 99), 4, "unknown id is remote");
    }

    #[test]
    fn synthetic_zero_is_one_cpu() {
        assert_eq!(CpuTopology::synthetic(0).len(), 1);
    }

    #[test]
    fn linear_order_groups_neighbors() {
        let t = CpuTopology::synthetic(16);
        let order = t.linear_order();
        assert_eq!(order.len(), 16);
        // Adjacent entries are never farther apart than non-adjacent ones
        // at the same offset from a socket boundary: the order is exactly
        // id order for the synthetic layout.
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn cpulist_round_trips() {
        for list in ["", "0", "0-3", "0-3,8", "1,3,5", "0-1,4-7,9"] {
            let parsed = parse_cpulist(list).expect("parse");
            assert_eq!(format_cpulist(&parsed), list);
        }
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("a"), None);
        assert_eq!(parse_cpulist("0-"), None);
    }

    #[test]
    fn steal_tiers_partition_other_workers() {
        let t = CpuTopology::synthetic(16);
        let cpus: Vec<u32> = (0..16).collect();
        let tiers = steal_tiers(&t, &cpus, 0);
        assert_eq!(tiers[0], vec![1]);
        assert_eq!(tiers[1], vec![2, 3]);
        assert_eq!(tiers[2], vec![4, 5, 6, 7]);
        assert_eq!(tiers[3], (8..16).collect::<Vec<_>>());
        let total: usize = tiers.iter().map(Vec::len).sum();
        assert_eq!(total, 15);
    }

    #[test]
    fn oversubscribed_workers_share_cpus_in_tier_zero() {
        let t = CpuTopology::synthetic(2);
        // 4 workers on 2 CPUs: worker 2 shares cpu 0 with worker 0.
        let cpus = vec![0, 1, 0, 1];
        let tiers = steal_tiers(&t, &cpus, 0);
        assert!(tiers[0].contains(&2), "same-cpu worker is nearest");
    }

    #[test]
    fn detect_never_panics_and_is_nonempty() {
        let t = CpuTopology::detect();
        assert!(!t.is_empty());
        let s = CpuTopology::shared();
        assert!(!s.is_empty());
    }
}
