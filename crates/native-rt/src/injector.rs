//! A sharded multi-producer injector queue for external submissions.
//!
//! `submit()` calls arrive from arbitrary threads; funnelling them through
//! one mutex recreates exactly the saturated-lock collapse this crate's
//! rewrite removes. Instead the injector spreads pushes round-robin over
//! `2 × nworkers` (power-of-two) independently locked FIFO shards, so two
//! concurrent producers collide only with probability `1/shards`, and a
//! consumer drains whichever shard it reaches first — starting from its
//! own index so workers prefer disjoint shards.
//!
//! An approximate global length (`AtomicUsize`) gives consumers a
//! lock-free emptiness fast path: idle workers spin-polling the injector
//! touch one shared atomic, not `shards` mutexes. The count is maintained
//! as push-before-increment … decrement-after-pop, so a nonzero length
//! always has a corresponding element *eventually*; consumers treat it as
//! a hint, never a guarantee (the pop path still scans the shards).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Pad each shard to its own cache line so neighboring shard locks don't
/// false-share.
#[repr(align(64))]
struct Shard<T> {
    queue: Mutex<VecDeque<T>>,
}

/// A sharded MPMC FIFO queue.
pub struct Injector<T> {
    shards: Box<[Shard<T>]>,
    /// Round-robin cursor for producers.
    // sched-atomic(relaxed): pure distribution hint; shard mutexes do
    // the real synchronization.
    cursor: AtomicUsize,
    /// Approximate element count (see module docs).
    // sched-atomic(handoff): the Release add after a shard push is the
    // producers' publish signal for the consumers' sleep/wake fast path
    // (Acquire load in is_empty); the shard mutex moves the data itself.
    len: AtomicUsize,
}

impl<T> Injector<T> {
    /// Creates an injector sized for `nworkers` consumers.
    pub fn new(nworkers: usize) -> Self {
        let n = (2 * nworkers.max(1)).next_power_of_two();
        Injector {
            shards: (0..n)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                })
                .collect(),
            cursor: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of shards (a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Approximate queued-element count.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when the approximate count is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value` on the next shard in round-robin order.
    pub fn push(&self, value: T) {
        let mask = self.shards.len() - 1;
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) & mask;
        self.shards[i].queue.lock().push_back(value);
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Dequeues one element, scanning shards from `hint` (a consumer
    /// passes its worker index so concurrent consumers start at different
    /// shards). Shards whose lock is momentarily held are skipped on the
    /// first sweep and retried on a second, locking sweep, so a single
    /// busy shard cannot hide elements.
    pub fn pop(&self, hint: usize) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let n = self.shards.len();
        let mask = n - 1;
        // Opportunistic sweep: try-lock only.
        for off in 0..n {
            let shard = &self.shards[(hint + off) & mask];
            if let Some(mut q) = shard.queue.try_lock() {
                if let Some(v) = q.pop_front() {
                    self.len.fetch_sub(1, Ordering::Release);
                    return Some(v);
                }
            }
        }
        // Certain sweep: take every lock once.
        for off in 0..n {
            let shard = &self.shards[(hint + off) & mask];
            if let Some(v) = shard.queue.lock().pop_front() {
                self.len.fetch_sub(1, Ordering::Release);
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_shard_and_nothing_lost() {
        let inj = Injector::new(1);
        assert!(inj.is_empty());
        for i in 0..100 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 100);
        let mut got: Vec<i32> = (0..100).map(|_| inj.pop(0).unwrap()).collect();
        assert!(inj.pop(0).is_none());
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_scales_with_workers() {
        assert_eq!(Injector::<u8>::new(1).shards(), 2);
        assert_eq!(Injector::<u8>::new(3).shards(), 8);
        assert_eq!(Injector::<u8>::new(8).shards(), 16);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_elements() {
        let inj = Arc::new(Injector::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    for i in 0..2_500usize {
                        inj.push(p * 10_000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|c| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 200 {
                        match inj.pop(c) {
                            Some(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        // Late elements may still sit in the queue after consumers give
        // up; drain the rest single-threaded.
        while let Some(v) = inj.pop(0) {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10_000, "all elements, no duplicates");
        assert!(inj.is_empty());
    }
}
