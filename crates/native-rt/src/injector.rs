//! A sharded multi-producer injector queue for external submissions.
//!
//! `submit()` calls arrive from arbitrary threads; funnelling them through
//! one mutex recreates exactly the saturated-lock collapse this crate's
//! rewrite removes. Instead the injector spreads pushes round-robin over
//! `2 × nworkers` (power-of-two) independently locked FIFO shards, so two
//! concurrent producers collide only with probability `1/shards`, and a
//! consumer drains whichever shard it reaches first — starting from its
//! own index so workers prefer disjoint shards.
//!
//! An approximate global length (`AtomicUsize`) gives consumers a
//! lock-free emptiness fast path: idle workers spin-polling the injector
//! touch one shared atomic, not `shards` mutexes. The count is maintained
//! as push-before-increment … decrement-after-pop, so a nonzero length
//! always has a corresponding element *eventually*; consumers treat it as
//! a hint, never a guarantee (the pop path still scans the shards).
//!
//! Each shard additionally keeps a *conservative* occupancy count
//! (incremented before the push, decremented after the pop, so it never
//! under-counts). Both of `pop`'s sweeps skip shards whose occupancy
//! reads zero — under the usual many-idle-workers-few-jobs regime the
//! certain sweep would otherwise serialize every consumer through every
//! shard lock just to prove them empty. Skips by the certain sweep are
//! counted as `injector_sweep_skips` when the pool wires a counter in.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::stats::Counter;

/// Pad each shard to its own cache line so neighboring shard locks don't
/// false-share.
#[repr(align(64))]
struct Shard<T> {
    queue: Mutex<VecDeque<T>>,
    /// Conservative per-shard element count: incremented *before* the
    /// shard push and decremented *after* the shard pop, so at every
    /// instant `occupancy ≥ queue.len()` and a zero read proves the
    /// shard empty — what lets `pop`'s sweeps skip the shard without
    /// taking its lock.
    // sched-atomic(handoff): the Release pre-increment is ordered before
    // the producer's global `len` Release add, so a consumer whose
    // `is_empty` Acquire load observed the element also observes the
    // occupancy (no element published through `len` is ever skipped);
    // over-counts from in-flight operations only cost a redundant lock.
    occupancy: AtomicUsize,
}

/// A sharded MPMC FIFO queue.
pub struct Injector<T> {
    shards: Box<[Shard<T>]>,
    /// Round-robin cursor for producers.
    // sched-atomic(relaxed): pure distribution hint; shard mutexes do
    // the real synchronization.
    cursor: AtomicUsize,
    /// Approximate element count (see module docs).
    // sched-atomic(handoff): the Release add after a shard push is the
    // producers' publish signal for the consumers' sleep/wake fast path
    // (Acquire load in is_empty); the shard mutex moves the data itself.
    len: AtomicUsize,
    /// Shards skipped by `pop`'s certain sweep on a zero occupancy read
    /// (`injector_sweep_skips` when wired to a pool's registry).
    sweep_skips: Option<Counter>,
}

impl<T> Injector<T> {
    /// Creates an injector sized for `nworkers` consumers.
    pub fn new(nworkers: usize) -> Self {
        Self::build(nworkers, None)
    }

    /// As [`Injector::new`], counting certain-sweep shard skips on
    /// `skips` (registered by the pool as `injector_sweep_skips`).
    pub fn with_counter(nworkers: usize, skips: Counter) -> Self {
        Self::build(nworkers, Some(skips))
    }

    fn build(nworkers: usize, sweep_skips: Option<Counter>) -> Self {
        let n = (2 * nworkers.max(1)).next_power_of_two();
        Injector {
            shards: (0..n)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    occupancy: AtomicUsize::new(0),
                })
                .collect(),
            cursor: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            sweep_skips,
        }
    }

    /// Number of shards (a power of two).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Approximate queued-element count.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True when the approximate count is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value` on the next shard in round-robin order.
    pub fn push(&self, value: T) {
        let mask = self.shards.len() - 1;
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) & mask;
        // Occupancy rises before the element does (see the field docs):
        // a sweep that reads zero afterward can only be missing a push
        // that had not reached the global `len` publish either.
        self.shards[i].occupancy.fetch_add(1, Ordering::Release);
        self.shards[i].queue.lock().push_back(value);
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Dequeues one element, scanning shards from `hint` (a consumer
    /// passes its worker index so concurrent consumers start at different
    /// shards). Shards whose lock is momentarily held are skipped on the
    /// first sweep and retried on a second, locking sweep, so a single
    /// busy shard cannot hide elements.
    pub fn pop(&self, hint: usize) -> Option<T> {
        if self.is_empty() {
            return None;
        }
        let n = self.shards.len();
        let mask = n - 1;
        // Opportunistic sweep: try-lock only, skipping shards whose
        // occupancy proves them empty.
        for off in 0..n {
            let shard = &self.shards[(hint + off) & mask];
            if shard.occupancy.load(Ordering::Acquire) == 0 {
                continue;
            }
            if let Some(mut q) = shard.queue.try_lock() {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    shard.occupancy.fetch_sub(1, Ordering::Release);
                    self.len.fetch_sub(1, Ordering::Release);
                    return Some(v);
                }
            }
        }
        self.certain_sweep(hint)
    }

    /// The second sweep: take every lock whose shard may hold an
    /// element; a zero occupancy is proof enough to skip (the
    /// pre-increment protocol guarantees it cannot hide an element
    /// this consumer was promised via `is_empty`).
    fn certain_sweep(&self, hint: usize) -> Option<T> {
        let n = self.shards.len();
        let mask = n - 1;
        let mut skipped = 0u64;
        for off in 0..n {
            let shard = &self.shards[(hint + off) & mask];
            if shard.occupancy.load(Ordering::Acquire) == 0 {
                skipped += 1;
                continue;
            }
            let popped = shard.queue.lock().pop_front();
            if let Some(v) = popped {
                shard.occupancy.fetch_sub(1, Ordering::Release);
                self.len.fetch_sub(1, Ordering::Release);
                self.note_skips(skipped);
                return Some(v);
            }
        }
        self.note_skips(skipped);
        None
    }

    fn note_skips(&self, skipped: u64) {
        if skipped > 0 {
            if let Some(sweep_skips) = &self.sweep_skips {
                sweep_skips.add(skipped);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_a_shard_and_nothing_lost() {
        let inj = Injector::new(1);
        assert!(inj.is_empty());
        for i in 0..100 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 100);
        let mut got: Vec<i32> = (0..100).map(|_| inj.pop(0).unwrap()).collect();
        assert!(inj.pop(0).is_none());
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn certain_sweep_skips_empty_shards_and_counts_them() {
        let registry = crate::stats::Registry::new();
        let skips = registry.counter("injector_sweep_skips");
        // 4 workers → 8 shards; one element lands on shard 0.
        let inj = Injector::with_counter(4, skips.clone());
        inj.push(7u32);
        // Sweeping from shard 1, the seven empty shards (1..8) are all
        // skipped on occupancy before the element is found on shard 0.
        assert_eq!(inj.certain_sweep(1), Some(7));
        assert_eq!(skips.get(), 7);
        // A sweep of a fully empty injector skips every shard.
        assert_eq!(inj.certain_sweep(0), None);
        assert_eq!(skips.get(), 15);
    }

    #[test]
    fn occupancy_tracks_pushes_and_pops() {
        let inj = Injector::new(1); // 2 shards
        for i in 0..6 {
            inj.push(i);
        }
        let occupied: usize = inj
            .shards
            .iter()
            .map(|s| s.occupancy.load(Ordering::Acquire))
            .sum();
        assert_eq!(occupied, 6);
        while inj.pop(0).is_some() {}
        for s in inj.shards.iter() {
            assert_eq!(s.occupancy.load(Ordering::Acquire), 0);
        }
    }

    #[test]
    fn shard_count_scales_with_workers() {
        assert_eq!(Injector::<u8>::new(1).shards(), 2);
        assert_eq!(Injector::<u8>::new(3).shards(), 8);
        assert_eq!(Injector::<u8>::new(8).shards(), 16);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_elements() {
        let inj = Arc::new(Injector::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    for i in 0..2_500usize {
                        inj.push(p * 10_000 + i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|c| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut dry = 0;
                    while dry < 200 {
                        match inj.pop(c) {
                            Some(v) => {
                                got.push(v);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        // Late elements may still sit in the queue after consumers give
        // up; drain the rest single-threaded.
        while let Some(v) = inj.pop(0) {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 10_000, "all elements, no duplicates");
        assert!(inj.is_empty());
    }
}
