//! The in-process central controller — the native analog of the paper's
//! user-level server.
//!
//! Thread pools register with one [`Controller`]; a background thread
//! periodically recomputes each pool's target number of *unsuspended*
//! workers with the same fair-partition arithmetic the simulated server
//! uses ([`procctl::partition`]), capped by each pool's worker count, at
//! least one each. Pools read their target atomically at safe points.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use procctl::{assign_cpu_sets, partition, AppDemand};

use crate::topology::CpuTopology;

/// Per-pool slot the controller writes targets into.
#[derive(Debug)]
pub struct TargetSlot {
    /// Desired number of unsuspended workers.
    // sched-atomic(handoff): the controller's Release store publishes a
    // recomputed partition; workers' Acquire loads pair with it.
    pub target: AtomicUsize,
    /// Total workers in the pool (the cap).
    pub nworkers: usize,
    /// The concrete CPUs assigned to this pool, when the control plane
    /// hands out sets and not just counts (`None` = count-only mode:
    /// old servers, degraded mode, or no controller).
    cpuset: Mutex<Option<Arc<Vec<u32>>>>,
    /// Bumped on every *actual change* of `cpuset`, so workers can poll
    /// cheaply for "did my assignment move?" without taking the lock.
    // sched-atomic(handoff): the Release bump publishes the new cpuset
    // written under the lock just before; pollers load with Acquire and
    // then take the lock for the value.
    cpuset_gen: AtomicUsize,
}

impl TargetSlot {
    /// A slot for an `nworkers`-worker pool, initialized to all workers
    /// runnable (the uncontrolled default until a controller or poller
    /// writes a target) and no CPU set assigned.
    pub fn new(nworkers: usize) -> Self {
        TargetSlot {
            target: AtomicUsize::new(nworkers.max(1)),
            nworkers,
            cpuset: Mutex::new(None),
            cpuset_gen: AtomicUsize::new(0),
        }
    }

    /// Publishes a CPU-set assignment (`None` reverts to count-only
    /// mode). The generation only advances when the set actually
    /// changes, so a poller rewriting the same assignment every
    /// interval does not make workers rebuild their victim rings.
    pub fn set_cpus(&self, cpus: Option<Vec<u32>>) {
        let mut slot = self.cpuset.lock();
        let changed = match (&*slot, &cpus) {
            (None, None) => false,
            (Some(old), Some(new)) => old.as_slice() != new.as_slice(),
            _ => true,
        };
        if changed {
            *slot = cpus.map(Arc::new);
            self.cpuset_gen.fetch_add(1, Ordering::Release);
        }
    }

    /// The currently assigned CPU set, if any.
    pub fn cpus(&self) -> Option<Arc<Vec<u32>>> {
        self.cpuset.lock().clone()
    }

    /// The CPU-set change generation (see [`TargetSlot::set_cpus`]).
    pub fn cpus_generation(&self) -> usize {
        self.cpuset_gen.load(Ordering::Acquire)
    }
}

struct Registry {
    pools: Vec<Weak<TargetSlot>>,
}

/// The centralized controller.
pub struct Controller {
    cpus: usize,
    /// CPU ids in topological order (SMT siblings adjacent, then LLC
    /// groups, then sockets) — the order contiguous CPU sets are cut
    /// from at every recompute.
    cpu_order: Arc<Vec<u32>>,
    registry: Arc<Mutex<Registry>>,
    // sched-atomic(handoff): Release store on shutdown; the ticker's
    // Acquire load pairs with it before the final recompute.
    stop: Arc<AtomicBool>,
    ticker: Option<JoinHandle<()>>,
}

impl Controller {
    /// Creates a controller for a machine with `cpus` processors,
    /// recomputing targets every `interval`.
    ///
    /// # Panics
    ///
    /// Panics when `cpus` is zero or absurd (beyond
    /// [`procctl::MAX_CPUS`]); use [`Controller::try_new`] to handle
    /// untrusted configuration without panicking.
    pub fn new(cpus: usize, interval: Duration) -> Self {
        Self::try_new(cpus, interval)
            .unwrap_or_else(|e| panic!("invalid controller configuration: {e}"))
    }

    /// Like [`Controller::new`], but rejects a zero/absurd `cpus` (e.g.
    /// from a config file) with a clear error instead of handing every
    /// pool a meaningless 0-target downstream.
    pub fn try_new(cpus: usize, interval: Duration) -> Result<Self, procctl::SizeError> {
        procctl::validate_cpus(u32::try_from(cpus).unwrap_or(u32::MAX))?;
        // Partition the real machine's layout when the controller spans
        // exactly its CPUs; otherwise (tests, simulated sizes) use the
        // deterministic synthetic layout of the requested size.
        let detected = CpuTopology::shared();
        let topo = if detected.len() == cpus {
            Arc::clone(detected)
        } else {
            Arc::new(CpuTopology::synthetic(cpus))
        };
        let cpu_order = Arc::new(topo.linear_order());
        let registry = Arc::new(Mutex::new(Registry { pools: Vec::new() }));
        let stop = Arc::new(AtomicBool::new(false));
        let ticker = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let cpu_order = Arc::clone(&cpu_order);
            std::thread::Builder::new()
                .name("procctl-server".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        Self::recompute(&registry, cpus, &cpu_order);
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn controller thread")
        };
        Ok(Controller {
            cpus,
            cpu_order,
            registry,
            stop,
            ticker: Some(ticker),
        })
    }

    /// Registers a pool; returns its target slot (initialized to the whole
    /// machine until the first recompute, like the simulated server).
    pub fn register(&self, nworkers: usize) -> Arc<TargetSlot> {
        let slot = Arc::new(TargetSlot {
            target: AtomicUsize::new(self.cpus.min(nworkers.max(1))),
            nworkers,
            cpuset: Mutex::new(None),
            cpuset_gen: AtomicUsize::new(0),
        });
        self.registry.lock().pools.push(Arc::downgrade(&slot));
        Self::recompute(&self.registry, self.cpus, &self.cpu_order);
        slot
    }

    /// Recomputes all live pools' targets now (also called by the ticker).
    pub fn recompute_now(&self) {
        Self::recompute(&self.registry, self.cpus, &self.cpu_order);
    }

    fn recompute(registry: &Mutex<Registry>, cpus: usize, cpu_order: &[u32]) {
        let mut reg = registry.lock();
        // Drop dead pools (their `Arc` slots were released on pool drop —
        // the native analog of the BYE message).
        reg.pools.retain(|w| w.strong_count() > 0);
        let slots: Vec<Arc<TargetSlot>> = reg.pools.iter().filter_map(Weak::upgrade).collect();
        drop(reg);
        if slots.is_empty() {
            return;
        }
        let demands: Vec<AppDemand> = slots
            .iter()
            .map(|s| AppDemand::new(s.nworkers as u32))
            .collect();
        // Effective targets (with the floor of one) drive both counts and
        // CPU-set slices, so every pool's set matches its target size.
        let targets: Vec<u32> = partition(cpus as u32, 0, &demands)
            .into_iter()
            .map(|t| t.max(1))
            .collect();
        let sets = assign_cpu_sets(cpu_order, &targets);
        for ((slot, t), set) in slots.iter().zip(&targets).zip(sets) {
            slot.target.store(*t as usize, Ordering::Release);
            slot.set_cpus(Some(set));
        }
    }

    /// Number of processors this controller partitions.
    pub fn cpus(&self) -> usize {
        self.cpus
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pool_gets_whole_machine() {
        let c = Controller::new(8, Duration::from_millis(50));
        let slot = c.register(16);
        assert_eq!(slot.target.load(Ordering::Acquire), 8);
    }

    #[test]
    fn two_pools_split() {
        let c = Controller::new(8, Duration::from_millis(50));
        let a = c.register(16);
        let b = c.register(16);
        c.recompute_now();
        assert_eq!(a.target.load(Ordering::Acquire), 4);
        assert_eq!(b.target.load(Ordering::Acquire), 4);
    }

    #[test]
    fn small_pool_capped_excess_redistributed() {
        let c = Controller::new(8, Duration::from_millis(50));
        let a = c.register(2);
        let b = c.register(16);
        c.recompute_now();
        assert_eq!(a.target.load(Ordering::Acquire), 2);
        assert_eq!(b.target.load(Ordering::Acquire), 6);
    }

    #[test]
    fn dead_pools_release_their_share() {
        let c = Controller::new(8, Duration::from_millis(50));
        let a = c.register(16);
        {
            let _b = c.register(16);
            c.recompute_now();
            assert_eq!(a.target.load(Ordering::Acquire), 4);
        } // b dropped
        c.recompute_now();
        assert_eq!(a.target.load(Ordering::Acquire), 8);
    }

    #[test]
    fn zero_and_absurd_cpus_rejected() {
        assert!(Controller::try_new(0, Duration::from_millis(50)).is_err());
        assert!(Controller::try_new(1 << 20, Duration::from_millis(50)).is_err());
        assert!(Controller::try_new(1, Duration::from_millis(50)).is_ok());
    }

    #[test]
    fn target_slot_new_starts_uncontrolled() {
        let slot = TargetSlot::new(6);
        assert_eq!(slot.nworkers, 6);
        assert_eq!(slot.target.load(Ordering::Acquire), 6);
        // Floor of one even for a degenerate pool.
        assert_eq!(TargetSlot::new(0).target.load(Ordering::Acquire), 1);
    }

    #[test]
    fn recompute_hands_out_disjoint_contiguous_cpu_sets() {
        let c = Controller::new(8, Duration::from_millis(50));
        let a = c.register(16);
        let b = c.register(16);
        c.recompute_now();
        let sa = a.cpus().expect("a gets a set");
        let sb = b.cpus().expect("b gets a set");
        assert_eq!(sa.len(), 4);
        assert_eq!(sb.len(), 4);
        assert!(sa.iter().all(|c| !sb.contains(c)), "{sa:?} vs {sb:?}");
        // An identical recompute must not churn the generation.
        let (ga, gb) = (a.cpus_generation(), b.cpus_generation());
        c.recompute_now();
        assert_eq!(a.cpus_generation(), ga);
        assert_eq!(b.cpus_generation(), gb);
    }

    #[test]
    fn set_cpus_generation_tracks_actual_changes_only() {
        let slot = TargetSlot::new(4);
        assert_eq!(slot.cpus_generation(), 0);
        slot.set_cpus(Some(vec![0, 1]));
        assert_eq!(slot.cpus_generation(), 1);
        slot.set_cpus(Some(vec![0, 1])); // same set — no bump
        assert_eq!(slot.cpus_generation(), 1);
        slot.set_cpus(None); // back to count-only mode
        assert_eq!(slot.cpus_generation(), 2);
        slot.set_cpus(None);
        assert_eq!(slot.cpus_generation(), 2);
        assert!(slot.cpus().is_none());
    }

    #[test]
    fn ticker_recomputes_in_background() {
        let c = Controller::new(8, Duration::from_millis(10));
        let a = c.register(16);
        let _b = c.register(16);
        // Wait for the ticker (no explicit recompute_now).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while a.target.load(Ordering::Acquire) != 4 {
            assert!(std::time::Instant::now() < deadline, "ticker never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
