//! `native-rt` — the paper's process-control scheme over real OS threads.
//!
//! Where the sibling crates *simulate* a 1989 multiprocessor, this crate
//! demonstrates that the protocol is directly implementable with modern
//! threading: a [`Controller`] (the centralized server) partitions the
//! host's cores among registered [`Pool`]s, and each pool's workers
//! suspend/resume themselves at safe points between jobs — park/unpark
//! standing in for the paper's signal-and-wait. The `workloads::native`
//! kernels (matmul, FFT, sort, gauss) provide real work to schedule.
//!
//! Job dispatch is work-stealing: each worker owns a [Chase–Lev
//! deque](deque), external submissions go through a [sharded
//! injector](injector), and idle workers spin briefly before parking on
//! private condvars. The central-queue design this replaced survives as
//! [`baseline::CentralPool`] so `pool_bench` can measure the difference
//! on any host.
//!
//! For cross-process deployments the control plane is fault-tolerant:
//! the [`UdsServer`] leases registrations and stamps replies with a boot
//! epoch, the [`SupervisedClient`] reconnects with backoff and falls
//! back to degraded (uncontrolled) targets while the server is away, and
//! the [`chaos`] proxy injects deterministic wire faults so all of it is
//! testable. See DESIGN.md §"Failure modes & recovery".
//!
//! # Examples
//!
//! ```
//! use native_rt::{Controller, Pool};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let controller = Controller::new(4, std::time::Duration::from_millis(20));
//! let pool = Pool::new(&controller, 8, false); // 8 workers, 4-cpu target
//! let done = Arc::new(AtomicUsize::new(0));
//! for _ in 0..32 {
//!     let d = done.clone();
//!     pool.execute(move || { d.fetch_add(1, Ordering::Relaxed); });
//! }
//! pool.wait_idle();
//! assert_eq!(done.load(Ordering::Relaxed), 32);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod baseline;
#[cfg(unix)]
pub mod chaos;
mod controller;
pub mod crlock;
pub mod deque;
pub mod injector;
mod pool;
pub mod proc_scan;
#[cfg(unix)]
pub mod reactor;
pub mod snapshot;
pub mod stats;
#[cfg(unix)]
mod supervise;
pub mod topology;
pub mod trace;
#[cfg(unix)]
mod uds;

pub use baseline::CentralPool;
#[cfg(unix)]
pub use chaos::{ChaosConfig, ChaosProxy, JobChaos, JobFault};
pub use controller::{Controller, TargetSlot};
pub use crlock::{
    AdaptiveConfig, AdaptiveSizer, Admission, CrConfig, CrGate, CrGuard, CrLock, RawLock,
    RawParking, RawSpin,
};
pub use deque::{Steal, Stealer, Worker};
pub use injector::Injector;
pub use pool::{Job, Pool, PoolConfig, PoolMetrics, WatchdogConfig};
#[cfg(unix)]
pub use reactor::FrameBuffer;
pub use snapshot::{ServerSnapshot, SnapshotApp, SnapshotError};
pub use stats::{Registry, Snapshot};
#[cfg(unix)]
pub use supervise::{RestartKind, SupervisedClient, SupervisorConfig};
pub use topology::{CpuRecord, CpuTopology, NUM_STEAL_TIERS, STEAL_TIER_NAMES};
pub use trace::{EventKind, FlightRecorder, SpscRing, TraceEvent};
#[cfg(unix)]
pub use uds::{
    AppStatsEntry, CpusPollReply, EventsReply, PollReply, PollerGuard, ServerEngine, StatsAllReply,
    TraceReply, UdsClient, UdsServer, UdsServerConfig, DEFAULT_IO_TIMEOUT, DEFAULT_JOURNAL_CAP,
    DEFAULT_LEASE_TTL, DEFAULT_TRACE_MAX,
};
