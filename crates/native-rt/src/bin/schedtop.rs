//! `schedtop` — a live console for the process-control fleet.
//!
//! Connects to a running `procctl-serverd` as an *observer* (no
//! REGISTER, so it never takes a share of the partition) and renders
//! every registered application's scheduling health from one `STATS ALL`
//! round-trip per refresh: partition target vs. actually-running
//! workers, wake-to-run latency p50/p99, the steal-tier mix, and
//! degraded/lease state — the operator's view of Tucker & Gupta's
//! central server actually steering the machine.
//!
//! ```text
//! USAGE: schedtop <socket-path> [--once] [--interval-ms N]
//! ```
//!
//! `--once` prints a single snapshot and exits (CI smoke mode); the
//! default is a live display redrawn every `--interval-ms` (1000 ms).
//! The numbers come from each application's own `REPORT` line (pushed by
//! its reporting poller), so a row goes stale-then-absent when an
//! application stops polling and its lease expires — exactly the
//! visibility the lease mechanism is meant to give.

#[cfg(unix)]
mod tool {
    use native_rt::{AppStatsEntry, StatsAllReply, UdsClient};
    use std::collections::BTreeMap;
    use std::time::Duration;

    pub struct Options {
        pub path: String,
        pub once: bool,
        pub interval: Duration,
    }

    pub fn parse_args(args: &[String]) -> Result<Options, String> {
        let mut path = None;
        let mut once = false;
        let mut interval = Duration::from_millis(1000);
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--once" => once = true,
                "--interval-ms" => {
                    i += 1;
                    let ms: u64 = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&ms| ms > 0)
                        .ok_or("--interval-ms needs a positive integer")?;
                    interval = Duration::from_millis(ms);
                }
                "--help" | "-h" => return Err(String::new()),
                other if path.is_none() && !other.starts_with('-') => {
                    path = Some(other.to_string());
                }
                other => return Err(format!("unknown argument {other}")),
            }
            i += 1;
        }
        Ok(Options {
            path: path.ok_or("missing socket path")?,
            once,
            interval,
        })
    }

    /// `k=v` fields of a rendered stats line, as floats.
    fn parse_kv(line: &str) -> BTreeMap<&str, f64> {
        line.split_whitespace()
            .filter_map(|kv| kv.split_once('='))
            .filter_map(|(k, v)| v.parse::<f64>().ok().map(|v| (k, v)))
            .collect()
    }

    fn fmt_us(ns: Option<&f64>) -> String {
        match ns {
            Some(&ns) if ns > 0.0 => format!("{:.1}", ns / 1_000.0),
            _ => "-".to_string(),
        }
    }

    /// One application's row. The report line is the pool registry
    /// rendered by its reporting poller; apps that never reported show
    /// dashes rather than zeros (absence, not measurement).
    fn render_row(app: &AppStatsEntry, out: &mut String) {
        use std::fmt::Write;
        let kv = parse_kv(&app.report);
        let active = kv
            .get("active")
            .map_or("-".to_string(), |&v| format!("{v:.0}"));
        let degraded = match kv.get("degraded") {
            Some(&d) if d > 0.0 => "DEGRADED",
            Some(_) => "ok",
            None => "-",
        };
        let steals = ["smt", "llc", "socket", "remote"]
            .iter()
            .map(|tier| {
                kv.get(format!("steal_tier_{tier}").as_str())
                    .map_or("-".to_string(), |&v| format!("{v:.0}"))
            })
            .collect::<Vec<_>>()
            .join("/");
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>7} {:>6} {:>9} {:>9} {:>9} {:>19} {:>8}",
            app.pid,
            app.target,
            app.nworkers,
            active,
            kv.get("jobs_run")
                .map_or("-".to_string(), |&v| format!("{v:.0}")),
            fmt_us(kv.get("wake_to_run_ns.p50")),
            fmt_us(kv.get("wake_to_run_ns.p99")),
            steals,
            degraded,
        );
    }

    /// One full snapshot, or an error line when the server is away.
    pub fn snapshot(client: &mut UdsClient) -> Result<String, String> {
        use std::fmt::Write;
        let server = client
            .stats()
            .map_err(|e| format!("server stats failed: {e}"))?;
        let apps = match client
            .stats_all()
            .map_err(|e| format!("STATS ALL failed: {e}"))?
        {
            StatsAllReply::Apps(apps) => apps,
            StatsAllReply::Unsupported => {
                return Err("server predates STATS ALL (upgrade procctl-serverd)".to_string())
            }
        };
        let server: BTreeMap<String, i64> = server.into_iter().collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "schedtop: {} apps | polls={} events_pushes={} traces={} journal_drops={} lease_expiries={} malformed={}",
            apps.len(),
            server.get("polls").copied().unwrap_or(0),
            server.get("events_pushes").copied().unwrap_or(0),
            server.get("traces").copied().unwrap_or(0),
            server.get("journal_drops").copied().unwrap_or(0),
            server.get("lease_expiries").copied().unwrap_or(0),
            server.get("malformed").copied().unwrap_or(0),
        );
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>7} {:>6} {:>9} {:>9} {:>9} {:>19} {:>8}",
            "PID",
            "TARGET",
            "WORKERS",
            "ACTIVE",
            "JOBS",
            "W2R-P50us",
            "W2R-P99us",
            "STEALS(s/l/sk/r)",
            "STATE",
        );
        for app in &apps {
            render_row(app, &mut out);
        }
        if apps.is_empty() {
            let _ = writeln!(out, "(no registered applications)");
        }
        Ok(out)
    }

    pub fn run(opts: &Options) -> i32 {
        let mut failures = 0u32;
        loop {
            let shot = UdsClient::connect(&opts.path, Duration::from_secs(2))
                .map_err(|e| format!("cannot connect {}: {e}", opts.path))
                .and_then(|mut c| snapshot(&mut c));
            match shot {
                Ok(text) => {
                    failures = 0;
                    if opts.once {
                        print!("{text}");
                        return 0;
                    }
                    // ANSI clear + home for the live redraw.
                    print!("\x1b[2J\x1b[H{text}");
                    use std::io::Write;
                    let _ = std::io::stdout().flush();
                }
                Err(e) => {
                    failures += 1;
                    if opts.once || failures >= 5 {
                        eprintln!("schedtop: {e}");
                        return 1;
                    }
                }
            }
            std::thread::sleep(opts.interval);
        }
    }
}

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opts = match tool::parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("schedtop: {e}");
            }
            eprintln!("USAGE: schedtop <socket-path> [--once] [--interval-ms N]");
            std::process::exit(if e.is_empty() { 0 } else { 2 });
        }
    };
    std::process::exit(tool::run(&opts));
}

#[cfg(not(unix))]
fn main() {
    eprintln!("schedtop requires Unix domain sockets");
    std::process::exit(1);
}
