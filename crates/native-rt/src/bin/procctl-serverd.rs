//! `procctl-serverd` — the standalone process-control server daemon.
//!
//! The deployable form of the paper's centralized user-level server:
//! listens on a Unix domain socket, answers REGISTER/POLL/BYE from
//! application processes, and partitions the machine's processors among
//! them (optionally subtracting system-wide runnable load sampled from
//! `/proc`, the modern `rpstat`).
//!
//! Robustness: SIGTERM/SIGINT trigger a clean shutdown that removes the
//! socket file; a stale socket left by a crashed predecessor is detected
//! (probe-connect) and reclaimed at startup, while a live server on the
//! same path refuses to be displaced. Registrations are leased
//! (`--lease-ttl-ms`): clients that stop polling lose their share.
//!
//! ```text
//! USAGE: procctl-serverd <socket-path> [--cpus N] [--lease-ttl-ms N]
//!                        [--account-system-load] [--weighted]
//!                        [--journal-cap N] [--engine threads|reactor]
//!                        [--snapshot PATH] [--snapshot-interval-ms N]
//! ```
//!
//! `--weighted` skews each application's processor share by its observed
//! throughput (the `jobs_run` counter from its latest REPORT); equal or
//! absent reports reduce to the paper's equal partition. CPU-set replies
//! (`POLL <pid> cpus`) are cut from the detected machine topology when
//! the partitioned processor count matches the machine, so adjacent
//! shares stay cache-adjacent. `--journal-cap` bounds the per-application
//! flight-recorder journal (EVENTS pushes plus the server's own decision
//! instants, drained via TRACE); 0 disables journaling. `--engine`
//! selects the server core (DESIGN.md §13): the single-threaded epoll
//! `reactor` (the default) or the thread-per-connection `threads`
//! baseline; the flag wins over the `PROCCTL_ENGINE` environment
//! override. Both speak the identical wire protocol.
//!
//! `--snapshot PATH` makes the server crash-recoverable (DESIGN.md §14):
//! registrations, leases, and the boot epoch are persisted to PATH
//! (atomic tmp+rename, every `--snapshot-interval-ms` and at clean
//! shutdown), and a restarted server restores them before accepting
//! traffic, so clients resume polling without a re-registration storm.
//! A corrupt or torn snapshot is rejected wholesale (cold start).

/// Minimal async-signal-safe shutdown latch: the handler only stores an
/// atomic flag; the main loop does the actual teardown. Raw `signal(2)`
/// FFI because the build environment is offline (no `libc` crate) — std
/// already links libc on every Unix target.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    // sched-atomic(relaxed): a bare flag polled by the accept loop; no
    // data is published under it, so the handler can store Relaxed
    // (also the safest thing to do in async-signal context).
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    /// Installs the SIGINT/SIGTERM handlers.
    pub fn install() {
        let h = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is async-signal-safe to install; the handler
        // only does a Relaxed atomic store, which is signal-safe. The
        // handler address outlives the process (it is a static fn).
        unsafe {
            signal(SIGINT, h);
            signal(SIGTERM, h);
        }
    }
}

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path: Option<String> = None;
    let mut cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut account = false;
    let mut weighted = false;
    let mut lease_ttl = native_rt::DEFAULT_LEASE_TTL;
    let mut journal_cap = native_rt::DEFAULT_JOURNAL_CAP;
    let mut engine: Option<native_rt::ServerEngine> = None;
    let mut snapshot: Option<std::path::PathBuf> = None;
    let mut snapshot_interval: Option<std::time::Duration> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--engine" => {
                i += 1;
                engine = Some(
                    args.get(i)
                        .and_then(|s| native_rt::ServerEngine::parse(s))
                        .unwrap_or_else(|| usage("--engine needs `threads` or `reactor`")),
                );
            }
            "--journal-cap" => {
                i += 1;
                journal_cap = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--journal-cap needs a non-negative integer"));
            }
            "--cpus" => {
                i += 1;
                cpus = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--cpus needs a positive integer"));
            }
            "--lease-ttl-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage("--lease-ttl-ms needs a positive integer"));
                lease_ttl = std::time::Duration::from_millis(ms);
            }
            "--snapshot" => {
                i += 1;
                snapshot = Some(
                    args.get(i)
                        .map(std::path::PathBuf::from)
                        .unwrap_or_else(|| usage("--snapshot needs a file path")),
                );
            }
            "--snapshot-interval-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage("--snapshot-interval-ms needs a positive integer"));
                snapshot_interval = Some(std::time::Duration::from_millis(ms));
            }
            "--account-system-load" => account = true,
            "--weighted" => weighted = true,
            "--help" | "-h" => usage(""),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| usage("missing socket path"));
    if let Err(e) = procctl::validate_cpus(u32::try_from(cpus).unwrap_or(u32::MAX)) {
        usage(&format!("--cpus: {e}"));
    }

    let mut cfg = native_rt::UdsServerConfig::new(&path, cpus);
    cfg.account_system_load = account;
    cfg.weighted = weighted;
    cfg.lease_ttl = lease_ttl;
    cfg.journal_cap = journal_cap;
    cfg.snapshot_path = snapshot.clone();
    if let Some(interval) = snapshot_interval {
        cfg.snapshot_interval = interval;
    }
    // Explicit flag > PROCCTL_ENGINE env (already folded into the
    // config default) > built-in reactor default.
    if let Some(engine) = engine {
        cfg.engine = engine;
    }
    let engine = cfg.engine;
    // Hand out CPU sets in the machine's topological order when we are
    // partitioning the real machine; a simulated size keeps the identity
    // order (the synthetic topology is identity-ordered anyway).
    let topo = native_rt::CpuTopology::shared();
    if topo.len() == cpus {
        cfg.cpu_order = Some(topo.linear_order());
    }
    let server = native_rt::UdsServer::start(cfg).unwrap_or_else(|e| {
        eprintln!("procctl-serverd: cannot bind {path}: {e}");
        std::process::exit(1);
    });
    sig::install();
    println!(
        "procctl-serverd: serving {} processors on {} (engine {}, epoch {}, lease {} ms, system-load accounting {}, {} shares, journal cap {}, snapshot {})",
        cpus,
        server.path().display(),
        engine.name(),
        server.epoch(),
        lease_ttl.as_millis(),
        if account { "on" } else { "off" },
        if weighted { "throughput-weighted" } else { "equal" },
        journal_cap,
        snapshot
            .as_deref()
            .map_or("off".to_string(), |p| p.display().to_string()),
    );
    // Serve until SIGTERM/SIGINT.
    while !sig::SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let stats = server.stats();
    drop(server); // joins the accept thread and removes the socket file
    println!("procctl-serverd: clean shutdown ({})", stats.render_line());
}

#[cfg(unix)]
fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("procctl-serverd: {err}");
    }
    eprintln!(
        "USAGE: procctl-serverd <socket-path> [--cpus N] [--lease-ttl-ms N] [--account-system-load] [--weighted] [--journal-cap N] [--engine threads|reactor] [--snapshot PATH] [--snapshot-interval-ms N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(not(unix))]
fn main() {
    eprintln!("procctl-serverd requires Unix domain sockets");
    std::process::exit(1);
}
