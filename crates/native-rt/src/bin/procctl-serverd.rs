//! `procctl-serverd` — the standalone process-control server daemon.
//!
//! The deployable form of the paper's centralized user-level server:
//! listens on a Unix domain socket, answers REGISTER/POLL/BYE from
//! application processes, and partitions the machine's processors among
//! them (optionally subtracting system-wide runnable load sampled from
//! `/proc`, the modern `rpstat`).
//!
//! ```text
//! USAGE: procctl-serverd <socket-path> [--cpus N] [--account-system-load]
//! ```

#[cfg(unix)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut path: Option<String> = None;
    let mut cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut account = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--cpus" => {
                i += 1;
                cpus = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--cpus needs a positive integer"));
            }
            "--account-system-load" => account = true,
            "--help" | "-h" => usage(""),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(other.to_string());
            }
            other => usage(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| usage("missing socket path"));
    if cpus == 0 {
        usage("--cpus must be at least 1");
    }

    let mut cfg = native_rt::UdsServerConfig::new(&path, cpus);
    cfg.account_system_load = account;
    let server = native_rt::UdsServer::start(cfg).unwrap_or_else(|e| {
        eprintln!("procctl-serverd: cannot bind {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "procctl-serverd: serving {} processors on {} (system-load accounting {})",
        cpus,
        server.path().display(),
        if account { "on" } else { "off" },
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

#[cfg(unix)]
fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("procctl-serverd: {err}");
    }
    eprintln!("USAGE: procctl-serverd <socket-path> [--cpus N] [--account-system-load]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

#[cfg(not(unix))]
fn main() {
    eprintln!("procctl-serverd requires Unix domain sockets");
    std::process::exit(1);
}
