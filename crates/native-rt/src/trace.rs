//! The flight recorder: always-on, low-overhead scheduling-event tracing.
//!
//! Each pool worker owns a lock-free SPSC ring of fixed-size events — job
//! start/end, steals (with tier), park/unpark, suspend/resume, CPU-set
//! changes, decision epochs — timestamped from one process-wide monotonic
//! origin so events from different threads (and different rings) merge
//! into a single ordered timeline. When a ring fills, the *oldest* event
//! is dropped (a flight recorder keeps the recent past, not the distant
//! one) and the drop is counted, so `pushed == drained + dropped + resident`
//! always holds.
//!
//! The ring is a Vyukov-style bounded queue specialised to one producer
//! (the owning worker) and any number of consumers (the drain side: the
//! supervisor poller, `TRACE` servicing, tests). Consumers claim entries
//! by CAS on `tail`; the producer reuses the same claim path to discard
//! the oldest entry when full, so the producer never blocks on a full
//! ring and never overwrites an entry mid-read. Payload words are plain
//! relaxed atomics — the per-slot sequence number carries all ordering —
//! which keeps the implementation free of `unsafe` and race-detector
//! clean.

use std::sync::Arc;
use std::time::Instant;

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::{Counter, Registry};

/// What a trace event records. Discriminants are stable wire values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum EventKind {
    /// A worker picked up a job; `arg` is its queue wait in microseconds
    /// (saturating).
    JobStart = 0,
    /// A worker ran out of work (end of a running burst); `arg` is the
    /// number of jobs the burst completed.
    JobEnd = 1,
    /// A successful steal; `arg` is the topology tier (0 = SMT sibling,
    /// 1 = LLC mate, 2 = same socket, 3 = remote).
    Steal = 2,
    /// The worker committed to an idle park (pushed its sleeper slot).
    Park = 3,
    /// The worker woke from an idle park.
    Unpark = 4,
    /// The worker suspended itself at a safe point (process control).
    Suspend = 5,
    /// The worker resumed from suspension; `arg` is the wake-to-run
    /// signal latency in microseconds (saturating), when known.
    Resume = 6,
    /// The worker observed a CPU-set change; `arg` is the new generation.
    CpuSet = 7,
    /// The worker observed a new decision epoch (target change); `arg`
    /// is the new target.
    Epoch = 8,
    /// The worker rebuilt its distance-ordered victim rings around a new
    /// home CPU; `arg` is the new home CPU id.
    Retier = 9,
    /// A control-server partition decision (server journals only); `arg`
    /// is the target handed to the application.
    Decision = 10,
    /// The watchdog classified a worker as stalled: heartbeat state
    /// "running" but no progress for longer than the configured
    /// threshold. `worker` is the *stalled* worker (the event itself is
    /// emitted from the watchdog's own ring); `arg` is the observed
    /// staleness in milliseconds (saturating).
    Stall = 11,
    /// A previously-stalled worker made progress again; `arg` is the
    /// full stall episode duration in milliseconds (saturating).
    Recovered = 12,
    /// The worker was culled by a concurrency-restricting gate (parked
    /// on the passive list instead of contending); `arg` is the time it
    /// spent culled in microseconds (saturating), recorded on wake.
    CrCull = 13,
    /// The worker's gate exit promoted a culled thread back into the
    /// active set; `arg` is the gate's current active-set bound.
    CrPromote = 14,
}

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; 15] = [
        EventKind::JobStart,
        EventKind::JobEnd,
        EventKind::Steal,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::Suspend,
        EventKind::Resume,
        EventKind::CpuSet,
        EventKind::Epoch,
        EventKind::Retier,
        EventKind::Decision,
        EventKind::Stall,
        EventKind::Recovered,
        EventKind::CrCull,
        EventKind::CrPromote,
    ];

    /// The two-letter wire code (`js`, `je`, `st`, …).
    pub fn code(self) -> &'static str {
        match self {
            EventKind::JobStart => "js",
            EventKind::JobEnd => "je",
            EventKind::Steal => "st",
            EventKind::Park => "pk",
            EventKind::Unpark => "up",
            EventKind::Suspend => "su",
            EventKind::Resume => "re",
            EventKind::CpuSet => "cs",
            EventKind::Epoch => "ep",
            EventKind::Retier => "rt",
            EventKind::Decision => "dc",
            EventKind::Stall => "sl",
            EventKind::Recovered => "rc",
            EventKind::CrCull => "cc",
            EventKind::CrPromote => "cp",
        }
    }

    /// Parses a wire code back to a kind.
    pub fn from_code(s: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.code() == s)
    }

    fn from_u8(b: u8) -> Option<EventKind> {
        EventKind::ALL.get(b as usize).copied()
    }
}

/// One fixed-size scheduling event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process-wide clock origin ([`now_ns`]).
    pub ts_ns: u64,
    /// The worker index that emitted the event (0 on server journals).
    pub worker: u16,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (tier, target, generation, latency µs, …).
    pub arg: u32,
}

impl TraceEvent {
    /// Renders the compact wire form `ts:kind:worker:arg`.
    pub fn to_wire(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.ts_ns,
            self.kind.code(),
            self.worker,
            self.arg
        )
    }

    /// Parses the wire form produced by [`TraceEvent::to_wire`].
    pub fn parse(s: &str) -> Option<TraceEvent> {
        let mut it = s.split(':');
        let ts_ns = it.next()?.parse().ok()?;
        let kind = EventKind::from_code(it.next()?)?;
        let worker = it.next()?.parse().ok()?;
        let arg = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        Some(TraceEvent {
            ts_ns,
            worker,
            kind,
            arg,
        })
    }

    fn pack_meta(&self) -> u64 {
        ((self.kind as u64) << 48) | ((self.worker as u64) << 32) | self.arg as u64
    }

    fn unpack(ts_ns: u64, meta: u64) -> TraceEvent {
        let kind = EventKind::from_u8((meta >> 48) as u8).unwrap_or(EventKind::JobStart);
        TraceEvent {
            ts_ns,
            worker: (meta >> 32) as u16,
            kind,
            arg: meta as u32,
        }
    }
}

/// The process-wide trace clock origin. First call pins it; every
/// timestamp in every ring is measured from this one `Instant`, so merged
/// multi-ring (and, after per-process normalisation, multi-process)
/// timelines never run backwards across threads.
pub fn clock_origin() -> Instant {
    static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds since [`clock_origin`].
pub fn now_ns() -> u64 {
    clock_origin().elapsed().as_nanos() as u64
}

/// Nanoseconds from [`clock_origin`] to an already-taken `Instant` —
/// lets hot paths reuse a clock read they needed anyway. Saturates to 0
/// for instants taken before the origin was pinned.
pub fn ns_since_origin(at: Instant) -> u64 {
    at.duration_since(clock_origin()).as_nanos() as u64
}

struct Slot {
    /// Slot state for the Vyukov protocol. For the entry at position
    /// `pos` (slot `pos & mask`): `seq == pos` means free for the
    /// producer, `seq == pos + 1` means published, `seq == pos + cap`
    /// means consumed and free for the next lap.
    // sched-atomic(verified): Vyukov bounded-queue protocol — the
    // producer's Release publish pairs with consumers' Acquire loads,
    // and consumers' Release of `pos + cap` pairs with the producer's
    // Acquire re-check; modelled in tests/loom_trace.rs.
    seq: AtomicU64,
    /// Event timestamp. Payload ordering is carried entirely by `seq`.
    // sched-atomic(relaxed): payload word; the slot's `seq` carries the
    // publish/consume edges.
    ts: AtomicU64,
    /// Packed kind/worker/arg. Same ordering story as `ts`.
    // sched-atomic(relaxed): payload word; the slot's `seq` carries the
    // publish/consume edges.
    meta: AtomicU64,
}

/// A bounded single-producer ring of [`TraceEvent`]s with drop-oldest
/// overflow. `push` may only be called from one thread at a time (the
/// owning worker); `pop` is safe from any number of threads.
pub struct SpscRing {
    slots: Box<[Slot]>,
    cap: u64,
    mask: u64,
    /// Next position the producer will write. Written only by the
    /// producer; read by consumers for an emptiness hint.
    // sched-atomic(verified): producer-private publish cursor — the
    // store follows the slot's Release `seq` publish, and consumers only
    // use it as a hint (slot `seq` re-validates); see tests/loom_trace.rs.
    head: AtomicU64,
    /// Next position to consume. CAS-claimed by consumers, and by the
    /// producer when it discards the oldest entry on overflow.
    // sched-atomic(verified): claim cursor — the winning CAS is the only
    // entry ticket, and the slot `seq` Release/Acquire pair orders the
    // payload hand-off around it; see tests/loom_trace.rs.
    tail: AtomicU64,
    /// Events discarded by drop-oldest overflow.
    // sched-atomic(relaxed): statistic.
    dropped: AtomicU64,
    /// Events ever pushed (producer-side, for conservation checks).
    // sched-atomic(relaxed): statistic.
    pushed: AtomicU64,
}

impl SpscRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> SpscRing {
        let cap = capacity.max(2).next_power_of_two() as u64;
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                ts: AtomicU64::new(0),
                meta: AtomicU64::new(0),
            })
            .collect();
        SpscRing {
            slots,
            cap,
            mask: cap - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap as usize
    }

    /// Appends an event, discarding the oldest resident entry if the
    /// ring is full. Returns how many events this push discarded.
    ///
    /// Single-producer: must not be called concurrently with itself.
    pub fn push(&self, ev: TraceEvent) -> u64 {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let mut discarded = 0;
        loop {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                break; // free for this lap
            }
            // The slot still holds the entry from `pos - cap`: the ring
            // is full. Claim the oldest entry exactly like a consumer
            // would and discard it; if a consumer already claimed it and
            // is mid-copy, spin until it releases the slot.
            let tail = self.tail.load(Ordering::Relaxed);
            if tail + self.cap > pos {
                std::hint::spin_loop();
                continue;
            }
            if self
                .tail
                .compare_exchange(tail, tail + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let old = &self.slots[(tail & self.mask) as usize];
                old.seq.store(tail + self.cap, Ordering::Release);
                discarded += 1;
            }
        }
        slot.ts.store(ev.ts_ns, Ordering::Relaxed);
        slot.meta.store(ev.pack_meta(), Ordering::Relaxed);
        slot.seq.store(pos + 1, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
        self.pushed.fetch_add(1, Ordering::Relaxed);
        if discarded > 0 {
            self.dropped.fetch_add(discarded, Ordering::Relaxed);
        }
        discarded
    }

    /// Removes and returns the oldest resident event. Safe to call from
    /// any thread, concurrently with the producer and other consumers.
    pub fn pop(&self) -> Option<TraceEvent> {
        loop {
            let pos = self.tail.load(Ordering::Acquire);
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq < pos + 1 {
                return None; // not yet published: ring empty at our cursor
            }
            if seq != pos + 1 {
                continue; // our tail read was stale; reload
            }
            if self
                .tail
                .compare_exchange(pos, pos + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                let ts = slot.ts.load(Ordering::Relaxed);
                let meta = slot.meta.load(Ordering::Relaxed);
                slot.seq.store(pos + self.cap, Ordering::Release);
                return Some(TraceEvent::unpack(ts, meta));
            }
        }
    }

    /// Events currently resident (approximate under concurrency).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.saturating_sub(tail) as usize
    }

    /// True when no events are resident (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }
}

/// The per-pool flight recorder: one [`SpscRing`] per worker plus the
/// registry counters that make drops observable. Capacity 0 disables
/// recording entirely (the A/B baseline in EXPERIMENTS.md).
pub struct FlightRecorder {
    rings: Box<[SpscRing]>,
    events: Counter,
    dropped: Counter,
}

impl FlightRecorder {
    /// A recorder with `nworkers` rings of `capacity` events each.
    /// Registers the `trace_events` and `trace_dropped` counters; pins
    /// the process-wide clock origin as a side effect so worker
    /// timestamps are measured from before the pool ran anything.
    pub fn new(nworkers: usize, capacity: usize, registry: &Registry) -> Arc<FlightRecorder> {
        let _ = clock_origin();
        let rings = if capacity == 0 {
            Vec::new()
        } else {
            (0..nworkers).map(|_| SpscRing::new(capacity)).collect()
        };
        Arc::new(FlightRecorder {
            rings: rings.into(),
            events: registry.counter("trace_events"),
            dropped: registry.counter("trace_dropped"),
        })
    }

    /// True when events are being recorded (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        !self.rings.is_empty()
    }

    /// Records an event on `worker`'s ring, timestamped now. No-op when
    /// disabled or `worker` is out of range.
    pub fn record(&self, worker: usize, kind: EventKind, arg: u32) {
        if self.rings.is_empty() {
            return; // skip the clock read when disabled
        }
        self.record_at(worker, now_ns(), kind, arg);
    }

    /// Records an event with a caller-supplied timestamp (hot paths reuse
    /// a clock read they already made via [`ns_since_origin`]).
    pub fn record_at(&self, worker: usize, ts_ns: u64, kind: EventKind, arg: u32) {
        self.record_from(worker, worker as u16, ts_ns, kind, arg);
    }

    /// Records an event into ring `ring` on behalf of `worker`, with a
    /// caller-supplied timestamp. Rings are single-producer, so a monitor
    /// thread reporting about another worker (e.g. the pool watchdog
    /// emitting [`EventKind::Stall`] for a wedged worker) must push into
    /// its *own* ring while stamping the subject worker's index into the
    /// event. No-op when disabled or `ring` is out of range.
    pub fn record_from(&self, ring: usize, worker: u16, ts_ns: u64, kind: EventKind, arg: u32) {
        let Some(ring) = self.rings.get(ring) else {
            return;
        };
        let discarded = ring.push(TraceEvent {
            ts_ns,
            worker,
            kind,
            arg,
        });
        self.events.incr();
        if discarded > 0 {
            self.dropped.add(discarded);
        }
    }

    /// Drains up to `max` events across all rings, merged by timestamp.
    pub fn drain(&self, max: usize) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        // Round-robin the rings so one chatty worker cannot starve the
        // rest out of a bounded drain.
        let mut exhausted = vec![false; self.rings.len()];
        while out.len() < max && exhausted.iter().any(|e| !e) {
            for (i, ring) in self.rings.iter().enumerate() {
                if exhausted[i] || out.len() >= max {
                    continue;
                }
                match ring.pop() {
                    Some(ev) => out.push(ev),
                    None => exhausted[i] = true,
                }
            }
        }
        out.sort_by_key(|e| (e.ts_ns, e.worker));
        out
    }

    /// Events currently resident across all rings (approximate).
    pub fn resident(&self) -> usize {
        self.rings.iter().map(SpscRing::len).sum()
    }

    /// Total events discarded by overflow across all rings.
    pub fn total_dropped(&self) -> u64 {
        self.rings.iter().map(SpscRing::dropped).sum()
    }

    /// Total events ever pushed across all rings.
    pub fn total_pushed(&self) -> u64 {
        self.rings.iter().map(SpscRing::pushed).sum()
    }
}

/// Renders a batch of events as the comma-separated wire payload used by
/// the `EVENTS` and `TRACE` UDS verbs.
pub fn render_events(events: &[TraceEvent]) -> String {
    let parts: Vec<String> = events.iter().map(TraceEvent::to_wire).collect();
    parts.join(",")
}

/// Parses a comma-separated wire payload back into events. Returns
/// `None` if any element is malformed; an empty payload is an empty
/// batch.
pub fn parse_events(payload: &str) -> Option<Vec<TraceEvent>> {
    if payload.is_empty() {
        return Some(Vec::new());
    }
    payload.split(',').map(TraceEvent::parse).collect()
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind, arg: u32) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            worker: 0,
            kind,
            arg,
        }
    }

    #[test]
    fn wire_roundtrip_every_kind() {
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            let e = TraceEvent {
                ts_ns: 1_000 + i as u64,
                worker: i as u16,
                kind,
                arg: u32::MAX - i as u32,
            };
            assert_eq!(TraceEvent::parse(&e.to_wire()), Some(e));
        }
    }

    #[test]
    fn wire_rejects_malformed() {
        for bad in [
            "",
            ":",
            "1:js:0",
            "1:zz:0:0",
            "x:js:0:0",
            "1:js:x:0",
            "1:js:0:x",
            "1:js:0:0:0",
        ] {
            assert_eq!(TraceEvent::parse(bad), None, "{bad:?} parsed");
        }
    }

    #[test]
    fn payload_roundtrip_and_rejection() {
        let batch = vec![ev(1, EventKind::JobStart, 9), ev(2, EventKind::Steal, 1)];
        let wire = render_events(&batch);
        assert_eq!(parse_events(&wire), Some(batch));
        assert_eq!(parse_events(""), Some(Vec::new()));
        assert_eq!(parse_events("1:js:0:0,bogus"), None);
    }

    #[test]
    fn ring_fifo_in_order() {
        let ring = SpscRing::new(8);
        for i in 0..5 {
            assert_eq!(ring.push(ev(i, EventKind::JobStart, i as u32)), 0);
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop().unwrap().ts_ns, i);
        }
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = SpscRing::new(4);
        let mut discarded = 0;
        for i in 0..10 {
            discarded += ring.push(ev(i, EventKind::JobStart, 0));
        }
        assert_eq!(discarded, 6);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.pushed(), 10);
        // The survivors are the newest `cap` events, still in order.
        let got: Vec<u64> = std::iter::from_fn(|| ring.pop()).map(|e| e.ts_ns).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        // Conservation: everything pushed was drained or dropped.
        assert_eq!(ring.pushed(), got.len() as u64 + ring.dropped());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpscRing::new(0).capacity(), 2);
        assert_eq!(SpscRing::new(3).capacity(), 4);
        assert_eq!(SpscRing::new(64).capacity(), 64);
    }

    #[test]
    fn concurrent_drain_conserves_events() {
        use std::sync::atomic::{AtomicBool, AtomicU64 as StdU64, Ordering as StdOrd};
        let ring = Arc::new(SpscRing::new(32));
        let popped = Arc::new(StdU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let producer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    ring.push(ev(i, EventKind::JobStart, 0));
                }
                done.store(true, StdOrd::Release);
            })
        };
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let popped = Arc::clone(&popped);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut local = 0;
                    loop {
                        match ring.pop() {
                            Some(_) => local += 1,
                            None => {
                                if done.load(StdOrd::Acquire) {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    popped.fetch_add(local, StdOrd::Relaxed);
                })
            })
            .collect();
        producer.join().unwrap();
        for c in consumers {
            c.join().unwrap();
        }
        let mut rest = 0;
        while ring.pop().is_some() {
            rest += 1;
        }
        assert_eq!(
            popped.load(StdOrd::Relaxed) + rest + ring.dropped(),
            10_000,
            "events lost or duplicated"
        );
    }

    #[test]
    fn recorder_drains_merged_by_timestamp() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(3, 16, &reg);
        assert!(rec.is_enabled());
        rec.record_at(2, 30, EventKind::Steal, 1);
        rec.record_at(0, 10, EventKind::JobStart, 0);
        rec.record_at(1, 20, EventKind::Park, 0);
        let drained = rec.drain(16);
        let ts: Vec<u64> = drained.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(drained[2].worker, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("trace_events"), Some(&3));
        assert_eq!(snap.counters.get("trace_dropped"), Some(&0));
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(4, 0, &reg);
        assert!(!rec.is_enabled());
        rec.record(0, EventKind::JobStart, 0);
        assert!(rec.drain(16).is_empty());
        assert_eq!(rec.resident(), 0);
    }

    #[test]
    fn recorder_counter_conservation_under_overflow() {
        let reg = Registry::new();
        let rec = FlightRecorder::new(1, 4, &reg);
        for i in 0..100 {
            rec.record_at(0, i, EventKind::JobEnd, 0);
        }
        let drained = rec.drain(usize::MAX).len() as u64;
        let snap = reg.snapshot();
        let pushed = snap.counters["trace_events"];
        let dropped = snap.counters["trace_dropped"];
        assert_eq!(pushed, 100);
        assert_eq!(pushed, drained + dropped, "conservation violated");
    }

    #[test]
    fn timestamps_share_one_origin_across_threads() {
        let t0 = now_ns();
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(now_ns)).collect();
        for h in handles {
            let t = h.join().unwrap();
            assert!(t >= t0, "cross-thread timestamp ran backwards");
        }
        let then = Instant::now();
        assert!(ns_since_origin(then) >= t0);
    }
}
