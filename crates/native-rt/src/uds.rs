//! Cross-process control over Unix domain sockets.
//!
//! The closest native analog of the paper's deployment: the server is a
//! standalone daemon ("a user-level centralized server"), applications are
//! *separate processes* that register over a socket, poll periodically,
//! and say goodbye when done — the same REGISTER/POLL/BYE protocol as the
//! simulated server, as newline-terminated text:
//!
//! ```text
//! client → server:  REGISTER <pid> <nworkers>
//! server → client:  OK <epoch>
//! client → server:  POLL <pid>
//! server → client:  TARGET <n> <epoch>
//! client → server:  BYE <pid>
//! server → client:  OK <epoch>
//! ```
//!
//! **CPU-set extension** (topology-aware handout). A client that wants to
//! know *which* processors it was assigned — not just how many — appends
//! `cpus` to its poll:
//!
//! ```text
//! client → server:  POLL <pid> cpus
//! server → client:  TARGET <n> <epoch> cpus=<cpulist>
//! ```
//!
//! where `<cpulist>` is kernel cpulist syntax (`0-3,8`), a contiguous
//! slice of the server's topology-linearized CPU order
//! ([`procctl::assign_cpu_sets`]). The extension is client-opt-in per
//! request, which is what makes it wire-compatible in both directions: an
//! *old client* never sends the suffix and sees unchanged `TARGET <n>
//! <epoch>` replies; a *new client* against an *old server* gets `ERR
//! malformed` (the old parser's total fallback), which
//! [`UdsClient::poll_cpus_reply`] maps to [`CpusPollReply::Unsupported`]
//! — the cue to fall back to count-only polls.
//!
//! Fault tolerance (see DESIGN.md §"Failure modes & recovery"):
//!
//! - **Epochs.** The server stamps every reply with its boot epoch. A
//!   client that observes a different epoch than it registered under knows
//!   the server restarted (and forgot it) and must re-register.
//! - **Leases.** Each registration carries a TTL refreshed by POLL and
//!   REPORT. A wedged-but-alive client — which the `/proc` liveness prune
//!   cannot catch, and which is Linux-only anyway — loses its processor
//!   share after the lease expires. A later POLL from an expired (or
//!   never-registered, or forgotten-by-restart) pid gets `ERR
//!   unregistered`, the cue to re-register.
//! - **No silent drops.** A malformed request is answered with
//!   `ERR <reason>` and counted, never ignored: a well-behaved client
//!   must not block forever on `read_line` because its frame was garbled
//!   in flight.
//! - **Stale sockets.** On startup the server probes an existing socket
//!   file: if a live server answers, startup fails with `AddrInUse`;
//!   if nothing is listening, the stale file (a previous crash) is
//!   reclaimed.
//! - **Client timeouts.** [`UdsClient::register`] arms read *and* write
//!   timeouts on the stream, so even the unsupervised client can never
//!   hang indefinitely on a wedged server. For automatic reconnect,
//!   backoff, and degraded-mode fallback, wrap it in
//!   [`crate::SupervisedClient`].
//!
//! The server additionally prunes registered applications whose processes
//! have died without a BYE (checked against `/proc`), and can optionally
//! subtract system-wide uncontrollable load sampled from `/proc` — the
//! real `rpstat` sweep.
//!
//! A `STATS` request returns the server's own statistics registry as one
//! sorted `key=value` line:
//!
//! ```text
//! client → server:  STATS
//! server → client:  STATS byes=0 polls=12 registers=2 apps=2
//! ```
//!
//! Applications may additionally push their pool's statistics line to the
//! server (the reporting poller does this on every poll), and anyone can
//! read back the latest report for a given pid — cross-process visibility
//! into the work-stealing counters (`steals`, `local_hits`, …) without
//! attaching to the application:
//!
//! ```text
//! client → server:  REPORT <pid> jobs_run=100 steals=7 ...
//! server → client:  OK <epoch>
//! client → server:  STATS <pid>
//! server → client:  STATS jobs_run=100 steals=7 ...
//! ```
//!
//! **Flight-recorder extension** (observability, same compatibility
//! story as `cpus`). Applications push batches of scheduling events
//! drained from their [`crate::FlightRecorder`] rings; the server keeps
//! a bounded per-pid journal — interleaving its own partition-decision
//! instants — that anyone (e.g. `schedtop`, the Perfetto merge) can
//! drain back out, correlated across restarts by the boot epoch:
//!
//! ```text
//! client → server:  EVENTS <pid> <ts:kind:worker:arg,...>
//! server → client:  OK <epoch>
//! client → server:  TRACE <pid> [max]
//! server → client:  TRACE <epoch> <n> <ts:kind:worker:arg,...>
//! ```
//!
//! A monitor refreshes the whole fleet in one round-trip with
//! `STATS ALL`, answered as `STATS ALL pid=<pid> target=<t>
//! nworkers=<n> <latest report>|…`. All three verbs degrade against
//! pre-extension servers: the old parser answers `ERR malformed`, which
//! the client surfaces as `Unsupported` ([`EventsReply`],
//! [`TraceReply`], [`StatsAllReply`]) instead of an error.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use procctl::{partition, validate_cpus, validate_processes, AppDemand, RecomputeGate};

use crate::controller::TargetSlot;
use crate::proc_scan;
use crate::stats::{Counter, Gauge, Registry, Snapshot};
use crate::trace::{self, EventKind, TraceEvent};

/// Default read/write timeout armed on every client stream: the longest a
/// client call can block on a wedged (alive but unresponsive) server.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Default registration lease: a client that neither POLLs nor REPORTs
/// for this long is deregistered and its processor share reclaimed.
pub const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(30);

/// Default per-application journal capacity: how many flight-recorder
/// events (app-pushed via `EVENTS`, plus the server's own decision
/// instants) the server retains per pid before dropping the oldest.
pub const DEFAULT_JOURNAL_CAP: usize = 4096;

/// Default number of journal events a `TRACE <pid>` without an explicit
/// `max` drains in one reply.
pub const DEFAULT_TRACE_MAX: usize = 256;

/// How often the `/proc` liveness sweep may run. Scanning `/proc` is one
/// `stat(2)` per registered application; doing it on *every* poll made
/// the dead-process check O(apps) syscalls per frame. Leases remain the
/// authoritative reclaim mechanism — the sweep only accelerates cleanup
/// of processes that died without a BYE.
const PROC_SWEEP_PERIOD: Duration = Duration::from_millis(500);

/// Which server core answers the wire. Both speak the byte-identical
/// text protocol; they differ only in how connections are scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ServerEngine {
    /// One OS thread per connection plus a sleepy accept loop — the
    /// PR 3 control plane, kept as a selectable baseline for
    /// `serverd_bench` A/Bs.
    Threads,
    /// A single-threaded non-blocking reactor (epoll on Linux, `poll(2)`
    /// elsewhere) owning every connection's state machine in one thread:
    /// no per-connection threads, no `Mutex<ServerState>`, pipelined
    /// frames parsed from buffered reads, replies batched per wakeup,
    /// lease expiry driven by a deadline-ordered timer queue. See
    /// [`crate::reactor`] and DESIGN.md §13.
    #[default]
    Reactor,
}

impl ServerEngine {
    /// Parses an engine name (`threads` | `reactor`, case-insensitive).
    pub fn parse(s: &str) -> Option<ServerEngine> {
        match s.to_ascii_lowercase().as_str() {
            "threads" => Some(ServerEngine::Threads),
            "reactor" => Some(ServerEngine::Reactor),
            _ => None,
        }
    }

    /// The engine selected by the `PROCCTL_ENGINE` environment variable,
    /// when set and valid. Lets the whole test suite (chaos lane
    /// included) run unmodified against either engine.
    pub fn from_env() -> Option<ServerEngine> {
        std::env::var("PROCCTL_ENGINE")
            .ok()
            .as_deref()
            .and_then(ServerEngine::parse)
    }

    /// The wire/CLI name (`threads` | `reactor`).
    pub fn name(self) -> &'static str {
        match self {
            ServerEngine::Threads => "threads",
            ServerEngine::Reactor => "reactor",
        }
    }
}

/// Server tuning.
#[derive(Clone, Debug)]
pub struct UdsServerConfig {
    /// Socket path.
    pub path: PathBuf,
    /// Processors to partition.
    pub cpus: usize,
    /// Subtract system-wide runnable threads (full `/proc` sweep) from the
    /// partitionable processors. Off by default: on a busy development
    /// host this makes targets jittery, and tests need determinism.
    pub account_system_load: bool,
    /// How long a system-load sample stays fresh.
    pub sample_ttl: Duration,
    /// How long a registration stays valid without a POLL/REPORT refresh.
    pub lease_ttl: Duration,
    /// Drop registrations whose process no longer exists (`/proc` check;
    /// Linux-only, a no-op elsewhere). Leases catch what this cannot:
    /// processes that are alive but wedged.
    pub prune_dead: bool,
    /// CPU ids in topological order (SMT siblings adjacent, then LLC
    /// groups, then sockets) that CPU-set replies are cut from. `None`
    /// uses the identity order `0..cpus` — correct when `cpus` matches
    /// the machine; pass [`crate::topology::CpuTopology::linear_order`]
    /// of the detected topology to hand out cache-friendly slices.
    pub cpu_order: Option<Vec<u32>>,
    /// Weight each application's partition share by its observed
    /// throughput (the `jobs_run` counter from its latest `REPORT`),
    /// instead of splitting equally. Applications that have not reported
    /// — or report equal counters — reduce to the equal partition.
    pub weighted: bool,
    /// Per-application event-journal capacity: `EVENTS` pushes and the
    /// server's own decision instants beyond this bound drop the oldest
    /// entry (counted as `journal_drops`). `0` disables journaling —
    /// `TRACE` then always drains empty.
    pub journal_cap: usize,
    /// Which server core to run (see [`ServerEngine`]). Defaults to the
    /// reactor; `PROCCTL_ENGINE=threads|reactor` overrides the default
    /// so the full test suite can be pointed at either engine without
    /// modification.
    pub engine: ServerEngine,
    /// Where to persist the crash-recovery snapshot (see
    /// [`crate::snapshot`]): registrations, remaining lease time,
    /// latest reports, and the boot epoch, written atomically
    /// (tmp+rename) every [`UdsServerConfig::snapshot_interval`] and at
    /// shutdown, restored at the next boot. `None` (the default)
    /// disables snapshotting entirely.
    pub snapshot_path: Option<PathBuf>,
    /// How often the periodic snapshot is written (both engines; the
    /// reactor piggy-backs on its timer wakeups, so effective
    /// granularity is bounded below by its wait cap). Ignored without a
    /// [`UdsServerConfig::snapshot_path`].
    pub snapshot_interval: Duration,
}

impl UdsServerConfig {
    /// Defaults: no system-load accounting, 1 s sample TTL, 30 s lease,
    /// dead-process pruning on, identity CPU order, unweighted shares,
    /// [`DEFAULT_JOURNAL_CAP`] events of journal per application.
    pub fn new(path: impl Into<PathBuf>, cpus: usize) -> Self {
        UdsServerConfig {
            path: path.into(),
            cpus,
            account_system_load: false,
            sample_ttl: Duration::from_secs(1),
            lease_ttl: DEFAULT_LEASE_TTL,
            prune_dead: true,
            cpu_order: None,
            weighted: false,
            journal_cap: DEFAULT_JOURNAL_CAP,
            engine: ServerEngine::from_env().unwrap_or_default(),
            snapshot_path: None,
            snapshot_interval: Duration::from_secs(1),
        }
    }

    /// Checks the configuration for values that would corrupt every
    /// partition decision downstream (a 0 or absurd `cpus`).
    pub fn validate(&self) -> io::Result<()> {
        validate_cpus(u32::try_from(self.cpus).unwrap_or(u32::MAX))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))
    }
}

#[derive(Clone, Copy, Debug)]
struct AppReg {
    pid: u32,
    nworkers: u32,
    /// Last REGISTER/POLL/REPORT from this pid (the lease refresh).
    last_seen: Instant,
    /// Last target journaled as a decision instant for this pid —
    /// dedups decision entries so the journal records target *changes*,
    /// not every poll.
    last_target: Option<u32>,
}

impl AppReg {
    fn new(pid: u32, nworkers: u32, now: Instant) -> AppReg {
        AppReg {
            pid,
            nworkers,
            last_seen: now,
            last_target: None,
        }
    }
}

/// One application's bounded event journal: flight-recorder events the
/// app pushed via `EVENTS`, interleaved with the server's own decision
/// instants, oldest first.
#[derive(Default)]
struct Journal {
    events: std::collections::VecDeque<TraceEvent>,
}

/// A multiply-mix hasher for the pid→slot map. Pids are small
/// well-distributed integers, and SipHash (the `HashMap` default,
/// keyed for DoS resistance) costs more than the rest of a small-map
/// lookup on the poll path. The key space here is not attacker-
/// amplifiable: a pid occupies exactly one slot however often it
/// re-registers.
#[derive(Default)]
struct PidHasher(u64);

impl Hasher for PidHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        // splitmix64-style finalization: enough diffusion that dense or
        // stride-patterned pids spread across buckets.
        let mut z = u64::from(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.0 = z ^ (z >> 27);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type PidIndex = HashMap<u32, usize, BuildHasherDefault<PidHasher>>;

/// Cached handles for every statistic the frame path bumps.
/// [`Registry::counter`] takes the registry mutex and allocates the
/// name on every call — invisible at human polling rates, a large slice
/// of the whole frame budget at reactor rates — so the handles are
/// resolved once at state construction and each bump is one relaxed
/// atomic add from then on. Field names are the registry names.
struct HotCounters {
    registers: Counter,
    polls: Counter,
    byes: Counter,
    reports: Counter,
    malformed: Counter,
    lease_expiries: Counter,
    events_pushes: Counter,
    traces: Counter,
    stats_queries: Counter,
    journal_drops: Counter,
    recompute_coalesced: Counter,
    timer_fires: Counter,
    snapshot_writes: Counter,
    snapshot_restores: Counter,
    snapshot_rejected: Counter,
    apps: Gauge,
}

impl HotCounters {
    fn new(r: &Registry) -> HotCounters {
        HotCounters {
            registers: r.counter("registers"),
            polls: r.counter("polls"),
            byes: r.counter("byes"),
            reports: r.counter("reports"),
            malformed: r.counter("malformed"),
            lease_expiries: r.counter("lease_expiries"),
            events_pushes: r.counter("events_pushes"),
            traces: r.counter("traces"),
            stats_queries: r.counter("stats_queries"),
            journal_drops: r.counter("journal_drops"),
            recompute_coalesced: r.counter("recompute_coalesced"),
            timer_fires: r.counter("timer_fires"),
            snapshot_writes: r.counter("snapshot_writes"),
            snapshot_restores: r.counter("snapshot_restores"),
            snapshot_rejected: r.counter("snapshot_rejected"),
            apps: r.gauge("apps"),
        }
    }
}

pub(crate) struct ServerState {
    apps: Vec<AppReg>,
    /// pid → index into `apps` (and into the target/CPU-set caches,
    /// which share registration order): the per-frame lookups are O(1)
    /// hash probes instead of O(apps) scans.
    index: PidIndex,
    /// Pre-resolved statistic handles (see [`HotCounters`]).
    hot: HotCounters,
    /// Rendered ` <epoch>\n` suffix shared by every OK/TARGET reply,
    /// re-rendered only when the epoch changes (i.e. once).
    epoch_suffix: (u64, String),
    last_sample: Option<(Instant, u32)>,
    /// Latest `REPORT` line per pid (cleared on BYE and lease expiry).
    reports: std::collections::BTreeMap<u32, String>,
    /// Bounded per-pid event journal (cleared on BYE and lease expiry).
    journals: std::collections::BTreeMap<u32, Journal>,
    /// Deadline-ordered lease timers: `(deadline, pid)`, earliest first.
    /// One entry is pushed at registration; when it pops, the lease is
    /// either expired (`last_seen + ttl` has passed) or the timer
    /// re-arms itself at the refreshed deadline — so the heap stays
    /// O(apps) no matter how fast clients poll, and lease expiry costs
    /// O(log apps) amortized instead of an O(apps) scan per frame.
    lease_timers: BinaryHeap<Reverse<(Instant, u32)>>,
    /// Last `/proc` liveness sweep (throttled to [`PROC_SWEEP_PERIOD`]).
    last_proc_sweep: Option<Instant>,
    /// Coalesces partition recomputation: REGISTER/BYE/expiry (and
    /// weighted REPORTs) mark the cache dirty; the next read recomputes
    /// once for the whole burst.
    targets_gate: RecomputeGate,
    /// Cached per-app targets, registration order (valid unless dirty).
    targets_cache: Vec<u32>,
    /// Cached per-app CPU sets matching `targets_cache`.
    cpu_sets_cache: Vec<Vec<u32>>,
}

impl ServerState {
    pub(crate) fn new(registry: &Registry) -> ServerState {
        ServerState {
            apps: Vec::new(),
            index: PidIndex::default(),
            hot: HotCounters::new(registry),
            epoch_suffix: (0, String::new()),
            last_sample: None,
            reports: std::collections::BTreeMap::new(),
            journals: std::collections::BTreeMap::new(),
            lease_timers: BinaryHeap::new(),
            last_proc_sweep: None,
            targets_gate: RecomputeGate::new(),
            targets_cache: Vec::new(),
            cpu_sets_cache: Vec::new(),
        }
    }

    /// The rendered ` <epoch>\n` tail shared by OK and TARGET replies.
    fn epoch_suffix(&mut self, epoch: u64) -> &str {
        if self.epoch_suffix.0 != epoch || self.epoch_suffix.1.is_empty() {
            self.epoch_suffix = (epoch, format!(" {epoch}\n"));
        }
        &self.epoch_suffix.1
    }

    /// Marks the cached partition stale, counting coalesced bursts.
    fn invalidate_targets(&mut self) {
        if self.targets_gate.invalidate() {
            self.hot.recompute_coalesced.incr();
        }
    }

    /// Registers `pid` (or refreshes an existing registration's lease
    /// and worker count), arming a lease timer for new registrations.
    fn admit(&mut self, pid: u32, nworkers: u32, cfg: &UdsServerConfig, now: Instant) {
        match self.index.get(&pid) {
            Some(&idx) => {
                // Re-registration refreshes the lease and adopts the new
                // worker count; its existing timer re-arms on pop.
                let a = &mut self.apps[idx];
                a.nworkers = nworkers;
                a.last_seen = now;
            }
            None => {
                self.index.insert(pid, self.apps.len());
                self.apps.push(AppReg::new(pid, nworkers, now));
                self.lease_timers.push(Reverse((now + cfg.lease_ttl, pid)));
            }
        }
        self.invalidate_targets();
        self.hot.apps.set(self.apps.len() as i64);
    }

    /// Removes `pid`'s registration and associated per-app state.
    fn depart(&mut self, pid: u32) {
        if let Some(idx) = self.index.remove(&pid) {
            self.apps.remove(idx);
            // Registration order is the partition order, so later slots
            // shift down by one and their index entries follow.
            for (i, a) in self.apps.iter().enumerate().skip(idx) {
                self.index.insert(a.pid, i);
            }
            self.invalidate_targets();
        }
        self.reports.remove(&pid);
        self.journals.remove(&pid);
        self.hot.apps.set(self.apps.len() as i64);
    }

    /// Refreshes `pid`'s lease (POLL/REPORT/EVENTS all count as signs of
    /// life). Returns false when the pid holds no live registration.
    fn touch(&mut self, pid: u32, now: Instant) -> bool {
        match self.index.get(&pid) {
            Some(&idx) => {
                self.apps[idx].last_seen = now;
                true
            }
            None => false,
        }
    }

    /// Stores `pid`'s latest REPORT line. Under `--weighted` the report
    /// feeds the partition weights, so it dirties the target cache.
    fn record_report(&mut self, pid: u32, line: String, cfg: &UdsServerConfig) {
        self.reports.insert(pid, line);
        if cfg.weighted {
            self.invalidate_targets();
        }
    }

    /// The earliest pending lease deadline (the reactor's wait timeout).
    pub(crate) fn next_lease_deadline(&self) -> Option<Instant> {
        self.lease_timers.peek().map(|Reverse((at, _))| *at)
    }

    /// Drops registrations that died (`/proc`, throttled, if enabled) or
    /// let their lease lapse — the latter via the deadline-ordered timer
    /// queue, so a call with no due deadline costs one heap peek. The
    /// caller supplies `now` so a reactor wakeup reads the clock once.
    pub(crate) fn prune(&mut self, cfg: &UdsServerConfig, now: Instant) {
        #[cfg(target_os = "linux")]
        if cfg.prune_dead {
            let due = self
                .last_proc_sweep
                .map_or(true, |at| now.duration_since(at) >= PROC_SWEEP_PERIOD);
            if due {
                self.last_proc_sweep = Some(now);
                let dead: Vec<u32> = self
                    .apps
                    .iter()
                    .filter(|a| !proc_scan::process_exists(a.pid))
                    .map(|a| a.pid)
                    .collect();
                for pid in dead {
                    self.depart(pid);
                }
            }
        }
        while let Some(&Reverse((deadline, pid))) = self.lease_timers.peek() {
            if deadline > now {
                break;
            }
            self.lease_timers.pop();
            self.hot.timer_fires.incr();
            let Some(&idx) = self.index.get(&pid) else {
                continue; // departed since the timer was armed
            };
            let fresh_deadline = self.apps[idx].last_seen + cfg.lease_ttl;
            if fresh_deadline > now {
                // The lease was refreshed since this timer was armed:
                // re-arm at the fresh deadline instead of expiring.
                self.lease_timers.push(Reverse((fresh_deadline, pid)));
            } else {
                self.hot.lease_expiries.incr();
                self.depart(pid);
            }
        }
        self.hot.apps.set(self.apps.len() as i64);
    }

    /// Appends events to `pid`'s journal, dropping the oldest beyond
    /// `cfg.journal_cap` (counted, never silent).
    fn append_events(&mut self, pid: u32, events: Vec<TraceEvent>, cfg: &UdsServerConfig) {
        if cfg.journal_cap == 0 {
            return;
        }
        let journal = self.journals.entry(pid).or_default();
        for ev in events {
            if journal.events.len() >= cfg.journal_cap {
                journal.events.pop_front();
                self.hot.journal_drops.incr();
            }
            journal.events.push_back(ev);
        }
    }

    /// Records a decision instant in the journal of the app at `idx`
    /// when the computed target differs from the last one journaled —
    /// the server-side half of the merged timeline (decision → effect).
    fn note_decision(&mut self, idx: usize, target: u32, cfg: &UdsServerConfig) {
        if self.apps[idx].last_target == Some(target) {
            return;
        }
        self.apps[idx].last_target = Some(target);
        let pid = self.apps[idx].pid;
        let ev = TraceEvent {
            ts_ns: trace::now_ns(),
            worker: 0,
            kind: EventKind::Decision,
            arg: target,
        };
        self.append_events(pid, vec![ev], cfg);
    }

    /// Drains up to `max` of the oldest journaled events for `pid`.
    fn drain_journal(&mut self, pid: u32, max: usize) -> Vec<TraceEvent> {
        match self.journals.get_mut(&pid) {
            Some(j) => {
                let n = j.events.len().min(max);
                j.events.drain(..n).collect()
            }
            None => Vec::new(),
        }
    }

    /// The system-wide uncontrollable load to subtract (0 when
    /// accounting is off), sampling `/proc` when the cached sample went
    /// stale.
    fn uncontrolled_load(&mut self, cfg: &UdsServerConfig) -> u32 {
        if !cfg.account_system_load {
            return 0;
        }
        let fresh = self
            .last_sample
            .is_some_and(|(at, _)| at.elapsed() < cfg.sample_ttl);
        if !fresh {
            let exclude: Vec<u32> = self
                .apps
                .iter()
                .map(|a| a.pid)
                .chain([std::process::id()])
                .collect();
            let n = proc_scan::system_runnable_excluding(&exclude).unwrap_or(0);
            self.last_sample = Some((Instant::now(), n));
        }
        self.last_sample.map_or(0, |(_, n)| n)
    }

    /// One registered app's partition weight: 1.0 in the default equal
    /// split, or `1.0 + jobs_run` from its latest REPORT when
    /// `cfg.weighted` — so observed throughput skews shares, equal (or
    /// absent) reports reduce to the equal partition, and a zero counter
    /// never zeroes an app out entirely.
    fn weight_of(&self, pid: u32, cfg: &UdsServerConfig) -> f64 {
        if !cfg.weighted {
            return 1.0;
        }
        let jobs = self
            .reports
            .get(&pid)
            .and_then(|line| {
                line.split_whitespace()
                    .find_map(|kv| kv.strip_prefix("jobs_run="))
            })
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(0.0);
        1.0 + jobs.max(0.0)
    }

    /// Recomputes the cached partition — targets *and* contiguous CPU
    /// sets (the paper's partition with caps and a floor of one, in
    /// registration order) — when dirty. With system-load accounting on,
    /// the uncontrollable load itself varies over time, so the cache is
    /// bypassed and every read recomputes (the pre-coalescing behavior).
    fn refresh_targets(&mut self, cfg: &UdsServerConfig) {
        if !cfg.account_system_load && !self.targets_gate.take_dirty() {
            return;
        }
        let uncontrolled = self.uncontrolled_load(cfg);
        let demands: Vec<AppDemand> = self
            .apps
            .iter()
            .map(|a| AppDemand {
                processes: a.nworkers,
                weight: self.weight_of(a.pid, cfg),
            })
            .collect();
        let targets: Vec<u32> = partition(cfg.cpus as u32, uncontrolled, &demands)
            .into_iter()
            .map(|t| t.max(1))
            .collect();
        let order: Vec<u32> = match &cfg.cpu_order {
            Some(o) if !o.is_empty() => o.clone(),
            _ => (0..cfg.cpus as u32).collect(),
        };
        self.cpu_sets_cache = procctl::assign_cpu_sets(&order, &targets);
        self.targets_cache = targets;
    }

    /// Every registered app's target, in registration order.
    fn effective_targets(&mut self, cfg: &UdsServerConfig) -> Vec<u32> {
        self.refresh_targets(cfg);
        self.targets_cache.clone()
    }

    /// The slot and target for `pid`, or `None` when `pid` holds no
    /// live registration (never registered, lease expired, or the
    /// server restarted since).
    fn target_of(&mut self, pid: u32, cfg: &UdsServerConfig) -> Option<(usize, u32)> {
        self.refresh_targets(cfg);
        let idx = *self.index.get(&pid)?;
        Some((idx, self.targets_cache.get(idx).copied()?))
    }

    /// Serializes the recoverable state (see [`crate::snapshot`]):
    /// registrations in partition order with their remaining lease
    /// time, latest reports, and the boot epoch. Journals are
    /// deliberately excluded — drains are destructive and replaying
    /// stale events after restart would corrupt the merged timeline.
    pub(crate) fn to_snapshot(
        &self,
        epoch: u64,
        cfg: &UdsServerConfig,
        now: Instant,
    ) -> crate::snapshot::ServerSnapshot {
        crate::snapshot::ServerSnapshot {
            epoch,
            apps: self
                .apps
                .iter()
                .map(|a| crate::snapshot::SnapshotApp {
                    pid: a.pid,
                    nworkers: a.nworkers,
                    lease_remaining: (a.last_seen + cfg.lease_ttl).saturating_duration_since(now),
                })
                .collect(),
            reports: self
                .reports
                .iter()
                .map(|(pid, line)| (*pid, line.clone()))
                .collect(),
        }
    }

    /// Restores a decoded snapshot into a freshly-constructed state:
    /// registrations re-admit in snapshot (= partition) order with
    /// their leases re-armed at the *remaining* time — a crash and
    /// restart never extends a silent client's tenure — and reports
    /// reattach to the pids that survived. Invalid worker counts are
    /// skipped (the snapshot is data, not trusted input).
    pub(crate) fn restore_snapshot(
        &mut self,
        snap: &crate::snapshot::ServerSnapshot,
        cfg: &UdsServerConfig,
        now: Instant,
    ) {
        for a in &snap.apps {
            if validate_processes(a.nworkers).is_err() || self.index.contains_key(&a.pid) {
                continue;
            }
            // Backdate last_seen so `last_seen + ttl` lands exactly at
            // the snapshotted remaining-lease deadline.
            let back = cfg.lease_ttl.saturating_sub(a.lease_remaining);
            let seen = now.checked_sub(back).unwrap_or(now);
            self.index.insert(a.pid, self.apps.len());
            self.apps.push(AppReg::new(a.pid, a.nworkers, seen));
            self.lease_timers
                .push(Reverse((seen + cfg.lease_ttl, a.pid)));
        }
        for (pid, line) in &snap.reports {
            if self.index.contains_key(pid) {
                self.reports.insert(*pid, line.clone());
            }
        }
        self.invalidate_targets();
        self.hot.apps.set(self.apps.len() as i64);
        self.hot.snapshot_restores.incr();
    }

    /// The slot, target, *and* concrete CPU set for `pid`: every app's
    /// effective target is sliced contiguously from the configured CPU
    /// order, so each reply is consistent with what every other
    /// registered app would be told in the same instant.
    fn target_and_cpus_of(
        &mut self,
        pid: u32,
        cfg: &UdsServerConfig,
    ) -> Option<(usize, u32, Vec<u32>)> {
        self.refresh_targets(cfg);
        let idx = *self.index.get(&pid)?;
        let target = self.targets_cache.get(idx).copied()?;
        let set = self.cpu_sets_cache.get(idx).cloned().unwrap_or_default();
        Some((idx, target, set))
    }
}

/// The server's boot epoch: distinct across restarts so clients can tell
/// "the server I registered with" from "a new server that forgot me".
fn boot_epoch() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(1, |d| d.as_nanos() as u64);
    // Fold in the pid so two servers booted within one clock tick (or on
    // a coarse clock) still differ.
    nanos ^ (u64::from(std::process::id()).rotate_left(48)) | 1
}

/// Persists the recoverable state when `cfg` names a snapshot path (a
/// no-op otherwise). Both engines call this — the reactor from its
/// timer wakeups, the thread engine from its accept loop — and both at
/// shutdown, so a `kill -9` between intervals loses at most one
/// interval of registrations. A failed write is reported and retried
/// at the next interval, never fatal: serving traffic outranks
/// persistence.
pub(crate) fn write_snapshot(st: &ServerState, cfg: &UdsServerConfig, epoch: u64, now: Instant) {
    let Some(path) = &cfg.snapshot_path else {
        return;
    };
    match st.to_snapshot(epoch, cfg, now).write_atomic(path) {
        Ok(()) => st.hot.snapshot_writes.incr(),
        Err(e) => eprintln!(
            "procctl server: snapshot write to {} failed: {e}",
            path.display()
        ),
    }
}

/// The standalone control server.
pub struct UdsServer {
    cfg: UdsServerConfig,
    epoch: u64,
    // sched-atomic(handoff): Release store in shutdown publishes the
    // final epoch state; accept/poll loops load with Acquire.
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    accept_thread: Option<JoinHandle<()>>,
}

impl UdsServer {
    /// Binds the socket and starts serving.
    ///
    /// An existing socket file is probed first: if a live server answers
    /// the connect, this fails with [`io::ErrorKind::AddrInUse`]; if
    /// nothing is listening the file is stale (a crashed predecessor) and
    /// is reclaimed. An invalid `cfg` (see [`UdsServerConfig::validate`])
    /// fails with [`io::ErrorKind::InvalidInput`].
    pub fn start(cfg: UdsServerConfig) -> io::Result<Self> {
        cfg.validate()?;
        if cfg.path.exists() {
            match UnixStream::connect(&cfg.path) {
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a live server already answers on {}", cfg.path.display()),
                    ));
                }
                // Nobody home: a stale socket from a crashed server.
                Err(_) => std::fs::remove_file(&cfg.path)?,
            }
        }
        let listener = UnixListener::bind(&cfg.path)?;
        listener.set_nonblocking(true)?;
        let mut epoch = boot_epoch();
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new());
        // Pre-register every statistic so a STATS reply (and the in-process
        // snapshot) always carries the full schema, zeros included.
        for name in [
            "registers",
            "polls",
            "byes",
            "reports",
            "malformed",
            "lease_expiries",
            "events_pushes",
            "traces",
            "journal_drops",
            "reactor_wakeups",
            "frames_batched",
            "recompute_coalesced",
            "timer_fires",
            "snapshot_writes",
            "snapshot_restores",
            "snapshot_rejected",
        ] {
            // sched-counters: registers polls byes reports malformed lease_expiries events_pushes traces journal_drops reactor_wakeups frames_batched recompute_coalesced timer_fires snapshot_writes snapshot_restores snapshot_rejected
            registry.counter(name);
        }
        registry.gauge("apps");
        registry.gauge("conn_handlers");
        let mut state = ServerState::new(&registry);
        // Crash recovery: restore the previous instance's registrations
        // and pick an epoch strictly above the snapshotted one, so
        // epochs stay monotone across restarts even on coarse clocks.
        // Any defect in the file — truncation, checksum, future version
        // — cold-starts cleanly and is counted, never partially
        // restored.
        if let Some(spath) = &cfg.snapshot_path {
            match crate::snapshot::ServerSnapshot::load(spath) {
                Ok(snap) => {
                    epoch = epoch.max(snap.epoch.wrapping_add(1));
                    state.restore_snapshot(&snap, &cfg, Instant::now());
                }
                Err(crate::snapshot::SnapshotError::Io(e))
                    if e.kind() == io::ErrorKind::NotFound => {} // first boot
                Err(e) => {
                    state.hot.snapshot_rejected.incr();
                    eprintln!(
                        "procctl server: rejecting snapshot {} ({e}); cold start",
                        spath.display()
                    );
                }
            }
        }
        let accept_thread = match cfg.engine {
            ServerEngine::Reactor => {
                // The reactor thread owns the state outright — no mutex.
                let stop = Arc::clone(&stop);
                let registry = Arc::clone(&registry);
                let cfg2 = cfg.clone();
                std::thread::Builder::new()
                    .name("procctl-uds-reactor".into())
                    .spawn(move || {
                        crate::reactor::serve(listener, state, &cfg2, &stop, &registry, epoch);
                    })
                    .expect("spawn reactor thread")
            }
            ServerEngine::Threads => {
                let state = Arc::new(Mutex::new(state));
                let stop = Arc::clone(&stop);
                let registry = Arc::clone(&registry);
                let cfg2 = cfg.clone();
                std::thread::Builder::new()
                    .name("procctl-uds-server".into())
                    .spawn(move || {
                        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                        let mut last_snapshot = Instant::now();
                        while !stop.load(Ordering::Acquire) {
                            // Reap handlers whose connection already ended;
                            // without this the Vec grows without bound under
                            // connection churn (joined only at shutdown).
                            handlers.retain(|h| !h.is_finished());
                            registry.gauge("conn_handlers").set(handlers.len() as i64);
                            if cfg2.snapshot_path.is_some()
                                && last_snapshot.elapsed() >= cfg2.snapshot_interval
                            {
                                let now = Instant::now();
                                write_snapshot(&state.lock(), &cfg2, epoch, now);
                                last_snapshot = now;
                            }
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    let state = Arc::clone(&state);
                                    let cfg3 = cfg2.clone();
                                    let stop2 = Arc::clone(&stop);
                                    let reg2 = Arc::clone(&registry);
                                    handlers.push(
                                        std::thread::Builder::new()
                                            .name("procctl-uds-conn".into())
                                            .spawn(move || {
                                                let _ = serve_connection(
                                                    stream, &state, &cfg3, &stop2, &reg2, epoch,
                                                );
                                            })
                                            .expect("spawn connection handler"),
                                    );
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(20));
                                }
                                Err(_) => break,
                            }
                        }
                        for h in handlers {
                            let _ = h.join();
                        }
                        // Final write after every handler drained, so a
                        // graceful shutdown (SIGTERM → drop) persists
                        // the very last frames' effects.
                        write_snapshot(&state.lock(), &cfg2, epoch, Instant::now());
                    })
                    .expect("spawn accept thread")
            }
        };
        Ok(UdsServer {
            cfg,
            epoch,
            stop,
            registry,
            accept_thread: Some(accept_thread),
        })
    }

    /// The socket path clients should connect to.
    pub fn path(&self) -> &Path {
        &self.cfg.path
    }

    /// This server instance's boot epoch (stamped on every reply).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A point-in-time copy of the server's statistics (registers, polls,
    /// byes served; malformed requests; lease expiries; live application
    /// count) — the same data the wire-level `STATS` request returns.
    pub fn stats(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.cfg.path);
    }
}

/// Appends the ASCII decimal digits of `v` — the hot replies' no-alloc,
/// no-formatting-machinery itoa.
fn push_u32(out: &mut String, mut v: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        out.push(b as char);
    }
}

/// Appends `ERR malformed\n`, counting it.
fn reply_malformed(st: &mut ServerState, out: &mut String) {
    st.hot.malformed.incr();
    out.push_str("ERR malformed\n");
}

/// The complete wire-protocol verb set, in the order the dispatcher
/// matches them. Both engines dispatch through [`handle_line_into`], so
/// this table *is* the protocol surface: schedlint's SL050 audit checks
/// it against the dispatcher arms, the client's emissions, and the
/// reactor/thread engine files, so a verb added to one place but not
/// the others fails the lint gate rather than shipping skewed.
pub(crate) const WIRE_VERBS: &[&str] = &[
    "POLL", "REGISTER", "BYE", "REPORT", "EVENTS", "TRACE", "STATS",
];

/// Answers one request line against the (exclusively held) server
/// state, appending exactly one reply to `out`. Every line gets a reply
/// — malformed input is answered with `ERR <reason>` rather than
/// silence, so a client blocked in `read_line` always makes progress.
///
/// Both engines funnel every frame through this one function — the
/// thread-per-connection baseline holding the state mutex around each
/// call, the reactor owning the state outright — which is what makes
/// the wire protocol byte-identical across engines by construction.
/// The caller supplies `now` (so a reactor wakeup serving hundreds of
/// pipelined frames reads the clock once) and the `out` buffer (so the
/// hot verbs reply with zero allocations: the request is parsed with a
/// non-collecting token iterator, targets render through [`push_u32`],
/// and the ` <epoch>\n` tail comes from a cached rendering).
// sched-counter-exits(polls|registers|byes|reports|events_pushes|traces|stats_queries|malformed):
// every frame must land in exactly one per-verb counter so the STATS
// export and schedtop's rates account for all traffic.
pub(crate) fn handle_line_into(
    line: &str,
    st: &mut ServerState,
    cfg: &UdsServerConfig,
    registry: &Registry,
    epoch: u64,
    now: Instant,
    out: &mut String,
) {
    let mut fields = line.split_whitespace();
    let Some(verb) = fields.next() else {
        st.hot.malformed.incr();
        out.push_str("ERR empty\n");
        return;
    };
    match verb {
        // The hot verb: every registered application polls continuously.
        "POLL" => {
            let pid = fields.next().and_then(|f| f.parse::<u32>().ok());
            match (pid, fields.next(), fields.next()) {
                (Some(pid), None, _) => {
                    st.hot.polls.incr();
                    st.prune(cfg, now);
                    if !st.touch(pid, now) {
                        // Expired lease, dead registration, or a
                        // pre-restart client the new server never heard
                        // of.
                        out.push_str("ERR unregistered\n");
                        return;
                    }
                    match st.target_of(pid, cfg) {
                        Some((idx, t)) => {
                            st.note_decision(idx, t, cfg);
                            out.push_str("TARGET ");
                            push_u32(out, t);
                            out.push_str(st.epoch_suffix(epoch));
                        }
                        None => out.push_str("ERR unregistered\n"),
                    }
                }
                // The CPU-set extension: same poll semantics, but the
                // reply also names the processors (`cpus=<cpulist>`).
                // Old servers answer `ERR malformed` here, which new
                // clients treat as "extension unsupported".
                (Some(pid), Some("cpus"), None) => {
                    st.hot.polls.incr();
                    st.prune(cfg, now);
                    if !st.touch(pid, now) {
                        out.push_str("ERR unregistered\n");
                        return;
                    }
                    match st.target_and_cpus_of(pid, cfg) {
                        Some((idx, t, cpus)) => {
                            st.note_decision(idx, t, cfg);
                            let list = crate::topology::format_cpulist(&cpus);
                            out.push_str(&format!("TARGET {t} {epoch} cpus={list}\n"));
                        }
                        None => out.push_str("ERR unregistered\n"),
                    }
                }
                _ => reply_malformed(st, out),
            }
        }
        "REGISTER" => {
            let pid = fields.next().and_then(|f| f.parse::<u32>().ok());
            let n = fields.next().and_then(|f| f.parse::<u32>().ok());
            match (pid, n, fields.next()) {
                (Some(pid), Some(n), None) => {
                    if validate_processes(n).is_err() {
                        st.hot.malformed.incr();
                        out.push_str("ERR bad-nworkers\n");
                        return;
                    }
                    st.hot.registers.incr();
                    st.admit(pid, n, cfg, now);
                    out.push_str("OK");
                    out.push_str(st.epoch_suffix(epoch));
                }
                _ => reply_malformed(st, out),
            }
        }
        "BYE" => match (
            fields.next().and_then(|f| f.parse::<u32>().ok()),
            fields.next(),
        ) {
            (Some(pid), None) => {
                st.hot.byes.incr();
                st.depart(pid);
                out.push_str("OK");
                out.push_str(st.epoch_suffix(epoch));
            }
            _ => reply_malformed(st, out),
        },
        "REPORT" => match fields.next().and_then(|f| f.parse::<u32>().ok()) {
            Some(pid) => {
                st.hot.reports.incr();
                st.touch(pid, now);
                let mut report = String::new();
                for f in fields {
                    if !report.is_empty() {
                        report.push(' ');
                    }
                    report.push_str(f);
                }
                st.record_report(pid, report, cfg);
                out.push_str("OK");
                out.push_str(st.epoch_suffix(epoch));
            }
            None => reply_malformed(st, out),
        },
        // Flight-recorder push: an application drains its per-worker
        // rings and forwards the batch (comma-joined `ts:kind:worker:arg`
        // frames, no spaces — so this is always exactly three fields).
        // Accepting the batch refreshes the lease like POLL/REPORT do;
        // old servers answer `ERR malformed`, the client's cue to stop
        // pushing (see [`EventsReply::Unsupported`]).
        "EVENTS" => {
            let pid = fields.next().and_then(|f| f.parse::<u32>().ok());
            let events = fields.next().and_then(trace::parse_events);
            match (pid, events, fields.next()) {
                (Some(pid), Some(events), None) => {
                    st.hot.events_pushes.incr();
                    st.prune(cfg, now);
                    if !st.touch(pid, now) {
                        out.push_str("ERR unregistered\n");
                        return;
                    }
                    st.append_events(pid, events, cfg);
                    out.push_str("OK");
                    out.push_str(st.epoch_suffix(epoch));
                }
                _ => reply_malformed(st, out),
            }
        }
        // Journal drain: anyone (schedtop, the merge tooling) can read
        // back up to `max` of the oldest journaled events for a pid.
        // Reading does not refresh the lease — it is an observer verb —
        // and an unknown pid simply drains empty rather than erroring,
        // so a monitor can poll pids that have not pushed yet.
        "TRACE" => {
            let pid = fields.next().and_then(|f| f.parse::<u32>().ok());
            let max = match (fields.next(), fields.next()) {
                (None, _) => Some(DEFAULT_TRACE_MAX),
                (Some(m), None) => m.parse::<usize>().ok(),
                _ => None,
            };
            match (pid, max) {
                (Some(pid), Some(max)) => {
                    st.hot.traces.incr();
                    let events = st.drain_journal(pid, max);
                    let n = events.len();
                    if events.is_empty() {
                        out.push_str(&format!("TRACE {epoch} 0\n"));
                    } else {
                        out.push_str(&format!(
                            "TRACE {epoch} {n} {}\n",
                            trace::render_events(&events)
                        ));
                    }
                }
                _ => reply_malformed(st, out),
            }
        }
        "STATS" => {
            st.hot.stats_queries.incr();
            match (fields.next(), fields.next()) {
                (None, _) => {
                    out.push_str(&format!("STATS {}\n", registry.snapshot().render_line()))
                }
                // Fleet snapshot: every registered pid's target and latest
                // report in one round-trip (`|`-separated), so a monitor
                // scales O(1) in requests instead of O(apps). Old servers
                // answer `ERR malformed` ("ALL" fails their pid parse), the
                // downgrade cue.
                (Some("ALL"), None) => {
                    st.prune(cfg, now);
                    let targets = st.effective_targets(cfg);
                    let parts: Vec<String> = st
                        .apps
                        .iter()
                        .zip(&targets)
                        .map(|(a, &t)| {
                            let mut part =
                                format!("pid={} target={} nworkers={}", a.pid, t, a.nworkers);
                            if let Some(report) = st.reports.get(&a.pid).filter(|r| !r.is_empty()) {
                                part.push(' ');
                                part.push_str(report);
                            }
                            part
                        })
                        .collect();
                    if parts.is_empty() {
                        out.push_str("STATS ALL\n");
                    } else {
                        out.push_str(&format!("STATS ALL {}\n", parts.join("|")));
                    }
                }
                (Some(pid), None) => match pid.parse::<u32>() {
                    Ok(pid) => match st.reports.get(&pid) {
                        Some(line) if !line.is_empty() => out.push_str(&format!("STATS {line}\n")),
                        _ => out.push_str("STATS\n"),
                    },
                    _ => reply_malformed(st, out),
                },
                _ => reply_malformed(st, out),
            }
        }
        _ => {
            debug_assert!(
                !WIRE_VERBS.contains(&verb),
                "verb {verb} is in WIRE_VERBS but has no dispatch arm"
            );
            reply_malformed(st, out)
        }
    }
}

fn serve_connection(
    stream: UnixStream,
    state: &Mutex<ServerState>,
    cfg: &UdsServerConfig,
    stop: &AtomicBool,
    registry: &Registry,
    epoch: u64,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut reply = String::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Non-UTF-8 bytes on the wire: answer, then drop the
                // connection (the stream offset is unrecoverable).
                registry.counter("malformed").incr();
                let _ = writer.write_all(b"ERR malformed\n");
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        reply.clear();
        handle_line_into(
            &line,
            &mut state.lock(),
            cfg,
            registry,
            epoch,
            Instant::now(),
            &mut reply,
        );
        writer.write_all(reply.as_bytes())?;
    }
}

/// A decoded reply to `POLL`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollReply {
    /// A live target, stamped with the server's boot epoch.
    Target {
        /// Desired number of unsuspended workers.
        target: u32,
        /// The replying server's boot epoch.
        epoch: u64,
    },
    /// The server holds no registration for this pid: the lease expired
    /// or the server restarted. Re-register before polling again.
    Unregistered,
}

impl PollReply {
    /// The `(target, epoch)` of a live reply, or a typed
    /// [`io::ErrorKind::NotConnected`] error for `Unregistered` — so
    /// tests and chaos drills can assert on the unexpected case instead
    /// of `panic!`ing the harness.
    pub fn target(self) -> io::Result<(u32, u64)> {
        match self {
            PollReply::Target { target, epoch } => Ok((target, epoch)),
            PollReply::Unregistered => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "expected a target, server answered unregistered",
            )),
        }
    }
}

/// A decoded reply to `POLL <pid> cpus` (the CPU-set extension).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CpusPollReply {
    /// A live target, with the assigned CPU set when the server speaks
    /// the extension (a server may legitimately answer without one).
    Target {
        /// Desired number of unsuspended workers.
        target: u32,
        /// The replying server's boot epoch.
        epoch: u64,
        /// The concrete processors assigned, when present and non-empty.
        cpus: Option<Vec<u32>>,
    },
    /// No live registration for this pid — re-register before polling.
    Unregistered,
    /// The server predates the extension (it answered `ERR malformed`).
    /// Fall back to plain count-only [`UdsClient::poll_reply`].
    Unsupported,
}

impl CpusPollReply {
    /// The `(target, epoch, cpus)` of a live reply, or a typed error:
    /// [`io::ErrorKind::NotConnected`] for `Unregistered`,
    /// [`io::ErrorKind::Unsupported`] for a pre-extension server.
    pub fn target(self) -> io::Result<(u32, u64, Option<Vec<u32>>)> {
        match self {
            CpusPollReply::Target {
                target,
                epoch,
                cpus,
            } => Ok((target, epoch, cpus)),
            CpusPollReply::Unregistered => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "expected a target, server answered unregistered",
            )),
            CpusPollReply::Unsupported => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "server predates the cpus extension",
            )),
        }
    }
}

/// A decoded reply to `EVENTS <pid> <batch>` (the flight-recorder push).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventsReply {
    /// The server journaled the batch (and refreshed the lease).
    Accepted {
        /// The replying server's boot epoch.
        epoch: u64,
    },
    /// No live registration for this pid — re-register before pushing.
    Unregistered,
    /// The server predates the flight-recorder extension (it answered
    /// `ERR malformed`). Stop pushing until the next reconnect.
    Unsupported,
}

impl EventsReply {
    /// The epoch of an accepted push, or a typed error:
    /// [`io::ErrorKind::NotConnected`] for `Unregistered`,
    /// [`io::ErrorKind::Unsupported`] for a pre-extension server.
    pub fn accepted(self) -> io::Result<u64> {
        match self {
            EventsReply::Accepted { epoch } => Ok(epoch),
            EventsReply::Unregistered => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "events push rejected: unregistered",
            )),
            EventsReply::Unsupported => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "server predates the events extension",
            )),
        }
    }
}

/// A decoded reply to `TRACE <pid> [max]` (the journal drain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceReply {
    /// The oldest journaled events for the pid (possibly none), removed
    /// from the server's journal by this read.
    Events {
        /// The replying server's boot epoch — merge tooling uses it to
        /// correlate drains across server restarts.
        epoch: u64,
        /// Drained events, oldest first.
        events: Vec<TraceEvent>,
    },
    /// The server predates the extension (it answered `ERR`).
    Unsupported,
}

impl TraceReply {
    /// The `(epoch, events)` of a served drain, or a typed
    /// [`io::ErrorKind::Unsupported`] error for a pre-extension server.
    pub fn into_events(self) -> io::Result<(u64, Vec<TraceEvent>)> {
        match self {
            TraceReply::Events { epoch, events } => Ok((epoch, events)),
            TraceReply::Unsupported => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "server predates the trace extension",
            )),
        }
    }
}

/// One application's row in a `STATS ALL` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppStatsEntry {
    /// The application's registered pid.
    pub pid: u32,
    /// Its current partition target.
    pub target: u32,
    /// The worker count it registered with.
    pub nworkers: u32,
    /// Its latest `REPORT` line verbatim (empty when it never reported).
    pub report: String,
}

impl AppStatsEntry {
    fn parse(part: &str) -> Option<AppStatsEntry> {
        let mut fields = part.split_whitespace();
        let pid = fields.next()?.strip_prefix("pid=")?.parse().ok()?;
        let target = fields.next()?.strip_prefix("target=")?.parse().ok()?;
        let nworkers = fields.next()?.strip_prefix("nworkers=")?.parse().ok()?;
        Some(AppStatsEntry {
            pid,
            target,
            nworkers,
            report: fields.collect::<Vec<_>>().join(" "),
        })
    }
}

/// A decoded reply to `STATS ALL` (the one-round-trip fleet snapshot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatsAllReply {
    /// Every registered application's target and latest report.
    Apps(Vec<AppStatsEntry>),
    /// The server predates the verb ("ALL" fails its pid parse and it
    /// answered `ERR malformed`). Fall back to per-pid
    /// [`UdsClient::app_stats`] calls.
    Unsupported,
}

impl StatsAllReply {
    /// The fleet rows of a served snapshot, or a typed
    /// [`io::ErrorKind::Unsupported`] error for a pre-verb server.
    pub fn into_apps(self) -> io::Result<Vec<AppStatsEntry>> {
        match self {
            StatsAllReply::Apps(apps) => Ok(apps),
            StatsAllReply::Unsupported => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "server predates STATS ALL",
            )),
        }
    }
}

/// Client-side connection to a [`UdsServer`].
#[derive(Debug)]
pub struct UdsClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    pid: u32,
    nworkers: u32,
    epoch: u64,
}

impl UdsClient {
    /// Connects and registers this process with `nworkers` workers, with
    /// the [`DEFAULT_IO_TIMEOUT`] armed on the stream.
    pub fn register(path: impl AsRef<Path>, nworkers: u32) -> io::Result<Self> {
        Self::register_with_timeout(path, nworkers, DEFAULT_IO_TIMEOUT)
    }

    /// Connects and registers, arming `io_timeout` as both read and write
    /// timeout — even against a wedged (accepting but silent) server, no
    /// client call blocks longer than the timeout.
    pub fn register_with_timeout(
        path: impl AsRef<Path>,
        nworkers: u32,
        io_timeout: Duration,
    ) -> io::Result<Self> {
        let mut client = Self::connect(path, io_timeout)?;
        client.nworkers = nworkers;
        client.re_register()?;
        Ok(client)
    }

    /// Connects **without registering** — an observer connection for
    /// monitors (`schedtop`, trace-merge tooling) that read `STATS`,
    /// `STATS ALL`, `STATS <pid>`, and `TRACE <pid>` but must not take a
    /// share of the partition. Calling [`UdsClient::poll`] on an
    /// unregistered connection answers `Unregistered`, as it should.
    pub fn connect(path: impl AsRef<Path>, io_timeout: Duration) -> io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        let writer = stream.try_clone()?;
        Ok(UdsClient {
            reader: BufReader::new(stream),
            writer,
            pid: std::process::id(),
            nworkers: 0,
            epoch: 0,
        })
    }

    /// Re-sends REGISTER on the existing connection (after `ERR
    /// unregistered`: a lapsed lease or a restarted server behind a
    /// proxy). Returns the server's boot epoch.
    pub fn re_register(&mut self) -> io::Result<u64> {
        let (pid, nworkers) = (self.pid, self.nworkers);
        self.send(&format!("REGISTER {pid} {nworkers}\n"))?;
        let epoch = self.expect_ok()?;
        self.epoch = epoch;
        Ok(epoch)
    }

    /// The boot epoch of the server this client last registered with.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Arms the worker count a later [`UdsClient::re_register`] will
    /// declare — used by the supervisor's reconnect path, which starts
    /// from an observer [`UdsClient::connect`] and only registers if
    /// the restarted server did *not* recover its registration.
    pub(crate) fn set_nworkers(&mut self, nworkers: u32) {
        self.nworkers = nworkers;
    }

    /// Adopts an epoch observed on a reply without re-registering (the
    /// snapshot-recovered-server path: the registration survived, only
    /// the epoch moved).
    pub(crate) fn adopt_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    fn send(&mut self, msg: &str) -> io::Result<()> {
        self.writer.write_all(msg.as_bytes())
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim().to_string())
    }

    /// Reads a reply, mapping `ERR <reason>` lines to errors.
    fn read_reply(&mut self) -> io::Result<String> {
        let line = self.read_line()?;
        if let Some(reason) = line.strip_prefix("ERR") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server error:{reason}"),
            ));
        }
        Ok(line)
    }

    /// Expects `OK <epoch>` and returns the epoch.
    fn expect_ok(&mut self) -> io::Result<u64> {
        let line = self.read_reply()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["OK", e] => e
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, line.clone())),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected OK, got {line}"),
            )),
        }
    }

    /// Polls the server, distinguishing a live target from "the server no
    /// longer knows this pid" (lease expiry or restart).
    pub fn poll_reply(&mut self) -> io::Result<PollReply> {
        let pid = self.pid;
        self.send(&format!("POLL {pid}\n"))?;
        let line = self.read_line()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["TARGET", n, e] => match (n.parse(), e.parse()) {
                (Ok(target), Ok(epoch)) => Ok(PollReply::Target { target, epoch }),
                _ => Err(io::Error::new(io::ErrorKind::InvalidData, line.clone())),
            },
            ["ERR", "unregistered"] => Ok(PollReply::Unregistered),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Polls with the CPU-set extension (`POLL <pid> cpus`),
    /// distinguishing a live target (with its assigned processors) from
    /// "unregistered" from "server too old for the extension". The last
    /// case is how wire compatibility with pre-extension servers works:
    /// they answer `ERR malformed`, and the caller downgrades to plain
    /// [`UdsClient::poll_reply`].
    pub fn poll_cpus_reply(&mut self) -> io::Result<CpusPollReply> {
        let pid = self.pid;
        self.send(&format!("POLL {pid} cpus\n"))?;
        let line = self.read_line()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["TARGET", n, e, rest @ ..] => match (n.parse::<u32>(), e.parse::<u64>()) {
                (Ok(target), Ok(epoch)) => {
                    let cpus = rest
                        .iter()
                        .find_map(|f| f.strip_prefix("cpus="))
                        .and_then(crate::topology::parse_cpulist)
                        .filter(|c| !c.is_empty());
                    Ok(CpusPollReply::Target {
                        target,
                        epoch,
                        cpus,
                    })
                }
                _ => Err(io::Error::new(io::ErrorKind::InvalidData, line.clone())),
            },
            ["ERR", "unregistered"] => Ok(CpusPollReply::Unregistered),
            ["ERR", ..] => Ok(CpusPollReply::Unsupported),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Pushes a batch of flight-recorder events for this process into
    /// the server's bounded journal (refreshing the lease, like POLL).
    /// An empty batch sends nothing and reports the last-known epoch.
    ///
    /// Wire compatibility mirrors the CPU-set extension: a pre-extension
    /// server answers `ERR malformed`, surfaced as
    /// [`EventsReply::Unsupported`] — the cue to stop pushing.
    pub fn push_events(&mut self, events: &[TraceEvent]) -> io::Result<EventsReply> {
        if events.is_empty() {
            return Ok(EventsReply::Accepted { epoch: self.epoch });
        }
        let pid = self.pid;
        let payload = trace::render_events(events);
        self.send(&format!("EVENTS {pid} {payload}\n"))?;
        let line = self.read_line()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["OK", e] => match e.parse() {
                Ok(epoch) => Ok(EventsReply::Accepted { epoch }),
                Err(_) => Err(io::Error::new(io::ErrorKind::InvalidData, line.clone())),
            },
            ["ERR", "unregistered"] => Ok(EventsReply::Unregistered),
            ["ERR", ..] => Ok(EventsReply::Unsupported),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Drains up to `max` (server default when `None`) of the oldest
    /// journaled events for `pid` — both the events that application
    /// pushed and the server's own decision instants. Any client may
    /// read any pid's journal; the drain is destructive.
    pub fn trace(&mut self, pid: u32, max: Option<usize>) -> io::Result<TraceReply> {
        match max {
            Some(m) => self.send(&format!("TRACE {pid} {m}\n"))?,
            None => self.send(&format!("TRACE {pid}\n"))?,
        }
        let line = self.read_line()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["TRACE", e, n, rest @ ..] => {
                let parsed = (e.parse::<u64>(), n.parse::<usize>());
                let (Ok(epoch), Ok(n)) = parsed else {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, line.clone()));
                };
                let events = match rest {
                    [] => Vec::new(),
                    [payload] => trace::parse_events(payload)
                        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, line.clone()))?,
                    _ => return Err(io::Error::new(io::ErrorKind::InvalidData, line.clone())),
                };
                if events.len() != n {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, line.clone()));
                }
                Ok(TraceReply::Events { epoch, events })
            }
            ["ERR", ..] => Ok(TraceReply::Unsupported),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Fetches every registered application's target and latest report
    /// in one round-trip — what `schedtop` refreshes on. A pre-verb
    /// server answers `ERR malformed`, surfaced as
    /// [`StatsAllReply::Unsupported`].
    pub fn stats_all(&mut self) -> io::Result<StatsAllReply> {
        self.send("STATS ALL\n")?;
        let line = self.read_line()?;
        if line.starts_with("ERR") {
            return Ok(StatsAllReply::Unsupported);
        }
        let rest = line
            .strip_prefix("STATS ALL")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, line.clone()))?
            .trim_start();
        if rest.is_empty() {
            return Ok(StatsAllReply::Apps(Vec::new()));
        }
        let apps = rest
            .split('|')
            .map(|part| {
                AppStatsEntry::parse(part)
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, part.to_string()))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(StatsAllReply::Apps(apps))
    }

    /// Polls the server for this process's current target. An
    /// unregistered reply surfaces as [`io::ErrorKind::NotConnected`];
    /// see [`UdsClient::poll_reply`] to handle it without string
    /// matching.
    pub fn poll(&mut self) -> io::Result<u32> {
        match self.poll_reply()? {
            PollReply::Target { target, .. } => Ok(target),
            PollReply::Unregistered => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "server holds no registration for this pid (lease expired or server restarted)",
            )),
        }
    }

    /// Deregisters (the paper's courtesy goodbye).
    pub fn bye(&mut self) -> io::Result<()> {
        let pid = self.pid;
        self.send(&format!("BYE {pid}\n"))?;
        self.expect_ok().map(|_| ())
    }

    /// Pushes this process's statistics line to the server (newlines in
    /// `line` are not allowed by the wire format and are rejected).
    pub fn report(&mut self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "report line must be newline-free",
            ));
        }
        let pid = self.pid;
        self.send(&format!("REPORT {pid} {line}\n"))?;
        self.expect_ok().map(|_| ())
    }

    /// Fetches the latest statistics line another application reported,
    /// or an empty string when `pid` never reported.
    pub fn app_stats(&mut self, pid: u32) -> io::Result<String> {
        self.send(&format!("STATS {pid}\n"))?;
        let line = self.read_reply()?;
        match line.strip_prefix("STATS") {
            Some(rest) => Ok(rest.trim_start().to_string()),
            None => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Fetches the server's statistics as sorted `(key, value)` pairs.
    pub fn stats(&mut self) -> io::Result<Vec<(String, i64)>> {
        self.send("STATS\n")?;
        let line = self.read_reply()?;
        let mut fields = line.split_whitespace();
        if fields.next() != Some("STATS") {
            return Err(io::Error::new(io::ErrorKind::InvalidData, line));
        }
        fields
            .map(|kv| {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, kv.to_string()))?;
                let v = v
                    .parse::<f64>()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, kv.to_string()))?;
                Ok((k.to_string(), v as i64))
            })
            .collect()
    }

    /// Spawns a background thread that polls every `interval` and stores
    /// the target into `slot` (for wiring a [`crate::Pool`] to a remote
    /// server). The thread exits when the returned guard is dropped.
    ///
    /// This poller does not reconnect: a dead or restarted server leaves
    /// the slot at its last value. Use
    /// [`crate::SupervisedClient::spawn_poller`] for the fault-tolerant
    /// version with reconnect and degraded-mode fallback.
    pub fn spawn_poller(self, slot: Arc<TargetSlot>, interval: Duration) -> PollerGuard {
        self.spawn_poller_inner(slot, interval, None)
    }

    /// Like [`UdsClient::spawn_poller`], but also `REPORT`s a snapshot of
    /// `registry` (e.g. a [`crate::Pool`]'s work-stealing counters) to
    /// the server on every poll, making them readable cross-process via
    /// `STATS <pid>`.
    pub fn spawn_reporting_poller(
        self,
        slot: Arc<TargetSlot>,
        interval: Duration,
        registry: Arc<Registry>,
    ) -> PollerGuard {
        self.spawn_poller_inner(slot, interval, Some(registry))
    }

    fn spawn_poller_inner(
        mut self,
        slot: Arc<TargetSlot>,
        interval: Duration,
        registry: Option<Arc<Registry>>,
    ) -> PollerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("procctl-uds-poller".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    if let Ok(PollReply::Target { target, .. }) = self.poll_reply() {
                        slot.target
                            .store((target as usize).clamp(1, slot.nworkers), Ordering::Release);
                    }
                    if let Some(reg) = &registry {
                        let _ = self.report(&reg.snapshot().render_line());
                    }
                    std::thread::sleep(interval);
                }
                let _ = self.bye();
            })
            .expect("spawn poller");
        PollerGuard::from_parts(stop, handle)
    }
}

/// Stops the background poller (and sends BYE) when dropped.
pub struct PollerGuard {
    // sched-atomic(handoff): see UdsServer::stop — same protocol.
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PollerGuard {
    // sched-atomic(handoff): parameter view of PollerGuard::stop.
    pub(crate) fn from_parts(stop: Arc<AtomicBool>, handle: JoinHandle<()>) -> Self {
        PollerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for PollerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("procctl-test-{}-{tag}.sock", std::process::id()))
    }

    #[test]
    fn register_poll_bye_roundtrip() {
        let path = sock_path("roundtrip");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        assert_eq!(c.poll().expect("poll"), 8);
        c.bye().expect("bye");
    }

    #[test]
    fn single_small_app_capped() {
        let path = sock_path("capped");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 3).expect("client");
        assert_eq!(c.poll().expect("poll"), 3);
    }

    #[test]
    fn two_clients_from_same_process_share() {
        // Both registrations carry this test process's pid, so the server
        // sees ONE application (registration is idempotent per pid) —
        // matching the paper's root-pid identity.
        let path = sock_path("same-pid");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut a = UdsClient::register(&path, 16).expect("a");
        let mut b = UdsClient::register(&path, 16).expect("b");
        assert_eq!(a.poll().expect("poll"), 8);
        assert_eq!(b.poll().expect("poll"), 8);
    }

    #[test]
    fn malformed_requests_get_err_replies() {
        let path = sock_path("malformed");
        let server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        // Garbage on the wire gets an ERR reply (not silence), and the
        // connection keeps working.
        c.send("NONSENSE 1 2 3\n").expect("send");
        let reply = c.read_line().expect("err reply");
        assert!(reply.starts_with("ERR"), "got {reply:?}");
        c.send("POLL notanumber\n").expect("send");
        let reply = c.read_line().expect("err reply");
        assert!(reply.starts_with("ERR"), "got {reply:?}");
        assert_eq!(c.poll().expect("poll after garbage"), 4);
        assert_eq!(server.stats().counters["malformed"], 2);
    }

    #[test]
    fn absurd_nworkers_rejected_over_the_wire() {
        let path = sock_path("absurd");
        let server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        c.send("REGISTER 4242 0\n").expect("send");
        assert!(c.read_line().expect("reply").starts_with("ERR"));
        c.send(&format!("REGISTER 4242 {}\n", u32::MAX))
            .expect("send");
        assert!(c.read_line().expect("reply").starts_with("ERR"));
        // Neither registration landed.
        assert_eq!(server.stats().gauges["apps"], 1);
    }

    #[test]
    fn invalid_cpus_config_rejected() {
        let path = sock_path("badcpus");
        let err = UdsServer::start(UdsServerConfig::new(&path, 0))
            .err()
            .expect("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = UdsServer::start(UdsServerConfig::new(&path, 1 << 20))
            .err()
            .expect("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn stale_socket_reclaimed_live_server_respected() {
        let path = sock_path("stale");
        // A listener that dies without removing its socket file (std's
        // UnixListener never unlinks) — the crashed-server case.
        let stale = UnixListener::bind(&path).expect("bind stale");
        drop(stale);
        assert!(path.exists(), "socket file must linger to test reclaim");
        let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("reclaim stale");
        // A second server on the same path must refuse, not steal it.
        let err = UdsServer::start(UdsServerConfig::new(&path, 4))
            .err()
            .expect("must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        drop(server);
    }

    #[test]
    fn poll_without_register_is_unregistered() {
        let path = sock_path("unreg");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        c.bye().expect("bye");
        assert_eq!(c.poll_reply().expect("reply"), PollReply::Unregistered);
        // Re-registering on the same connection restores service.
        c.re_register().expect("re-register");
        assert_eq!(c.poll().expect("poll"), 4);
    }

    #[test]
    fn lease_expires_for_wedged_client() {
        let path = sock_path("lease");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.lease_ttl = Duration::from_millis(80);
        cfg.prune_dead = false; // isolate the lease mechanism
        let server = UdsServer::start(cfg).expect("server");
        let mut live = UdsClient::register(&path, 8).expect("live client");
        // A second "application" that registers and then goes silent —
        // wedged but (hypothetically) alive. Fake pid, so only the lease
        // can reclaim it (pruning is off).
        live.send("REGISTER 999999 8\n").expect("send");
        assert!(live.read_line().expect("reply").starts_with("OK"));
        // Two apps share 8 cpus: 4 each. Polling also refreshes our lease.
        assert_eq!(live.poll().expect("poll"), 4);
        // Outlive the wedged client's lease (polling keeps ours fresh).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(30));
            let t = live.poll().expect("poll");
            if t == 8 {
                break;
            }
            assert!(Instant::now() < deadline, "wedged client never expired");
        }
        assert!(server.stats().counters["lease_expiries"] >= 1);
        assert_eq!(server.stats().gauges["apps"], 1);
    }

    #[test]
    fn epoch_is_stable_within_a_server_and_changes_across_restarts() {
        let path = sock_path("epoch");
        let first_epoch;
        {
            let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
            first_epoch = server.epoch();
            let mut c = UdsClient::register(&path, 4).expect("client");
            assert_eq!(c.epoch(), first_epoch);
            let (_, epoch) = c.poll_reply().expect("poll").target().expect("target");
            assert_eq!(epoch, first_epoch);
        }
        let server2 = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server2");
        assert_ne!(server2.epoch(), first_epoch, "restart must bump the epoch");
        let c2 = UdsClient::register(&path, 4).expect("client2");
        assert_eq!(c2.epoch(), server2.epoch());
    }

    #[test]
    fn snapshot_restores_registrations_and_reports_across_restart() {
        let path = sock_path("snapshot");
        let snap = std::env::temp_dir().join(format!("procctl-test-{}.snap", std::process::id()));
        let _ = std::fs::remove_file(&snap);
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.snapshot_path = Some(snap.clone());
        let first_epoch;
        {
            let server = UdsServer::start(cfg.clone()).expect("server");
            first_epoch = server.epoch();
            let mut c = UdsClient::register(&path, 16).expect("client");
            c.report("jobs_run=7").expect("report");
            // Graceful drop: the engine's exit path writes the final
            // snapshot with the registration and report included.
        }
        assert!(snap.exists(), "shutdown must leave a snapshot behind");
        let server2 = UdsServer::start(cfg).expect("server2");
        assert!(
            server2.epoch() > first_epoch,
            "epochs must stay monotone across a recovery restart"
        );
        assert_eq!(server2.stats().counters["snapshot_restores"], 1);
        // The registration survived: an *observer* connection (which
        // never sends REGISTER) polls a live target straight away.
        let mut c2 = UdsClient::connect(&path, DEFAULT_IO_TIMEOUT).expect("observer");
        let (target, epoch) = c2.poll_reply().expect("poll").target().expect("restored");
        assert_eq!(target, 8);
        assert_eq!(epoch, server2.epoch());
        assert_eq!(
            c2.app_stats(std::process::id()).expect("stats"),
            "jobs_run=7",
            "reports survive the restart"
        );
        assert_eq!(
            server2.stats().counters["registers"],
            0,
            "recovery must not need a re-registration storm"
        );
        drop(server2);
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn corrupt_snapshot_cold_starts_and_counts() {
        let path = sock_path("snapcorrupt");
        let snap =
            std::env::temp_dir().join(format!("procctl-test-{}-bad.snap", std::process::id()));
        // Structurally plausible but checksum-invalid: the server must
        // reject it, count it, and cold-start.
        std::fs::write(
            &snap,
            "PROCCTL-SNAPSHOT v1\nepoch 5\napp 1 4 1000\nend 0000000000000000\n",
        )
        .expect("plant corrupt snapshot");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.snapshot_path = Some(snap.clone());
        let server = UdsServer::start(cfg).expect("server");
        assert_eq!(server.stats().counters["snapshot_rejected"], 1);
        assert_eq!(server.stats().counters["snapshot_restores"], 0);
        let mut c = UdsClient::connect(&path, DEFAULT_IO_TIMEOUT).expect("observer");
        assert_eq!(c.poll_reply().expect("poll"), PollReply::Unregistered);
        drop(server);
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn client_io_timeout_prevents_indefinite_hang() {
        // A bare listener that accepts but never replies — the wedged
        // server. The unsupervised client must error out, not hang.
        let path = sock_path("wedged");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let held = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let started = Instant::now();
        let err = UdsClient::register_with_timeout(&path, 4, Duration::from_millis(150))
            .expect_err("register against a silent server must time out");
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "timed out too slowly: {:?}",
            started.elapsed()
        );
        drop(held.join());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poller_updates_slot() {
        let path = sock_path("poller");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 6)).expect("server");
        let client = UdsClient::register(&path, 12).expect("client");
        let slot = Arc::new(TargetSlot::new(12));
        let _guard = client.spawn_poller(Arc::clone(&slot), Duration::from_millis(20));
        let deadline = Instant::now() + Duration::from_secs(5);
        while slot.target.load(Ordering::Acquire) != 6 {
            assert!(Instant::now() < deadline, "poller never updated the slot");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn stats_roundtrip() {
        let path = sock_path("stats");
        let server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        c.poll().expect("poll");
        c.poll().expect("poll");
        let stats: std::collections::BTreeMap<String, i64> =
            c.stats().expect("stats").into_iter().collect();
        assert_eq!(stats["registers"], 1);
        assert_eq!(stats["polls"], 2);
        assert_eq!(stats["apps"], 1);
        // The fault counters are part of the schema from boot.
        assert_eq!(stats["malformed"], 0);
        assert_eq!(stats["lease_expiries"], 0);
        // The in-process snapshot agrees with the wire reply.
        let snap = server.stats();
        assert_eq!(snap.counters["polls"], 2);
        c.bye().expect("bye");
        assert_eq!(server.stats().gauges["apps"], 0);
    }

    #[test]
    fn report_and_per_app_stats_roundtrip() {
        let path = sock_path("report");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        let me = std::process::id();
        assert_eq!(c.app_stats(me).expect("empty stats"), "");
        c.report("jobs_run=10 steals=3").expect("report");
        assert_eq!(c.app_stats(me).expect("stats"), "jobs_run=10 steals=3");
        // Latest report wins.
        c.report("jobs_run=20 steals=5").expect("report");
        assert_eq!(c.app_stats(me).expect("stats"), "jobs_run=20 steals=5");
        assert!(c.report("bad\nline").is_err());
        // BYE clears the stored report.
        c.bye().expect("bye");
        let mut c2 = UdsClient::register(&path, 4).expect("client2");
        assert_eq!(c2.app_stats(me).expect("stats after bye"), "");
    }

    #[test]
    fn reporting_poller_publishes_pool_counters() {
        let path = sock_path("report-poller");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
        let client = UdsClient::register(&path, 4).expect("client");
        let slot = Arc::new(TargetSlot::new(4));
        let registry = Arc::new(Registry::new());
        registry.counter("jobs_run").add(42);
        let _guard =
            client.spawn_reporting_poller(Arc::clone(&slot), Duration::from_millis(20), registry);
        let mut reader = UdsClient::register(&path, 1).expect("reader");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let line = reader.app_stats(std::process::id()).expect("app stats");
            if line.contains("jobs_run=42") {
                break;
            }
            assert!(Instant::now() < deadline, "poller never reported: {line:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn server_survives_client_disconnect() {
        let path = sock_path("disconnect");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        {
            let _c = UdsClient::register(&path, 8).expect("first client");
            // Dropped without BYE.
        }
        let mut c2 = UdsClient::register(&path, 8).expect("second client");
        // The dead "application" shares this process's pid, which is very
        // much alive, so it still counts — this mirrors the paper's
        // reliance on pid liveness. Target is the equal share.
        let t = c2.poll().expect("poll");
        assert!(t == 8, "got {t}");
    }

    /// Builds a parser harness around [`handle_line`] with no sockets.
    fn fuzz_reply(line: &str) -> String {
        let cfg = UdsServerConfig::new("/nonexistent", 8);
        let registry = Registry::new();
        let mut state = ServerState::new(&registry);
        state.admit(1, 4, &cfg, Instant::now());
        let mut out = String::new();
        handle_line_into(
            line,
            &mut state,
            &cfg,
            &registry,
            7,
            Instant::now(),
            &mut out,
        );
        out
    }

    /// A socketless two-app server state for partition-policy tests.
    fn two_app_state(cfg: &UdsServerConfig, registry: &Registry) -> ServerState {
        // prune_dead is on in the configs below, so both pids must be
        // live processes: use this test process and pid 1 (init).
        let mut state = ServerState::new(registry);
        state.admit(std::process::id(), 16, cfg, Instant::now());
        state.admit(1, 16, cfg, Instant::now());
        state
    }

    #[test]
    fn cpus_poll_roundtrip_over_the_wire() {
        let path = sock_path("cpuspoll");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        let (target, epoch, cpus) = c
            .poll_cpus_reply()
            .expect("poll cpus")
            .target()
            .expect("target");
        assert_eq!(target, 8);
        assert_ne!(epoch, 0);
        assert_eq!(cpus.expect("cpu set"), (0..8).collect::<Vec<u32>>());
        // The plain poll still works on the same connection (old clients
        // and new clients coexist against the same server).
        assert_eq!(c.poll().expect("plain poll"), 8);
    }

    #[test]
    fn cpus_poll_respects_configured_cpu_order() {
        let path = sock_path("cpuorder");
        let mut cfg = UdsServerConfig::new(&path, 4);
        // A topological order where "adjacent" ids are not numeric
        // neighbors — the set must be a prefix slice of THIS order.
        cfg.cpu_order = Some(vec![2, 3, 0, 1]);
        let _server = UdsServer::start(cfg).expect("server");
        let mut c = UdsClient::register(&path, 2).expect("client");
        let (target, _, cpus) = c
            .poll_cpus_reply()
            .expect("poll cpus")
            .target()
            .expect("target");
        assert_eq!(target, 2);
        assert_eq!(cpus.expect("cpu set"), vec![2, 3]);
    }

    #[test]
    fn cpus_poll_against_pre_extension_server_is_unsupported() {
        // Simulate an old server: answers REGISTER, but its parser has
        // never heard of the three-field POLL and replies ERR malformed.
        let path = sock_path("oldserver");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            for _ in 0..2 {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let reply = if line.starts_with("REGISTER") {
                    "OK 1\n"
                } else {
                    "ERR malformed\n"
                };
                writer.write_all(reply.as_bytes()).expect("write");
            }
        });
        let mut c = UdsClient::register(&path, 4).expect("register on old server");
        assert_eq!(
            c.poll_cpus_reply().expect("reply"),
            CpusPollReply::Unsupported
        );
        handle.join().expect("old server thread");
        let _ = std::fs::remove_file(&path);
    }

    fn ev(ts_ns: u64, kind: EventKind, arg: u32) -> TraceEvent {
        TraceEvent {
            ts_ns,
            worker: 0,
            kind,
            arg,
        }
    }

    #[test]
    fn events_push_and_trace_drain_roundtrip() {
        let path = sock_path("events");
        let server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        // The first poll journals a decision instant (target 8).
        assert_eq!(c.poll().expect("poll"), 8);
        let batch = vec![
            ev(10, EventKind::JobStart, 3),
            ev(20, EventKind::Steal, 1),
            ev(30, EventKind::Park, 0),
        ];
        let epoch = c.push_events(&batch).expect("push").accepted().expect("ok");
        assert_eq!(epoch, c.epoch());
        let me = std::process::id();
        let (epoch, events) = c
            .trace(me, None)
            .expect("trace")
            .into_events()
            .expect("events");
        assert_eq!(epoch, c.epoch());
        assert_eq!(events.len(), 4, "decision + 3 pushed: {events:?}");
        assert_eq!(events[0].kind, EventKind::Decision);
        assert_eq!(events[0].arg, 8);
        assert_eq!(&events[1..], &batch[..]);
        // The drain is destructive: a second read is empty.
        let (_, events) = c
            .trace(me, None)
            .expect("trace again")
            .into_events()
            .expect("events");
        assert!(events.is_empty());
        // After BYE the pid is unregistered for pushes.
        c.bye().expect("bye");
        assert_eq!(
            c.push_events(&batch).expect("push after bye"),
            EventsReply::Unregistered
        );
        assert!(server.stats().counters["events_pushes"] >= 1);
        assert!(server.stats().counters["traces"] >= 2);
    }

    #[test]
    fn trace_max_caps_the_drain_oldest_first() {
        let path = sock_path("tracemax");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        let batch: Vec<TraceEvent> = (0..5)
            .map(|i| ev(i * 100, EventKind::JobStart, i as u32))
            .collect();
        assert!(matches!(
            c.push_events(&batch).expect("push"),
            EventsReply::Accepted { .. }
        ));
        let me = std::process::id();
        let (_, events) = c
            .trace(me, Some(2))
            .expect("trace max 2")
            .into_events()
            .expect("events");
        assert_eq!(events, batch[..2], "oldest two first");
        let (_, events) = c
            .trace(me, None)
            .expect("trace rest")
            .into_events()
            .expect("events");
        assert_eq!(events, batch[2..]);
    }

    #[test]
    fn journal_bounded_drops_oldest_and_counts() {
        let path = sock_path("journalcap");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.journal_cap = 4;
        let server = UdsServer::start(cfg).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        let batch: Vec<TraceEvent> = (0..10)
            .map(|i| ev(i, EventKind::JobStart, i as u32))
            .collect();
        assert!(matches!(
            c.push_events(&batch).expect("push"),
            EventsReply::Accepted { .. }
        ));
        let (_, events) = c
            .trace(std::process::id(), None)
            .expect("trace")
            .into_events()
            .expect("events");
        assert_eq!(events, batch[6..], "survivors are the newest 4");
        assert_eq!(server.stats().counters["journal_drops"], 6);
    }

    #[test]
    fn decision_journal_records_target_changes_not_every_poll() {
        let path = sock_path("decisions");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        // Several polls at a stable partition: one decision instant.
        for _ in 0..3 {
            assert_eq!(c.poll().expect("poll"), 8);
        }
        // A second application (pid 1 — init, alive under /proc pruning)
        // halves the partition; the next poll journals the change.
        c.send("REGISTER 1 16\n").expect("send");
        assert!(c.read_line().expect("reply").starts_with("OK"));
        assert_eq!(c.poll().expect("poll"), 4);
        let (_, events) = c
            .trace(std::process::id(), None)
            .expect("trace")
            .into_events()
            .expect("events");
        let decisions: Vec<u32> = events
            .iter()
            .filter(|e| e.kind == EventKind::Decision)
            .map(|e| e.arg)
            .collect();
        assert_eq!(decisions, vec![8, 4], "one instant per change");
    }

    #[test]
    fn stats_all_snapshots_every_app_in_one_roundtrip() {
        let path = sock_path("statsall");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        c.send("REGISTER 1 16\n").expect("send");
        assert!(c.read_line().expect("reply").starts_with("OK"));
        c.report("jobs_run=42 steals=3").expect("report");
        let apps = c.stats_all().expect("stats all").into_apps().expect("apps");
        assert_eq!(apps.len(), 2, "{apps:?}");
        let me = apps
            .iter()
            .find(|a| a.pid == std::process::id())
            .expect("own entry");
        assert_eq!(me.target, 4);
        assert_eq!(me.nworkers, 16);
        assert_eq!(me.report, "jobs_run=42 steals=3");
        let init = apps.iter().find(|a| a.pid == 1).expect("init entry");
        assert_eq!(init.target, 4);
        assert_eq!(init.report, "");
    }

    #[test]
    fn observability_verbs_against_pre_extension_server_are_unsupported() {
        // An old server answers REGISTER and nothing else (its parser
        // falls through to ERR malformed) — every new verb must degrade,
        // not error.
        let path = sock_path("oldserver-obs");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            for _ in 0..4 {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let reply = if line.starts_with("REGISTER") {
                    "OK 1\n"
                } else {
                    "ERR malformed\n"
                };
                writer.write_all(reply.as_bytes()).expect("write");
            }
        });
        let mut c = UdsClient::register(&path, 4).expect("register on old server");
        assert_eq!(
            c.push_events(&[ev(1, EventKind::JobStart, 0)])
                .expect("push"),
            EventsReply::Unsupported
        );
        assert_eq!(c.trace(1, None).expect("trace"), TraceReply::Unsupported);
        assert_eq!(
            c.stats_all().expect("stats all"),
            StatsAllReply::Unsupported
        );
        handle.join().expect("old server thread");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[ignore] // microbenchmark, not an assertion: `cargo test --release -- --ignored micro_ --nocapture`
    fn micro_poll_frame_cost() {
        let mut cfg = UdsServerConfig::new("/nonexistent", 8);
        cfg.prune_dead = false;
        let registry = Registry::new();
        let mut st = ServerState::new(&registry);
        for pid in 0..64 {
            st.admit(900_000 + pid, 4, &cfg, Instant::now());
        }
        let n = 1_000_000u32;
        let mut out = String::new();
        let start = Instant::now();
        for _ in 0..n {
            out.clear();
            handle_line_into(
                "POLL 900000",
                &mut st,
                &cfg,
                &registry,
                42,
                Instant::now(),
                &mut out,
            );
            std::hint::black_box(&out);
        }
        println!(
            "handle_line POLL (64 apps): {:?}/frame",
            start.elapsed() / n
        );
    }

    #[test]
    fn engine_parse_accepts_both_names_and_rejects_garbage() {
        assert_eq!(ServerEngine::parse("threads"), Some(ServerEngine::Threads));
        assert_eq!(ServerEngine::parse("reactor"), Some(ServerEngine::Reactor));
        assert_eq!(ServerEngine::parse("Reactor"), Some(ServerEngine::Reactor));
        assert_eq!(ServerEngine::parse("green-threads"), None);
        assert_eq!(ServerEngine::default(), ServerEngine::Reactor);
    }

    #[test]
    fn threads_engine_serves_the_same_wire() {
        // The selectable baseline: identical protocol, mutex-per-frame
        // engine. The rest of the suite covers the reactor (the default).
        let path = sock_path("threads-engine");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.engine = ServerEngine::Threads;
        let server = UdsServer::start(cfg).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        assert_eq!(c.poll().expect("poll"), 8);
        c.send("NONSENSE\n").expect("send");
        assert!(c.read_line().expect("reply").starts_with("ERR"));
        c.bye().expect("bye");
        assert_eq!(server.stats().counters["malformed"], 1);
    }

    #[test]
    fn threads_engine_reaps_finished_handlers_under_churn() {
        // Satellite fix: finished connection threads used to accumulate in
        // the accept loop's Vec until shutdown. The `conn_handlers` gauge
        // tracks the live length after each reap pass.
        let path = sock_path("churn");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.engine = ServerEngine::Threads;
        let server = UdsServer::start(cfg).expect("server");
        for _ in 0..24 {
            let mut c = UdsClient::register(&path, 4).expect("client");
            assert_eq!(c.poll().expect("poll"), 4);
            c.bye().expect("bye");
        }
        // The accept loop wakes every 20ms even with no new connections,
        // so the gauge must fall back to ~0 once the churned handlers exit.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let live = server.stats().gauges["conn_handlers"];
            if live <= 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "handlers never reaped: {live} still tracked"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    #[test]
    fn reactor_serves_pipelined_bursts_in_order_and_batches() {
        // A client that writes a whole window of frames in one send must
        // get every reply, in order — and the reactor should batch them
        // (many frames per wakeup, one flush).
        let path = sock_path("pipelined");
        let server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        assert_eq!(server.cfg.engine, ServerEngine::Reactor);
        let mut c = UdsClient::register(&path, 4).expect("client");
        let pid = std::process::id();
        let burst: String = (0..32).map(|_| format!("POLL {pid}\n")).collect();
        c.send(&burst).expect("send burst");
        for i in 0..32 {
            let reply = c.read_line().expect("reply");
            assert!(
                reply.starts_with("TARGET "),
                "frame {i}: unexpected reply {reply:?}"
            );
        }
        let stats = server.stats();
        assert!(stats.counters["reactor_wakeups"] >= 1);
        assert!(
            stats.counters["frames_batched"] >= 1,
            "a 32-frame burst should batch: {:?}",
            stats.counters
        );
    }

    #[test]
    fn reactor_coalesces_register_bursts_into_one_recompute() {
        // N back-to-back REGISTERs dirty the partition N times but must
        // recompute it once, at the next read (the following POLL).
        let path = sock_path("coalesce");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.prune_dead = false; // fake pids below must survive
        let server = UdsServer::start(cfg).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        let mut burst = String::new();
        for pid in 910_000..910_006 {
            burst.push_str(&format!("REGISTER {pid} 4\n"));
        }
        c.send(&burst).expect("send burst");
        for _ in 0..6 {
            assert!(c.read_line().expect("reply").starts_with("OK"));
        }
        let _ = c.poll().expect("poll");
        let stats = server.stats();
        assert!(
            stats.counters["recompute_coalesced"] >= 5,
            "burst of 6 registers should coalesce: {:?}",
            stats.counters
        );
    }

    #[test]
    fn reactor_survives_torn_writes_and_half_closed_clients() {
        // Frames trickled one byte at a time still parse; a client that
        // disappears mid-frame doesn't wedge the loop for others.
        let path = sock_path("torn");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut a = UdsClient::register(&path, 16).expect("a");
        let pid = std::process::id();
        let frame = format!("POLL {pid}\n");
        for byte in frame.bytes() {
            a.send(std::str::from_utf8(&[byte]).expect("ascii"))
                .expect("send byte");
        }
        assert!(a.read_line().expect("reply").starts_with("TARGET "));
        // A second client dies mid-frame (no newline, then EOF).
        let mut b = UdsClient::register(&path, 16).expect("b");
        b.send("POLL 91").expect("partial");
        drop(b);
        // The survivor still gets service.
        assert_eq!(a.poll().expect("poll after torn peer"), 8);
    }

    #[test]
    fn weighted_equal_reports_reduce_to_equal_partition() {
        let mut cfg = UdsServerConfig::new("/nonexistent", 8);
        cfg.weighted = true;
        let registry = Registry::new();
        let mut st = two_app_state(&cfg, &registry);
        let my_pid = std::process::id();
        // Identical throughput reports for both apps.
        for pid in [my_pid, 1] {
            st.record_report(pid, "jobs_run=500 steals=7".to_string(), &cfg);
        }
        assert_eq!(st.target_of(my_pid, &cfg).map(|(_, t)| t), Some(4));
        assert_eq!(st.target_of(1, &cfg).map(|(_, t)| t), Some(4));
        // And with no reports at all, weighting degrades to equal too.
        st.reports.clear();
        st.invalidate_targets();
        assert_eq!(st.target_of(my_pid, &cfg).map(|(_, t)| t), Some(4));
        assert_eq!(st.target_of(1, &cfg).map(|(_, t)| t), Some(4));
    }

    #[test]
    fn weighted_unequal_reports_skew_shares() {
        let mut cfg = UdsServerConfig::new("/nonexistent", 8);
        cfg.weighted = true;
        let registry = Registry::new();
        let mut st = two_app_state(&cfg, &registry);
        let my_pid = std::process::id();
        st.record_report(my_pid, "jobs_run=3000".to_string(), &cfg);
        st.record_report(1, "jobs_run=100".to_string(), &cfg);
        let (_, hot) = st.target_of(my_pid, &cfg).expect("hot target");
        let (_, cold) = st.target_of(1, &cfg).expect("cold target");
        assert!(hot > cold, "throughput should skew shares: {hot} vs {cold}");
        assert_eq!(hot + cold, 8, "still partitions the whole machine");
        // The same reports with weighting off: equal shares. The cached
        // partition was computed under `weighted`, so flipping the policy
        // must dirty it (a config change is an invalidation event).
        cfg.weighted = false;
        st.invalidate_targets();
        assert_eq!(st.target_of(my_pid, &cfg).map(|(_, t)| t), Some(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The wire parser never panics and always produces exactly one
        /// newline-terminated reply — `ERR …` or a valid verb reply —
        /// for arbitrary byte lines (lossy-decoded, as `read_line` would
        /// accept or reject them).
        #[test]
        fn wire_parser_total_on_arbitrary_lines(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let line = String::from_utf8_lossy(&bytes).into_owned();
            let reply = fuzz_reply(&line);
            prop_assert!(reply.ends_with('\n'), "reply not newline-terminated: {:?}", reply);
            prop_assert_eq!(reply.matches('\n').count(), 1);
            let valid = reply.starts_with("ERR ")
                || reply.starts_with("OK ")
                || reply.starts_with("TARGET ")
                || reply.starts_with("TRACE ")
                || reply.starts_with("STATS");
            prop_assert!(valid, "unclassifiable reply: {:?}", reply);
        }

        /// Well-formed verbs with arbitrary numeric arguments never panic
        /// either (overflow pids, absurd worker counts, huge stats pids).
        #[test]
        fn wire_parser_total_on_numeric_edge_cases(
            verb in 0usize..7,
            a in any::<u64>(),
            b in any::<u64>(),
        ) {
            let line = match verb {
                0 => format!("REGISTER {a} {b}"),
                1 => format!("POLL {a}"),
                2 => format!("BYE {a}"),
                3 => format!("REPORT {a} x={b}"),
                4 => format!("TRACE {a} {b}"),
                5 => format!("EVENTS {a} {b}:js:0:0"),
                _ => format!("STATS {a}"),
            };
            let reply = fuzz_reply(&line);
            prop_assert!(reply.ends_with('\n'));
        }

        /// The TRACE verb is total over arbitrary pid/max strings (not
        /// just numeric ones): every reply is a single line, either a
        /// well-formed `TRACE <epoch> <n> …` or an `ERR`.
        #[test]
        fn trace_verb_total_on_arbitrary_arguments(
            pid in "[ -~]{0,12}",
            max in "[ -~]{0,12}",
        ) {
            let reply = fuzz_reply(&format!("TRACE {pid} {max}"));
            prop_assert!(reply.ends_with('\n'));
            prop_assert_eq!(reply.matches('\n').count(), 1);
            prop_assert!(
                reply.starts_with("TRACE ") || reply.starts_with("ERR "),
                "unclassifiable reply: {:?}", reply
            );
            if let Some(rest) = reply.strip_prefix("TRACE ") {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                prop_assert!(fields.len() >= 2, "short TRACE reply: {:?}", reply);
                prop_assert!(fields[0].parse::<u64>().is_ok());
                prop_assert!(fields[1].parse::<usize>().is_ok());
            }
        }
    }
}
