//! Cross-process control over Unix domain sockets.
//!
//! The closest native analog of the paper's deployment: the server is a
//! standalone daemon ("a user-level centralized server"), applications are
//! *separate processes* that register over a socket, poll periodically,
//! and say goodbye when done — the same REGISTER/POLL/BYE protocol as the
//! simulated server, as newline-terminated text:
//!
//! ```text
//! client → server:  REGISTER <pid> <nworkers>
//! client → server:  POLL <pid>
//! server → client:  TARGET <n>
//! client → server:  BYE <pid>
//! server → client:  OK            (acknowledges REGISTER and BYE)
//! ```
//!
//! The server additionally prunes registered applications whose processes
//! have died without a BYE (checked against `/proc`), and can optionally
//! subtract system-wide uncontrollable load sampled from `/proc` — the
//! real `rpstat` sweep.
//!
//! A `STATS` request returns the server's own statistics registry as one
//! sorted `key=value` line:
//!
//! ```text
//! client → server:  STATS
//! server → client:  STATS byes=0 polls=12 registers=2 apps=2
//! ```
//!
//! Applications may additionally push their pool's statistics line to the
//! server (the reporting poller does this on every poll), and anyone can
//! read back the latest report for a given pid — cross-process visibility
//! into the work-stealing counters (`steals`, `local_hits`, …) without
//! attaching to the application:
//!
//! ```text
//! client → server:  REPORT <pid> jobs_run=100 steals=7 ...
//! server → client:  OK
//! client → server:  STATS <pid>
//! server → client:  STATS jobs_run=100 steals=7 ...
//! ```

use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use procctl::{partition, AppDemand};

use crate::controller::TargetSlot;
use crate::proc_scan;
use crate::stats::{Registry, Snapshot};

/// Server tuning.
#[derive(Clone, Debug)]
pub struct UdsServerConfig {
    /// Socket path.
    pub path: PathBuf,
    /// Processors to partition.
    pub cpus: usize,
    /// Subtract system-wide runnable threads (full `/proc` sweep) from the
    /// partitionable processors. Off by default: on a busy development
    /// host this makes targets jittery, and tests need determinism.
    pub account_system_load: bool,
    /// How long a system-load sample stays fresh.
    pub sample_ttl: Duration,
}

impl UdsServerConfig {
    /// Defaults: no system-load accounting, 1 s sample TTL.
    pub fn new(path: impl Into<PathBuf>, cpus: usize) -> Self {
        UdsServerConfig {
            path: path.into(),
            cpus,
            account_system_load: false,
            sample_ttl: Duration::from_secs(1),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct AppReg {
    pid: u32,
    nworkers: u32,
}

struct ServerState {
    apps: Vec<AppReg>,
    last_sample: Option<(Instant, u32)>,
    /// Latest `REPORT` line per pid (cleared on BYE).
    reports: std::collections::BTreeMap<u32, String>,
}

impl ServerState {
    /// The target for `pid`, recomputed from the current registry (the
    /// paper's equal partition with caps and a floor of one).
    fn target_of(&mut self, pid: u32, cfg: &UdsServerConfig) -> u32 {
        // Prune applications that died without saying BYE.
        self.apps.retain(|a| proc_scan::process_exists(a.pid));
        let uncontrolled = if cfg.account_system_load {
            let fresh = self
                .last_sample
                .is_some_and(|(at, _)| at.elapsed() < cfg.sample_ttl);
            if !fresh {
                let exclude: Vec<u32> = self
                    .apps
                    .iter()
                    .map(|a| a.pid)
                    .chain([std::process::id()])
                    .collect();
                let n = proc_scan::system_runnable_excluding(&exclude).unwrap_or(0);
                self.last_sample = Some((Instant::now(), n));
            }
            self.last_sample.map_or(0, |(_, n)| n)
        } else {
            0
        };
        let demands: Vec<AppDemand> = self
            .apps
            .iter()
            .map(|a| AppDemand::new(a.nworkers))
            .collect();
        let targets = partition(cfg.cpus as u32, uncontrolled, &demands);
        self.apps
            .iter()
            .zip(&targets)
            .find(|(a, _)| a.pid == pid)
            .map_or(cfg.cpus as u32, |(_, &t)| t.max(1))
    }
}

/// The standalone control server.
pub struct UdsServer {
    cfg: UdsServerConfig,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    accept_thread: Option<JoinHandle<()>>,
}

impl UdsServer {
    /// Binds the socket and starts serving. An existing socket file at the
    /// path is removed first (stale from a crashed server).
    pub fn start(cfg: UdsServerConfig) -> io::Result<Self> {
        let _ = std::fs::remove_file(&cfg.path);
        let listener = UnixListener::bind(&cfg.path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(Registry::new());
        let state = Arc::new(Mutex::new(ServerState {
            apps: Vec::new(),
            last_sample: None,
            reports: std::collections::BTreeMap::new(),
        }));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let cfg2 = cfg.clone();
            std::thread::Builder::new()
                .name("procctl-uds-server".into())
                .spawn(move || {
                    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let state = Arc::clone(&state);
                                let cfg3 = cfg2.clone();
                                let stop2 = Arc::clone(&stop);
                                let reg2 = Arc::clone(&registry);
                                handlers.push(
                                    std::thread::Builder::new()
                                        .name("procctl-uds-conn".into())
                                        .spawn(move || {
                                            let _ = serve_connection(
                                                stream, &state, &cfg3, &stop2, &reg2,
                                            );
                                        })
                                        .expect("spawn connection handler"),
                                );
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => break,
                        }
                    }
                    for h in handlers {
                        let _ = h.join();
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(UdsServer {
            cfg,
            stop,
            registry,
            accept_thread: Some(accept_thread),
        })
    }

    /// The socket path clients should connect to.
    pub fn path(&self) -> &Path {
        &self.cfg.path
    }

    /// A point-in-time copy of the server's statistics (registers, polls,
    /// byes served; live application count) — the same data the wire-level
    /// `STATS` request returns.
    pub fn stats(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.cfg.path);
    }
}

fn serve_connection(
    stream: UnixStream,
    state: &Mutex<ServerState>,
    cfg: &UdsServerConfig,
    stop: &AtomicBool,
    registry: &Registry,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        // Malformed requests are dropped, like the simulated server's.
        let reply = match fields.as_slice() {
            ["REGISTER", pid, n] => match (pid.parse::<u32>(), n.parse::<u32>()) {
                (Ok(pid), Ok(n)) => {
                    registry.counter("registers").incr();
                    let mut st = state.lock();
                    if !st.apps.iter().any(|a| a.pid == pid) {
                        st.apps.push(AppReg { pid, nworkers: n });
                    }
                    registry.gauge("apps").set(st.apps.len() as i64);
                    Some("OK\n".to_string())
                }
                _ => None,
            },
            ["POLL", pid] => match pid.parse::<u32>() {
                Ok(pid) => {
                    registry.counter("polls").incr();
                    let t = state.lock().target_of(pid, cfg);
                    Some(format!("TARGET {t}\n"))
                }
                _ => None,
            },
            ["BYE", pid] => match pid.parse::<u32>() {
                Ok(pid) => {
                    registry.counter("byes").incr();
                    let mut st = state.lock();
                    st.apps.retain(|a| a.pid != pid);
                    st.reports.remove(&pid);
                    registry.gauge("apps").set(st.apps.len() as i64);
                    Some("OK\n".to_string())
                }
                _ => None,
            },
            ["REPORT", pid, rest @ ..] => match pid.parse::<u32>() {
                Ok(pid) => {
                    registry.counter("reports").incr();
                    state.lock().reports.insert(pid, rest.join(" "));
                    Some("OK\n".to_string())
                }
                _ => None,
            },
            ["STATS"] => Some(format!("STATS {}\n", registry.snapshot().render_line())),
            ["STATS", pid] => match pid.parse::<u32>() {
                Ok(pid) => {
                    let st = state.lock();
                    Some(match st.reports.get(&pid) {
                        Some(line) if !line.is_empty() => format!("STATS {line}\n"),
                        _ => "STATS\n".to_string(),
                    })
                }
                _ => None,
            },
            _ => None,
        };
        if let Some(r) = reply {
            writer.write_all(r.as_bytes())?;
        }
    }
}

/// Client-side connection to a [`UdsServer`].
pub struct UdsClient {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    pid: u32,
}

impl UdsClient {
    /// Connects and registers this process with `nworkers` workers.
    pub fn register(path: impl AsRef<Path>, nworkers: u32) -> io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        let mut client = UdsClient {
            reader: BufReader::new(stream),
            writer,
            pid: std::process::id(),
        };
        client.send(&format!("REGISTER {} {}\n", client.pid, nworkers))?;
        client.expect_line("OK")?;
        Ok(client)
    }

    fn send(&mut self, msg: &str) -> io::Result<()> {
        self.writer.write_all(msg.as_bytes())
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim().to_string())
    }

    fn expect_line(&mut self, what: &str) -> io::Result<()> {
        let line = self.read_line()?;
        if line == what {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected {what}, got {line}"),
            ))
        }
    }

    /// Polls the server for this process's current target.
    pub fn poll(&mut self) -> io::Result<u32> {
        let pid = self.pid;
        self.send(&format!("POLL {pid}\n"))?;
        let line = self.read_line()?;
        match line.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["TARGET", n] => n
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, line.clone())),
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Deregisters (the paper's courtesy goodbye).
    pub fn bye(&mut self) -> io::Result<()> {
        let pid = self.pid;
        self.send(&format!("BYE {pid}\n"))?;
        self.expect_line("OK")
    }

    /// Pushes this process's statistics line to the server (newlines in
    /// `line` are not allowed by the wire format and are rejected).
    pub fn report(&mut self, line: &str) -> io::Result<()> {
        if line.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "report line must be newline-free",
            ));
        }
        let pid = self.pid;
        self.send(&format!("REPORT {pid} {line}\n"))?;
        self.expect_line("OK")
    }

    /// Fetches the latest statistics line another application reported,
    /// or an empty string when `pid` never reported.
    pub fn app_stats(&mut self, pid: u32) -> io::Result<String> {
        self.send(&format!("STATS {pid}\n"))?;
        let line = self.read_line()?;
        match line.strip_prefix("STATS") {
            Some(rest) => Ok(rest.trim_start().to_string()),
            None => Err(io::Error::new(io::ErrorKind::InvalidData, line)),
        }
    }

    /// Fetches the server's statistics as sorted `(key, value)` pairs.
    pub fn stats(&mut self) -> io::Result<Vec<(String, i64)>> {
        self.send("STATS\n")?;
        let line = self.read_line()?;
        let mut fields = line.split_whitespace();
        if fields.next() != Some("STATS") {
            return Err(io::Error::new(io::ErrorKind::InvalidData, line));
        }
        fields
            .map(|kv| {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, kv.to_string()))?;
                let v = v
                    .parse::<f64>()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, kv.to_string()))?;
                Ok((k.to_string(), v as i64))
            })
            .collect()
    }

    /// Spawns a background thread that polls every `interval` and stores
    /// the target into `slot` (for wiring a [`crate::Pool`] to a remote
    /// server). The thread exits when the returned guard is dropped.
    pub fn spawn_poller(self, slot: Arc<TargetSlot>, interval: Duration) -> PollerGuard {
        self.spawn_poller_inner(slot, interval, None)
    }

    /// Like [`UdsClient::spawn_poller`], but also `REPORT`s a snapshot of
    /// `registry` (e.g. a [`crate::Pool`]'s work-stealing counters) to
    /// the server on every poll, making them readable cross-process via
    /// `STATS <pid>`.
    pub fn spawn_reporting_poller(
        self,
        slot: Arc<TargetSlot>,
        interval: Duration,
        registry: Arc<Registry>,
    ) -> PollerGuard {
        self.spawn_poller_inner(slot, interval, Some(registry))
    }

    fn spawn_poller_inner(
        mut self,
        slot: Arc<TargetSlot>,
        interval: Duration,
        registry: Option<Arc<Registry>>,
    ) -> PollerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("procctl-uds-poller".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    if let Ok(t) = self.poll() {
                        slot.target
                            .store((t as usize).clamp(1, slot.nworkers), Ordering::Release);
                    }
                    if let Some(reg) = &registry {
                        let _ = self.report(&reg.snapshot().render_line());
                    }
                    std::thread::sleep(interval);
                }
                let _ = self.bye();
            })
            .expect("spawn poller");
        PollerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the background poller (and sends BYE) when dropped.
pub struct PollerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Drop for PollerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("procctl-test-{}-{tag}.sock", std::process::id()))
    }

    #[test]
    fn register_poll_bye_roundtrip() {
        let path = sock_path("roundtrip");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 16).expect("client");
        assert_eq!(c.poll().expect("poll"), 8);
        c.bye().expect("bye");
    }

    #[test]
    fn single_small_app_capped() {
        let path = sock_path("capped");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 3).expect("client");
        assert_eq!(c.poll().expect("poll"), 3);
    }

    #[test]
    fn two_clients_from_same_process_share() {
        // Both registrations carry this test process's pid, so the server
        // sees ONE application (registration is idempotent per pid) —
        // matching the paper's root-pid identity.
        let path = sock_path("same-pid");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut a = UdsClient::register(&path, 16).expect("a");
        let mut b = UdsClient::register(&path, 16).expect("b");
        assert_eq!(a.poll().expect("poll"), 8);
        assert_eq!(b.poll().expect("poll"), 8);
    }

    #[test]
    fn malformed_requests_ignored() {
        let path = sock_path("malformed");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        // Slip garbage onto the wire; the server must drop it silently and
        // keep serving.
        c.send("NONSENSE 1 2 3\n").expect("send");
        c.send("POLL notanumber\n").expect("send");
        assert_eq!(c.poll().expect("poll after garbage"), 4);
    }

    #[test]
    fn poller_updates_slot() {
        let path = sock_path("poller");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 6)).expect("server");
        let client = UdsClient::register(&path, 12).expect("client");
        let slot = Arc::new(TargetSlot {
            target: std::sync::atomic::AtomicUsize::new(12),
            nworkers: 12,
        });
        let _guard = client.spawn_poller(Arc::clone(&slot), Duration::from_millis(20));
        let deadline = Instant::now() + Duration::from_secs(5);
        while slot.target.load(Ordering::Acquire) != 6 {
            assert!(Instant::now() < deadline, "poller never updated the slot");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn stats_roundtrip() {
        let path = sock_path("stats");
        let server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        c.poll().expect("poll");
        c.poll().expect("poll");
        let stats: std::collections::BTreeMap<String, i64> =
            c.stats().expect("stats").into_iter().collect();
        assert_eq!(stats["registers"], 1);
        assert_eq!(stats["polls"], 2);
        assert_eq!(stats["apps"], 1);
        // The in-process snapshot agrees with the wire reply.
        let snap = server.stats();
        assert_eq!(snap.counters["polls"], 2);
        c.bye().expect("bye");
        assert_eq!(server.stats().gauges["apps"], 0);
    }

    #[test]
    fn report_and_per_app_stats_roundtrip() {
        let path = sock_path("report");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        let mut c = UdsClient::register(&path, 4).expect("client");
        let me = std::process::id();
        assert_eq!(c.app_stats(me).expect("empty stats"), "");
        c.report("jobs_run=10 steals=3").expect("report");
        assert_eq!(c.app_stats(me).expect("stats"), "jobs_run=10 steals=3");
        // Latest report wins.
        c.report("jobs_run=20 steals=5").expect("report");
        assert_eq!(c.app_stats(me).expect("stats"), "jobs_run=20 steals=5");
        assert!(c.report("bad\nline").is_err());
        // BYE clears the stored report.
        c.bye().expect("bye");
        let mut c2 = UdsClient::register(&path, 4).expect("client2");
        assert_eq!(c2.app_stats(me).expect("stats after bye"), "");
    }

    #[test]
    fn reporting_poller_publishes_pool_counters() {
        let path = sock_path("report-poller");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
        let client = UdsClient::register(&path, 4).expect("client");
        let slot = Arc::new(TargetSlot {
            target: std::sync::atomic::AtomicUsize::new(4),
            nworkers: 4,
        });
        let registry = Arc::new(Registry::new());
        registry.counter("jobs_run").add(42);
        let _guard =
            client.spawn_reporting_poller(Arc::clone(&slot), Duration::from_millis(20), registry);
        let mut reader = UdsClient::register(&path, 1).expect("reader");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let line = reader.app_stats(std::process::id()).expect("app stats");
            if line.contains("jobs_run=42") {
                break;
            }
            assert!(Instant::now() < deadline, "poller never reported: {line:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn server_survives_client_disconnect() {
        let path = sock_path("disconnect");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 8)).expect("server");
        {
            let _c = UdsClient::register(&path, 8).expect("first client");
            // Dropped without BYE.
        }
        let mut c2 = UdsClient::register(&path, 8).expect("second client");
        // The dead "application" shares this process's pid, which is very
        // much alive, so it still counts — this mirrors the paper's
        // reliance on pid liveness. Target is the equal share.
        let t = c2.poll().expect("poll");
        assert!(t == 8, "got {t}");
    }
}
