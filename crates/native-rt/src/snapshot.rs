//! Crash-recoverable server state: a versioned, checksummed snapshot
//! codec for [`UdsServer`](crate::UdsServer) registrations.
//!
//! Tucker & Gupta's centralized server keeps every registration and
//! partition decision in memory: a crash (or a deliberate restart)
//! forgets the whole fleet, and every client must notice the epoch
//! change and re-register — a re-registration storm exactly when the
//! machine is busiest. The snapshot closes that gap: the server
//! periodically serializes its registrations (pids, worker counts,
//! remaining lease time), latest `REPORT` lines, and boot epoch to a
//! small text file, atomically (`tmp` + `rename`), and a restarted
//! server restores it at boot — clients keep polling as if nothing
//! happened, and the new boot epoch is chosen *greater* than the
//! snapshotted one so epoch monotonicity survives the crash.
//!
//! The format is deliberately line-text (like the wire protocol, like
//! the stats rendering) and self-verifying:
//!
//! ```text
//! PROCCTL-SNAPSHOT v1
//! epoch <u64>
//! app <pid> <nworkers> <lease_remaining_ms>
//! report <pid> <latest report line>
//! end <fnv1a-64 hex of everything above>
//! ```
//!
//! Decoding is total and conservative: a truncated file, a checksum
//! mismatch, an unknown keyword, or a future version all reject cleanly
//! ([`SnapshotError`]) and the server cold-starts — restoring *nothing*
//! is always safe (clients re-register, as they always could), while
//! restoring corrupt state never is. Journals are deliberately not
//! snapshotted: `TRACE` drains are destructive reads of a bounded ring,
//! and replaying stale events after a restart would corrupt the merged
//! timeline — the journal truncates, the epoch tells the merge tooling
//! why.

use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// The codec version this build writes (and the only one it reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// One registered application as persisted: identity, declared
/// parallelism, and how much of its lease was left at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotApp {
    /// The application's registered pid.
    pub pid: u32,
    /// The worker count it registered with.
    pub nworkers: u32,
    /// Lease time remaining at the instant the snapshot was taken; the
    /// restoring server re-arms the lease with this much left, so a
    /// crash-and-restart cannot extend a wedged client's tenure.
    pub lease_remaining: Duration,
}

/// A point-in-time serialization of the server's recoverable state.
///
/// `apps` preserves *registration order* — the partition is computed in
/// registration order, so restoring in the same order reproduces the
/// same CPU-set slices clients were already told about.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// The snapshotting server's boot epoch. A restoring server picks
    /// `max(fresh_epoch, epoch + 1)` so epochs stay monotone across
    /// crash/restart cycles.
    pub epoch: u64,
    /// Registered applications, in registration (= partition) order.
    pub apps: Vec<SnapshotApp>,
    /// Latest `REPORT` line per pid (newline-free by wire construction).
    pub reports: Vec<(u32, String)>,
}

/// Why a snapshot file was rejected (the server then cold-starts).
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read at all. `NotFound` is the ordinary
    /// first-boot case, not corruption.
    Io(io::Error),
    /// The header names a version this build does not speak.
    BadVersion(u32),
    /// The trailer checksum does not match the body: torn write or
    /// on-disk corruption.
    BadChecksum,
    /// The trailer line is missing or incomplete: the file was cut off
    /// mid-write (and the atomic rename never happened, or the disk
    /// lied about durability).
    Truncated,
    /// The body parsed as text but violates the format.
    Malformed(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadVersion(v) => write!(f, "snapshot version v{v} is unsupported"),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot truncated (no trailer)"),
            SnapshotError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit over `bytes` — tiny, dependency-free, and plenty for
/// torn-write detection (this is an integrity check, not a MAC: the
/// snapshot file trusts its directory permissions like the socket
/// does).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl ServerSnapshot {
    /// Renders the snapshot as its on-disk text, trailer included.
    /// Report lines containing a newline (impossible via the wire, which
    /// rejects them) are skipped rather than corrupting the framing.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("PROCCTL-SNAPSHOT v1\n");
        out.push_str(&format!("epoch {}\n", self.epoch));
        for a in &self.apps {
            out.push_str(&format!(
                "app {} {} {}\n",
                a.pid,
                a.nworkers,
                a.lease_remaining.as_millis()
            ));
        }
        for (pid, line) in &self.reports {
            if line.contains('\n') {
                continue;
            }
            out.push_str(&format!("report {pid} {line}\n"));
        }
        out.push_str(&format!("end {:016x}\n", fnv1a(out.as_bytes())));
        out
    }

    /// Parses on-disk text back into a snapshot, verifying the trailer
    /// checksum *before* interpreting the body: corruption is reported
    /// as [`SnapshotError::BadChecksum`] even when it happens to parse.
    pub fn decode(text: &str) -> Result<ServerSnapshot, SnapshotError> {
        // The trailer must be the final, newline-terminated line. A file
        // cut anywhere — mid-body, mid-trailer, before the trailing
        // newline — is Truncated, never a partial restore.
        let Some(body_len) = text
            .strip_suffix('\n')
            .and_then(|t| t.rfind('\n').map(|i| i + 1))
        else {
            return Err(SnapshotError::Truncated);
        };
        let trailer = text[body_len..].trim_end_matches('\n');
        let Some(sum_hex) = trailer.strip_prefix("end ") else {
            return Err(SnapshotError::Truncated);
        };
        let Ok(sum) = u64::from_str_radix(sum_hex.trim(), 16) else {
            return Err(SnapshotError::Truncated);
        };
        if sum != fnv1a(&text.as_bytes()[..body_len]) {
            return Err(SnapshotError::BadChecksum);
        }

        let mut lines = text[..body_len].lines();
        let header = lines.next().unwrap_or_default();
        let version = header
            .strip_prefix("PROCCTL-SNAPSHOT v")
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| SnapshotError::Malformed(format!("bad header {header:?}")))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }

        let mut snap = ServerSnapshot::default();
        for line in lines {
            let mut fields = line.splitn(2, ' ');
            let keyword = fields.next().unwrap_or_default();
            let rest = fields.next().unwrap_or_default();
            match keyword {
                "epoch" => {
                    snap.epoch = rest
                        .parse()
                        .map_err(|_| SnapshotError::Malformed(format!("bad epoch {rest:?}")))?;
                }
                "app" => {
                    let mut f = rest.split_whitespace();
                    let parsed = (
                        f.next().and_then(|v| v.parse::<u32>().ok()),
                        f.next().and_then(|v| v.parse::<u32>().ok()),
                        f.next().and_then(|v| v.parse::<u64>().ok()),
                    );
                    let ((Some(pid), Some(nworkers), Some(ms)), None) = (parsed, f.next()) else {
                        return Err(SnapshotError::Malformed(format!("bad app line {line:?}")));
                    };
                    snap.apps.push(SnapshotApp {
                        pid,
                        nworkers,
                        lease_remaining: Duration::from_millis(ms),
                    });
                }
                "report" => {
                    let mut f = rest.splitn(2, ' ');
                    let Some(pid) = f.next().and_then(|v| v.parse::<u32>().ok()) else {
                        return Err(SnapshotError::Malformed(format!(
                            "bad report line {line:?}"
                        )));
                    };
                    snap.reports
                        .push((pid, f.next().unwrap_or_default().to_string()));
                }
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "unknown keyword {other:?}"
                    )));
                }
            }
        }
        Ok(snap)
    }

    /// Writes the snapshot to `path` atomically: the full rendering goes
    /// to a sibling `.tmp` file, is fsynced, and renamed over `path` —
    /// a reader (or a restarting server) sees either the old complete
    /// snapshot or the new complete snapshot, never a torn mix.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.encode().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads and decodes the snapshot at `path`. A missing file surfaces
    /// as `Io(NotFound)` — the ordinary first-boot case the caller
    /// should treat as "nothing to restore", distinct from the
    /// corruption variants it should count as `snapshot_rejected`.
    pub fn load(path: &Path) -> Result<ServerSnapshot, SnapshotError> {
        let text = std::fs::read_to_string(path).map_err(SnapshotError::Io)?;
        ServerSnapshot::decode(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> ServerSnapshot {
        ServerSnapshot {
            epoch: 0xDEAD_BEEF_1234_5677,
            apps: vec![
                SnapshotApp {
                    pid: 41,
                    nworkers: 8,
                    lease_remaining: Duration::from_millis(12_345),
                },
                SnapshotApp {
                    pid: 9_999_999,
                    nworkers: 1,
                    lease_remaining: Duration::ZERO,
                },
            ],
            reports: vec![
                (41, "jobs_run=100 steals=7".to_string()),
                (9_999_999, String::new()),
            ],
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let snap = sample();
        let decoded = ServerSnapshot::decode(&snap.encode()).expect("decode");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn file_round_trip_is_atomic_and_loadable() {
        let path = std::env::temp_dir().join(format!("procctl-snap-{}.test", std::process::id()));
        let snap = sample();
        snap.write_atomic(&path).expect("write");
        assert_eq!(ServerSnapshot::load(&path).expect("load"), snap);
        // Overwrite-in-place (the periodic path) keeps working.
        let mut snap2 = snap.clone();
        snap2.epoch += 1;
        snap2.write_atomic(&path).expect("rewrite");
        assert_eq!(ServerSnapshot::load(&path).expect("reload"), snap2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_not_found() {
        let err = ServerSnapshot::load(Path::new("/nonexistent/procctl.snap"))
            .expect_err("must not load");
        match err {
            SnapshotError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::NotFound),
            other => panic!("expected Io(NotFound), got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected_cleanly() {
        // A well-formed v2 file with a *valid* checksum: the version
        // gate must fire, not the checksum or parser.
        let mut body = String::from("PROCCTL-SNAPSHOT v2\nepoch 7\n");
        let sum = super::fnv1a(body.as_bytes());
        body.push_str(&format!("end {sum:016x}\n"));
        match ServerSnapshot::decode(&body) {
            Err(SnapshotError::BadVersion(2)) => {}
            other => panic!("expected BadVersion(2), got {other:?}"),
        }
    }

    #[test]
    fn flipped_body_byte_is_a_checksum_mismatch() {
        let text = sample().encode();
        let mut bytes = text.clone().into_bytes();
        // Flip a digit inside the epoch line: still parses as text,
        // still structurally valid — only the checksum can catch it.
        let at = text.find("epoch ").expect("epoch line") + "epoch ".len();
        bytes[at] = if bytes[at] == b'9' { b'8' } else { b'9' };
        let corrupt = String::from_utf8(bytes).expect("ascii");
        match ServerSnapshot::decode(&corrupt) {
            Err(SnapshotError::BadChecksum) => {}
            other => panic!("expected BadChecksum, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary snapshots survive encode → decode bit-exactly.
        #[test]
        fn prop_round_trip(
            epoch in any::<u64>(),
            apps in prop::collection::vec((any::<u32>(), any::<u32>(), 0u64..10_000_000), 0..12),
            reports in prop::collection::vec((any::<u32>(), "[ -~]{0,40}"), 0..8),
        ) {
            let snap = ServerSnapshot {
                epoch,
                apps: apps
                    .into_iter()
                    .map(|(pid, nworkers, ms)| SnapshotApp {
                        pid,
                        nworkers,
                        lease_remaining: Duration::from_millis(ms),
                    })
                    .collect(),
                reports: reports
                    .into_iter()
                    .map(|(pid, line)| (pid, line.trim().to_string()))
                    .collect(),
            };
            let decoded = ServerSnapshot::decode(&snap.encode());
            prop_assert_eq!(decoded.expect("round trip"), snap);
        }

        /// Every proper prefix of a valid file is rejected — a torn
        /// write can never restore partial state.
        #[test]
        fn prop_truncation_always_rejects(cut in any::<usize>()) {
            let text = sample().encode();
            let at = cut % text.len(); // < len: a proper prefix
            prop_assert!(
                ServerSnapshot::decode(&text[..at]).is_err(),
                "truncation at {} decoded", at
            );
        }

        /// Any single corrupted byte is rejected (checksum, trailer, or
        /// structural failure — never a silent wrong restore).
        #[test]
        fn prop_single_byte_corruption_always_rejects(
            at in any::<usize>(),
            xor in 1u8..128,
        ) {
            let text = sample().encode();
            let mut bytes = text.into_bytes();
            let i = at % bytes.len();
            bytes[i] ^= xor;
            let corrupt = String::from_utf8_lossy(&bytes).into_owned();
            prop_assert!(
                ServerSnapshot::decode(&corrupt).is_err(),
                "corruption at {} decoded", i
            );
        }
    }
}
