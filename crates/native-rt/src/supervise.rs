//! A supervised, fault-tolerant wrapper around [`UdsClient`].
//!
//! The paper's control plane is a single centralized server; the 1989
//! prototype never asked what happens when it crashes, hangs, or returns
//! garbage. This module answers: the application keeps running.
//!
//! - Every stream operation carries the configured I/O timeout, so a
//!   wedged server costs bounded latency, never liveness.
//! - A failed connection is retried with exponential backoff plus
//!   deterministic jitter (seeded xorshift), and a successful reconnect
//!   re-REGISTERs before the next poll.
//! - While the server is unreachable the pool runs in **degraded mode**:
//!   the target falls back to the paper's *uncontrolled* behavior — all
//!   `nworkers` runnable, floor of one preserved — and snaps back to the
//!   fair-partition target on the first healthy poll.
//! - An `ERR unregistered` reply (lease expiry, or a restarted server
//!   reached through a still-open proxy connection) is healed in place by
//!   re-registering on the same connection.
//! - A reconnect after a lost connection starts as an *observer* and
//!   classifies what it finds ([`RestartKind`]): a server that answers
//!   the probe poll with a fresh epoch **recovered this registration
//!   from its snapshot** (no re-REGISTER needed — the storm the
//!   snapshot exists to prevent), while an `ERR unregistered` answer
//!   means a cold restart, healed by registering again.
//!
//! Recovery behavior is observable: the supervisor records `reconnects`,
//! `degraded_enters`, `epoch_changes`, `poll_errors`, and
//! `events_shipped` counters, a `degraded` gauge, and a `degraded_ns`
//! histogram (time spent in each degraded episode) into the registry it
//! is given — typically the
//! [`crate::Pool`]'s own registry, so the fault counters travel through
//! the existing REPORT/STATS/Perfetto pipeline alongside the
//! work-stealing counters.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::controller::TargetSlot;
use crate::stats::{Counter, Gauge, Hist, Registry};
use crate::trace::FlightRecorder;
use crate::uds::{
    CpusPollReply, EventsReply, PollReply, PollerGuard, UdsClient, DEFAULT_IO_TIMEOUT,
    DEFAULT_TRACE_MAX,
};

/// Supervision tuning.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Socket path of the control server.
    pub path: PathBuf,
    /// Worker count to register (and the degraded-mode fallback target).
    pub nworkers: u32,
    /// Read/write timeout armed on every connection.
    pub io_timeout: Duration,
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_initial: Duration,
    /// Reconnect delay cap.
    pub backoff_max: Duration,
    /// Seed for the jitter RNG (deterministic for tests).
    pub seed: u64,
}

impl SupervisorConfig {
    /// Defaults: 2 s I/O timeout, 50 ms initial backoff doubling to a
    /// 2 s cap, fixed seed.
    pub fn new(path: impl Into<PathBuf>, nworkers: u32) -> Self {
        SupervisorConfig {
            path: path.into(),
            nworkers,
            io_timeout: DEFAULT_IO_TIMEOUT,
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            seed: 0x5EED_CAB1E,
        }
    }
}

/// How a server restart presented to the supervisor on reconnect —
/// surfaced as a typed event (and `restarts_recovered` /
/// `restarts_cold` counters) so operators can tell a snapshot-recovered
/// restart from a state-losing one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartKind {
    /// The new server instance answered the probe poll with a live
    /// target under a fresh epoch: it restored this registration from
    /// its snapshot and no re-REGISTER was needed.
    Recovered,
    /// The new server instance had never heard of this pid (`ERR
    /// unregistered` under a fresh epoch): it cold-started and the
    /// supervisor re-registered from scratch.
    Cold,
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A [`UdsClient`] that survives server crashes, restarts, hangs, and
/// garbage replies. All methods are non-panicking and bounded in time.
pub struct SupervisedClient {
    cfg: SupervisorConfig,
    registry: Arc<Registry>,
    conn: Option<UdsClient>,
    last_epoch: Option<u64>,
    ever_connected: bool,
    /// Whether the connected server speaks the `POLL <pid> cpus`
    /// extension. Optimistically true after every (re)connect — the
    /// replacement server may be newer — and cleared on the first
    /// `ERR malformed` downgrade, so one old server costs exactly one
    /// wasted request per connection, not one per poll.
    cpus_supported: bool,
    /// Whether the connected server speaks the `EVENTS` flight-recorder
    /// push. Same optimistic-probe lifecycle as `cpus_supported`.
    events_supported: bool,
    /// Flight recorder whose rings [`SupervisedClient::ship_events`]
    /// drains to the server (none by default — see
    /// [`SupervisedClient::with_recorder`]).
    recorder: Option<Arc<FlightRecorder>>,
    backoff: Duration,
    next_attempt: Option<Instant>,
    rng: u64,
    degraded_since: Option<Instant>,
    /// How the most recent server *restart* presented on reconnect
    /// (`None` until a restart has been observed).
    last_restart: Option<RestartKind>,
    reconnects: Counter,
    degraded_enters: Counter,
    epoch_changes: Counter,
    poll_errors: Counter,
    events_shipped: Counter,
    restarts_recovered: Counter,
    restarts_cold: Counter,
    degraded_gauge: Gauge,
    degraded_ns: Hist,
}

impl SupervisedClient {
    /// Creates the supervisor and eagerly attempts a first connection
    /// (failure is not an error — the client starts degraded and keeps
    /// retrying). Fault counters are registered into `registry`.
    pub fn new(cfg: SupervisorConfig, registry: Arc<Registry>) -> Self {
        let mut s = SupervisedClient {
            rng: cfg.seed,
            backoff: cfg.backoff_initial,
            reconnects: registry.counter("reconnects"),
            degraded_enters: registry.counter("degraded_enters"),
            epoch_changes: registry.counter("epoch_changes"),
            poll_errors: registry.counter("poll_errors"),
            events_shipped: registry.counter("events_shipped"),
            restarts_recovered: registry.counter("restarts_recovered"),
            restarts_cold: registry.counter("restarts_cold"),
            degraded_gauge: registry.gauge("degraded"),
            degraded_ns: registry.histogram("degraded_ns"),
            registry,
            cfg,
            conn: None,
            last_epoch: None,
            ever_connected: false,
            cpus_supported: true,
            events_supported: true,
            recorder: None,
            next_attempt: None,
            degraded_since: None,
            last_restart: None,
        };
        s.ensure_connected();
        s
    }

    /// Attaches a flight recorder whose rings the supervisor drains to
    /// the server — [`SupervisedClient::ship_events`] directly, or once
    /// per healthy round from [`SupervisedClient::spawn_poller`]. Pass
    /// [`crate::Pool::recorder`] to stream a pool's scheduling events
    /// into the server's journal.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Whether a connection is currently established.
    pub fn connected(&self) -> bool {
        self.conn.is_some()
    }

    /// The epoch of the last server this client registered with, if any.
    pub fn epoch(&self) -> Option<u64> {
        self.last_epoch
    }

    /// The degraded-mode fallback target: the paper's uncontrolled
    /// behavior, all workers runnable with a floor of one.
    pub fn fallback_target(&self) -> u32 {
        self.cfg.nworkers.max(1)
    }

    /// Clears the backoff gate so the next [`SupervisedClient::poll_target`]
    /// attempts a reconnect immediately. Useful when the caller has
    /// out-of-band knowledge that the server is back (or in tests that
    /// should not wait out the jittered backoff).
    pub fn retry_now(&mut self) {
        self.next_attempt = None;
    }

    fn note_epoch(&mut self, epoch: u64) {
        if self.last_epoch.is_some_and(|prev| prev != epoch) {
            self.epoch_changes.incr();
        }
        self.last_epoch = Some(epoch);
    }

    fn schedule_retry(&mut self) {
        // Full backoff scaled by a jitter factor in [0.5, 1.0): staggered
        // reconnect storms, still bounded by backoff_max.
        let jitter = 0.5 + 0.5 * (xorshift(&mut self.rng) >> 11) as f64 / (1u64 << 53) as f64;
        self.next_attempt = Some(Instant::now() + self.backoff.mul_f64(jitter));
        self.backoff = (self.backoff * 2).min(self.cfg.backoff_max);
    }

    fn disconnect(&mut self) {
        self.conn = None;
        self.schedule_retry();
    }

    fn note_restart(&mut self, kind: RestartKind) {
        self.last_restart = Some(kind);
        match kind {
            RestartKind::Recovered => self.restarts_recovered.incr(),
            RestartKind::Cold => self.restarts_cold.incr(),
        }
    }

    /// How the most recent observed server restart presented: recovered
    /// from snapshot, or cold. `None` until a restart has been seen.
    pub fn last_restart(&self) -> Option<RestartKind> {
        self.last_restart
    }

    /// The reconnect path: come back as an *observer* (a bare connect
    /// sends no REGISTER) and probe with one poll. A live target means
    /// the restarted server recovered this registration from its
    /// snapshot — adopt the new epoch, send nothing. `ERR unregistered`
    /// means a cold restart — register from scratch. Either way an
    /// epoch change is classified and counted; an unchanged epoch is a
    /// plain transport hiccup, not a restart.
    fn reconnect_classified(&mut self) -> std::io::Result<UdsClient> {
        let mut c = UdsClient::connect(&self.cfg.path, self.cfg.io_timeout)?;
        c.set_nworkers(self.cfg.nworkers);
        match c.poll_reply()? {
            PollReply::Target { epoch, .. } => {
                c.adopt_epoch(epoch);
                if self.last_epoch.is_some_and(|prev| prev != epoch) {
                    self.note_restart(RestartKind::Recovered);
                }
            }
            PollReply::Unregistered => {
                let epoch = c.re_register()?;
                if self.last_epoch.is_some_and(|prev| prev != epoch) {
                    self.note_restart(RestartKind::Cold);
                }
            }
        }
        Ok(c)
    }

    fn ensure_connected(&mut self) -> bool {
        if self.conn.is_some() {
            return true;
        }
        if let Some(at) = self.next_attempt {
            if Instant::now() < at {
                return false;
            }
        }
        let attempt = if self.ever_connected {
            self.reconnect_classified()
        } else {
            UdsClient::register_with_timeout(&self.cfg.path, self.cfg.nworkers, self.cfg.io_timeout)
        };
        match attempt {
            Ok(c) => {
                if self.ever_connected {
                    self.reconnects.incr();
                }
                self.ever_connected = true;
                self.note_epoch(c.epoch());
                self.conn = Some(c);
                self.backoff = self.cfg.backoff_initial;
                self.next_attempt = None;
                // A fresh connection may be to an upgraded server: probe
                // the extensions again.
                self.cpus_supported = true;
                self.events_supported = true;
                true
            }
            Err(_) => {
                self.schedule_retry();
                false
            }
        }
    }

    fn enter_degraded(&mut self) {
        if self.degraded_since.is_none() {
            self.degraded_enters.incr();
            self.degraded_gauge.set(1);
            self.degraded_since = Some(Instant::now());
        }
    }

    fn leave_degraded(&mut self) {
        if let Some(at) = self.degraded_since.take() {
            self.degraded_ns.record(at.elapsed().as_nanos() as u64);
            self.degraded_gauge.set(0);
        }
    }

    /// Polls for the current target. `None` means the server is
    /// unreachable (or answered garbage) and the caller should apply
    /// [`SupervisedClient::fallback_target`] — degraded-mode accounting
    /// has already been updated either way.
    pub fn poll_target(&mut self) -> Option<u32> {
        for attempt in 0..2 {
            if !self.ensure_connected() {
                break;
            }
            let reply = self.conn.as_mut().expect("just connected").poll_reply();
            match reply {
                Ok(PollReply::Target { target, epoch }) => {
                    self.note_epoch(epoch);
                    self.leave_degraded();
                    return Some(target);
                }
                Ok(PollReply::Unregistered) => {
                    // Lease lapsed or the server restarted behind a
                    // still-open connection: re-register in place, then
                    // retry the poll once.
                    let conn = self.conn.as_mut().expect("just connected");
                    match conn.re_register() {
                        Ok(epoch) => {
                            if self.last_epoch.is_some_and(|prev| prev != epoch) {
                                // A restarted server reached through a
                                // still-open proxy connection that lost
                                // this pid: a cold restart, healed by the
                                // re-register above.
                                self.note_restart(RestartKind::Cold);
                            }
                            self.note_epoch(epoch);
                            if attempt == 0 {
                                continue;
                            }
                        }
                        Err(_) => {
                            self.poll_errors.incr();
                            self.disconnect();
                        }
                    }
                }
                Err(_) => {
                    self.poll_errors.incr();
                    self.disconnect();
                }
            }
            break;
        }
        self.enter_degraded();
        None
    }

    /// Polls with the CPU-set extension. `Some((target, cpus))` is a
    /// healthy reply; `cpus` is `None` when the server is too old for
    /// the extension (detected via its `ERR malformed` answer, after
    /// which this falls back to a plain poll in the same round and stops
    /// sending the extension until the next reconnect). `None` means
    /// degraded — apply [`SupervisedClient::fallback_target`] and drop
    /// any CPU pinning, since nobody owns the partition anymore.
    pub fn poll_target_cpus(&mut self) -> Option<(u32, Option<Vec<u32>>)> {
        if !self.cpus_supported {
            return self.poll_target().map(|t| (t, None));
        }
        for attempt in 0..2 {
            if !self.ensure_connected() {
                break;
            }
            let reply = self
                .conn
                .as_mut()
                .expect("just connected")
                .poll_cpus_reply();
            match reply {
                Ok(CpusPollReply::Target {
                    target,
                    epoch,
                    cpus,
                }) => {
                    self.note_epoch(epoch);
                    self.leave_degraded();
                    return Some((target, cpus));
                }
                Ok(CpusPollReply::Unregistered) => {
                    let conn = self.conn.as_mut().expect("just connected");
                    match conn.re_register() {
                        Ok(epoch) => {
                            if self.last_epoch.is_some_and(|prev| prev != epoch) {
                                // A restarted server reached through a
                                // still-open proxy connection that lost
                                // this pid: a cold restart, healed by the
                                // re-register above.
                                self.note_restart(RestartKind::Cold);
                            }
                            self.note_epoch(epoch);
                            if attempt == 0 {
                                continue;
                            }
                        }
                        Err(_) => {
                            self.poll_errors.incr();
                            self.disconnect();
                        }
                    }
                }
                Ok(CpusPollReply::Unsupported) => {
                    // Pre-extension server: downgrade for the life of
                    // this connection and answer count-only this round.
                    self.cpus_supported = false;
                    return self.poll_target().map(|t| (t, None));
                }
                Err(_) => {
                    self.poll_errors.incr();
                    self.disconnect();
                }
            }
            break;
        }
        self.enter_degraded();
        None
    }

    /// Drains one batch (up to [`DEFAULT_TRACE_MAX`] events) from the
    /// attached flight recorder and pushes it to the server's journal,
    /// best effort: with no recorder, no connection, or against a
    /// pre-extension server (remembered until the next reconnect, like
    /// the CPU-set downgrade) this is a no-op, and a batch the server
    /// never acknowledged is dropped rather than retried — observability
    /// must not buffer unboundedly against a dead server.
    pub fn ship_events(&mut self) {
        if !self.events_supported || self.conn.is_none() {
            return;
        }
        let Some(recorder) = &self.recorder else {
            return;
        };
        let events = recorder.drain(DEFAULT_TRACE_MAX);
        if events.is_empty() {
            return;
        }
        let reply = match self.conn.as_mut() {
            Some(conn) => conn.push_events(&events),
            None => return,
        };
        match reply {
            Ok(EventsReply::Accepted { epoch }) => {
                self.note_epoch(epoch);
                self.events_shipped.add(events.len() as u64);
            }
            // The next poll re-registers; this batch is gone.
            Ok(EventsReply::Unregistered) => {}
            Ok(EventsReply::Unsupported) => self.events_supported = false,
            Err(_) => {
                self.poll_errors.incr();
                self.disconnect();
            }
        }
    }

    /// Pushes a statistics line to the server, best effort: a failure
    /// tears down the connection (the next poll reconnects) but is not
    /// fatal.
    pub fn report(&mut self, line: &str) {
        if let Some(conn) = self.conn.as_mut() {
            if conn.report(line).is_err() {
                self.disconnect();
            }
        }
    }

    /// Courtesy goodbye, best effort.
    pub fn bye(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = conn.bye();
        }
    }

    /// Spawns a background thread that polls every `interval`, storing
    /// the (healthy or fallback) target — and, against a CPU-set-capable
    /// server, the assigned CPU set — into `slot`, and — when `report`
    /// is true — REPORTing a snapshot of the supervisor's registry (and
    /// everything else in it, e.g. a pool's counters) to the server on
    /// every healthy poll. With a recorder attached
    /// ([`SupervisedClient::with_recorder`]), each round also ships one
    /// batch of flight-recorder events into the server's journal. The
    /// thread exits when the guard drops.
    /// Entering degraded mode clears the slot's CPU set (workers unpin
    /// back to the whole machine); recovery re-publishes it.
    ///
    /// This is the fault-tolerant replacement for
    /// [`UdsClient::spawn_poller`]: a killed or restarted server drives
    /// the slot to the degraded target (all workers runnable) within one
    /// poll interval, and the slot snaps back once the server answers
    /// again.
    pub fn spawn_poller(
        mut self,
        slot: Arc<TargetSlot>,
        interval: Duration,
        report: bool,
    ) -> PollerGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("procctl-supervised-poller".into())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match self.poll_target_cpus() {
                        Some((t, cpus)) => {
                            slot.target
                                .store((t as usize).clamp(1, slot.nworkers), Ordering::Release);
                            // `None` against a pre-extension server keeps
                            // the pool in count-only mode.
                            slot.set_cpus(cpus);
                        }
                        // Degraded: uncontrolled behavior — every worker
                        // runnable (floor of one preserved by max(1)),
                        // and no CPU set: nobody owns the partition, so
                        // workers widen their affinity back out.
                        None => {
                            slot.target.store(slot.nworkers.max(1), Ordering::Release);
                            slot.set_cpus(None);
                        }
                    }
                    if report {
                        let line = self.registry.snapshot().render_line();
                        self.report(&line);
                    }
                    self.ship_events();
                    std::thread::sleep(interval);
                }
                self.bye();
            })
            .expect("spawn supervised poller");
        PollerGuard::from_parts(stop, handle)
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::uds::{UdsServer, UdsServerConfig};
    use std::path::PathBuf;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("procctl-sup-{}-{tag}.sock", std::process::id()))
    }

    fn fast_cfg(path: &std::path::Path, nworkers: u32) -> SupervisorConfig {
        let mut cfg = SupervisorConfig::new(path, nworkers);
        cfg.io_timeout = Duration::from_millis(200);
        cfg.backoff_initial = Duration::from_millis(10);
        cfg.backoff_max = Duration::from_millis(100);
        cfg
    }

    #[test]
    fn starts_degraded_without_a_server_then_recovers() {
        let path = sock_path("late-server");
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 8), Arc::clone(&registry));
        assert!(!sup.connected());
        assert_eq!(sup.poll_target(), None);
        assert_eq!(sup.fallback_target(), 8);
        // Now the server comes up; the supervisor finds it after backoff.
        let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if sup.poll_target() == Some(4) {
                break;
            }
            assert!(Instant::now() < deadline, "never recovered");
            std::thread::sleep(Duration::from_millis(20));
        }
        let snap = registry.snapshot();
        assert!(snap.counters["degraded_enters"] >= 1);
        assert_eq!(snap.gauges["degraded"], 0);
        assert!(snap.histograms["degraded_ns"].count >= 1);
    }

    #[test]
    fn lease_expiry_healed_in_place_by_re_register() {
        let path = sock_path("lease-heal");
        let mut cfg = UdsServerConfig::new(&path, 8);
        cfg.lease_ttl = Duration::from_millis(60);
        cfg.prune_dead = false;
        let _server = UdsServer::start(cfg).expect("server");
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 8), Arc::clone(&registry));
        assert_eq!(sup.poll_target(), Some(8));
        // Let our own lease lapse, then poll: the supervisor must
        // re-register on the same connection and still produce a target.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(sup.poll_target(), Some(8));
    }

    #[test]
    fn snapshot_restart_is_classified_recovered_with_no_re_register() {
        let path = sock_path("restart-recovered");
        let snap = std::env::temp_dir().join(format!(
            "procctl-sup-{}-restart-recovered.snap",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&snap);
        let mut scfg = UdsServerConfig::new(&path, 4);
        scfg.snapshot_path = Some(snap.clone());
        let server = UdsServer::start(scfg.clone()).expect("server");
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 8), Arc::clone(&registry));
        assert_eq!(sup.poll_target(), Some(4));
        let epoch1 = sup.epoch().expect("epoch after first poll");
        // Graceful stop writes the final snapshot; the next instance
        // restores our registration from it before accepting traffic.
        drop(server);
        while sup.poll_target().is_some() {
            // drain until the supervisor notices the dead connection
        }
        let server2 = UdsServer::start(scfg).expect("server2");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            sup.retry_now();
            if sup.poll_target() == Some(4) {
                break;
            }
            assert!(Instant::now() < deadline, "never reconnected");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(sup.last_restart(), Some(RestartKind::Recovered));
        let counters = registry.snapshot().counters;
        assert_eq!(counters["restarts_recovered"], 1);
        assert_eq!(counters["restarts_cold"], 0);
        assert!(
            sup.epoch().expect("epoch after reconnect") > epoch1,
            "boot epochs must be monotone across a recovered restart"
        );
        // The whole point of the snapshot: the recovered server never
        // saw a REGISTER from this client.
        assert_eq!(
            server2.stats().counters["registers"],
            0,
            "recovered restart must not trigger a re-registration storm"
        );
        drop(server2);
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn snapshotless_restart_is_classified_cold_and_re_registers() {
        let path = sock_path("restart-cold");
        let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 8), Arc::clone(&registry));
        assert_eq!(sup.poll_target(), Some(4));
        drop(server);
        while sup.poll_target().is_some() {
            // drain until the supervisor notices the dead connection
        }
        let server2 = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server2");
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            sup.retry_now();
            if sup.poll_target() == Some(4) {
                break;
            }
            assert!(Instant::now() < deadline, "never reconnected");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(sup.last_restart(), Some(RestartKind::Cold));
        let counters = registry.snapshot().counters;
        assert_eq!(counters["restarts_cold"], 1);
        assert_eq!(counters["restarts_recovered"], 0);
        // Cold start lost the registration, so exactly one REGISTER
        // heals it.
        assert_eq!(server2.stats().counters["registers"], 1);
    }

    #[test]
    fn poll_target_cpus_returns_the_assigned_set() {
        let path = sock_path("cpus-healthy");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 8), registry);
        let (target, cpus) = sup.poll_target_cpus().expect("healthy poll");
        assert_eq!(target, 4);
        assert_eq!(cpus.expect("cpu set"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn old_server_downgrades_to_count_only_same_round() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixListener;
        // A pre-extension server: REGISTER and two-field POLL work,
        // anything else (including `POLL <pid> cpus`) is ERR malformed.
        let path = sock_path("cpus-old");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                let fields: Vec<&str> = line.split_whitespace().collect();
                let reply = match fields.as_slice() {
                    ["REGISTER", ..] => "OK 1\n".to_string(),
                    ["POLL", _pid] => "TARGET 3 1\n".to_string(),
                    ["BYE", ..] => return,
                    _ => "ERR malformed\n".to_string(),
                };
                writer.write_all(reply.as_bytes()).expect("write");
            }
        });
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 8), Arc::clone(&registry));
        // First poll: extension probe gets ERR malformed, downgrade, and
        // the SAME call still produces a count-only healthy target.
        assert_eq!(sup.poll_target_cpus(), Some((3, None)));
        assert!(!sup.cpus_supported, "must remember the downgrade");
        // Subsequent polls skip the probe entirely and stay healthy.
        assert_eq!(sup.poll_target_cpus(), Some((3, None)));
        assert_eq!(registry.snapshot().counters["degraded_enters"], 0);
        sup.bye();
        handle.join().expect("old server thread");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ship_events_drains_recorder_into_server_journal() {
        use crate::trace::{EventKind, FlightRecorder};
        use crate::uds::UdsClient;

        let path = sock_path("ship-events");
        let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::new(2, 16, &registry));
        recorder.record(0, EventKind::JobStart, 1);
        recorder.record(1, EventKind::Steal, 2);
        let mut sup = SupervisedClient::new(fast_cfg(&path, 4), Arc::clone(&registry))
            .with_recorder(Arc::clone(&recorder));
        assert_eq!(sup.poll_target(), Some(4));
        sup.ship_events();
        assert_eq!(registry.snapshot().counters["events_shipped"], 2);
        assert_eq!(recorder.resident(), 0, "rings drained");
        // A reader sees the shipped events (after the poll's decision
        // instant) in the server journal.
        let mut reader = UdsClient::register(&path, 1).expect("reader");
        let (_, events) = reader
            .trace(std::process::id(), None)
            .expect("trace")
            .into_events()
            .expect("events reply");
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::JobStart), "{kinds:?}");
        assert!(kinds.contains(&EventKind::Steal), "{kinds:?}");
        assert!(kinds.contains(&EventKind::Decision), "{kinds:?}");
        // Nothing resident → shipping again is a no-op.
        sup.ship_events();
        assert_eq!(registry.snapshot().counters["events_shipped"], 2);
    }

    #[test]
    fn old_server_downgrades_event_shipping_without_errors() {
        use crate::trace::{EventKind, FlightRecorder};
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixListener;
        use std::sync::atomic::AtomicUsize;

        // A pre-extension server: REGISTER/POLL only. EVENTS gets ERR
        // malformed; the supervisor must remember the downgrade and stop
        // sending EVENTS lines on this connection.
        let path = sock_path("ship-old");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).expect("bind");
        let events_lines = Arc::new(AtomicUsize::new(0));
        let events_lines2 = Arc::clone(&events_lines);
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut writer = stream.try_clone().expect("clone");
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line).unwrap_or(0) == 0 {
                    return;
                }
                if line.starts_with("EVENTS") {
                    events_lines2.fetch_add(1, Ordering::Relaxed);
                }
                let fields: Vec<&str> = line.split_whitespace().collect();
                let reply = match fields.as_slice() {
                    ["REGISTER", ..] => "OK 1\n".to_string(),
                    ["POLL", _pid] => "TARGET 2 1\n".to_string(),
                    ["BYE", ..] => return,
                    _ => "ERR malformed\n".to_string(),
                };
                writer.write_all(reply.as_bytes()).expect("write");
            }
        });
        let registry = Arc::new(Registry::new());
        let recorder = Arc::new(FlightRecorder::new(1, 16, &registry));
        let mut sup = SupervisedClient::new(fast_cfg(&path, 4), Arc::clone(&registry))
            .with_recorder(Arc::clone(&recorder));
        assert_eq!(sup.poll_target(), Some(2));
        recorder.record(0, EventKind::JobStart, 0);
        sup.ship_events();
        assert!(!sup.events_supported, "must remember the downgrade");
        assert_eq!(registry.snapshot().counters["events_shipped"], 0);
        // Further batches are not even sent on this connection.
        recorder.record(0, EventKind::JobStart, 1);
        sup.ship_events();
        assert_eq!(events_lines.load(Ordering::Relaxed), 1);
        assert_eq!(sup.poll_target(), Some(2), "connection still healthy");
        sup.bye();
        handle.join().expect("old server thread");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn backoff_grows_and_is_jittered() {
        let path = sock_path("nobody-home");
        let registry = Arc::new(Registry::new());
        let mut sup = SupervisedClient::new(fast_cfg(&path, 4), registry);
        // Consecutive failures double the backoff up to the cap.
        let b0 = sup.backoff;
        sup.poll_target();
        let b1 = sup.backoff;
        assert!(b1 >= b0, "backoff shrank: {b0:?} -> {b1:?}");
        for _ in 0..20 {
            sup.retry_now(); // force an attempt despite backoff
            sup.poll_target();
        }
        assert_eq!(sup.backoff, sup.cfg.backoff_max);
        // The scheduled delay is jittered below the full backoff.
        let at = sup.next_attempt.expect("retry scheduled");
        assert!(at <= Instant::now() + sup.cfg.backoff_max);
    }
}
