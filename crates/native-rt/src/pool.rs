//! A work-stealing worker pool over real OS threads, with process control.
//!
//! The native analog of the modified threads package, rebuilt around
//! per-worker [Chase–Lev deques](crate::deque) instead of one central
//! `Mutex<VecDeque>`:
//!
//! - each worker owns a lock-free deque and runs its own submissions
//!   LIFO off the bottom (the `local_hits` fast path — no lock, no CAS);
//! - external [`Pool::execute`] calls land in a [sharded
//!   injector](crate::injector) (the `injector_pops` path), unless the
//!   caller *is* a worker of this pool, in which case the job goes
//!   straight into that worker's deque;
//! - an empty worker steals FIFO from a random victim, sweeping all
//!   deques with exponential backoff on CAS contention (`steals` /
//!   `steal_fails`);
//! - an idle worker spins through a bounded budget of cheap re-checks
//!   and then parks on its *own* condvar, woken one-at-a-time by
//!   producers — no global `work_cv` thundering herd. The spin phase is
//!   measured into the `spin_before_park_ns` histogram.
//!
//! Process control is unchanged in meaning: **between** jobs — the safe
//! suspension point — a worker compares the pool's count of unsuspended
//! workers against the controller's target and either suspends itself or
//! resumes a suspended colleague. A suspending worker first drains its
//! own deque into the injector, so no submitted job is stranded behind a
//! parked worker. Suspension hand-off is atomic: a resumer claims and
//! signals a parked worker's token *while holding the suspended-list
//! lock*, and a worker abandoning its park (shutdown) must first remove
//! its own token from that list — so a resume can never target a worker
//! that has already woken and left (the lost-wakeup window the central
//! queue version had).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::controller::{Controller, TargetSlot};
use crate::deque::{self, Steal, Stealer, Worker};
use crate::injector::Injector;
use crate::stats::{Counter, Gauge, Hist, Registry, Snapshot};

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job with its submission instant (for queue-wait latency).
struct Task {
    submitted: Instant,
    job: Job,
}

/// Pool counters, mirroring the simulated package's
/// [`uthreads::AppMetrics`].
///
/// `jobs_run == local_hits + injector_pops + steals` always (each
/// executed job is acquired through exactly one of the three paths) —
/// the job-conservation invariant the stress tests assert.
///
/// [`uthreads::AppMetrics`]: ../uthreads/struct.AppMetrics.html
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolMetrics {
    /// Jobs executed.
    pub jobs_run: u64,
    /// Worker self-suspensions.
    pub suspends: u64,
    /// Worker resumptions.
    pub resumes: u64,
    /// Jobs a worker popped from its own deque.
    pub local_hits: u64,
    /// Jobs taken from the shared injector.
    pub injector_pops: u64,
    /// Jobs stolen from another worker's deque.
    pub steals: u64,
    /// Steal attempts that lost a CAS race and had to retry.
    pub steal_fails: u64,
}

/// Suspension parking state (process control, not idleness).
#[derive(Clone, Copy)]
enum ParkState {
    /// Still waiting for a resume.
    Parked,
    /// Claimed by a resumer (the instant it fired, for unpark latency)
    /// or by shutdown (`None`).
    Resumed(Option<Instant>),
}

/// One suspended worker's wakeup channel (the "signal").
struct ParkToken {
    state: Mutex<ParkState>,
    cv: Condvar,
}

/// Why a suspension park ended.
enum SuspendOutcome {
    Resumed,
    Shutdown,
}

/// One idle (out-of-work) worker's private wakeup channel.
struct IdleSlot {
    woken: Mutex<bool>,
    cv: Condvar,
}

/// Bound on the idle spin phase: how many availability polls before a
/// worker commits to parking.
const SPIN_POLLS: u32 = 64;
/// Upper bound for one idle park; a bounded wait guards the unlikely
/// missed-wake interleavings so they cost latency, never liveness.
const IDLE_PARK_POLL: Duration = Duration::from_millis(10);
/// Same bound for suspension parks (shutdown races).
const SUSPEND_PARK_POLL: Duration = Duration::from_millis(50);

thread_local! {
    /// `(pool key, worker deque)` of the pool worker running on this
    /// thread, if any — lets `execute` from inside a job push to the
    /// submitting worker's own deque. The key is the address of the
    /// pool's shared state; the worker's `Arc` keeps that address live
    /// (and unreusable) for as long as the entry is set.
    static CURRENT_WORKER: Cell<(usize, *const ())> = const { Cell::new((0, std::ptr::null())) };
}

/// Clears this worker thread's `CURRENT_WORKER` entry on scope exit.
struct TlsGuard;

impl TlsGuard {
    fn set(key: usize, worker: &Worker<Task>) -> TlsGuard {
        CURRENT_WORKER.with(|c| c.set((key, worker as *const Worker<Task> as *const ())));
        TlsGuard
    }
}

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT_WORKER.with(|c| c.set((0, std::ptr::null())));
    }
}

struct PoolShared {
    /// External submissions (and jobs drained from suspending workers).
    injector: Injector<Task>,
    /// Steal handles for every worker's deque, indexed by worker.
    stealers: Box<[Stealer<Task>]>,
    /// Jobs submitted and not yet finished.
    outstanding: AtomicUsize,
    /// Signaled when `outstanding` hits zero.
    idle_cv: Condvar,
    idle_mu: Mutex<()>,
    /// Unsuspended workers.
    active: AtomicUsize,
    /// Workers suspended by process control, oldest first.
    suspended: Mutex<Vec<Arc<ParkToken>>>,
    /// Workers parked for lack of work.
    sleepers: Mutex<Vec<Arc<IdleSlot>>>,
    /// `sleepers.len()`, readable without the lock (producer fast path).
    nsleepers: AtomicUsize,
    target: Arc<TargetSlot>,
    shutdown: AtomicBool,
    /// Statistics registry behind the handles below (snapshot API).
    registry: Arc<Registry>,
    jobs_run: Counter,
    suspends: Counter,
    resumes: Counter,
    local_hits: Counter,
    injector_pops: Counter,
    steals: Counter,
    steal_fails: Counter,
    /// Live (unsuspended) worker count, sampled at safe points.
    active_gauge: Gauge,
    /// The controller target, sampled at safe points.
    target_gauge: Gauge,
    /// Submission-to-dequeue latency of each job, nanoseconds.
    queue_wait: Hist,
    /// How long each suspension lasted, nanoseconds.
    park: Hist,
    /// Resume-signal-to-wakeup latency, nanoseconds.
    unpark: Hist,
    /// How long an out-of-work worker spun before parking (or finding
    /// work), nanoseconds.
    spin_before_park: Hist,
    /// Busy-wait (1989-style) instead of sleeping when the queues are
    /// empty but work is outstanding.
    idle_spin: bool,
}

/// A controlled work-stealing worker pool.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool of `nworkers` threads registered with `controller`.
    /// `idle_spin` selects period-faithful busy-waiting (true) or the
    /// adaptive spin-then-park protocol (false) when no work is queued.
    pub fn new(controller: &Controller, nworkers: usize, idle_spin: bool) -> Self {
        let target = controller.register(nworkers);
        Self::with_slot(target, nworkers, idle_spin)
    }

    /// Creates a pool whose target is driven externally (e.g. by a
    /// [`crate::UdsClient`] poller talking to a cross-process server)
    /// through the given slot.
    ///
    /// For deployments that must survive server crashes, drive the slot
    /// with [`crate::SupervisedClient::spawn_poller`] (Unix only) and
    /// hand it this pool's [`Pool::registry`]: targets then fall back to
    /// degraded mode through outages, and the supervisor's fault
    /// counters travel with the pool's own stats through REPORT/STATS.
    pub fn with_slot(target: Arc<TargetSlot>, nworkers: usize, idle_spin: bool) -> Self {
        assert!(nworkers >= 1);
        let registry = Arc::new(Registry::new());
        let mut locals = Vec::with_capacity(nworkers);
        let mut stealers = Vec::with_capacity(nworkers);
        for _ in 0..nworkers {
            let (w, s) = deque::deque::<Task>();
            locals.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(PoolShared {
            injector: Injector::new(nworkers),
            stealers: stealers.into_boxed_slice(),
            outstanding: AtomicUsize::new(0),
            idle_cv: Condvar::new(),
            idle_mu: Mutex::new(()),
            active: AtomicUsize::new(nworkers),
            suspended: Mutex::new(Vec::new()),
            sleepers: Mutex::new(Vec::new()),
            nsleepers: AtomicUsize::new(0),
            target,
            shutdown: AtomicBool::new(false),
            jobs_run: registry.counter("jobs_run"),
            suspends: registry.counter("suspends"),
            resumes: registry.counter("resumes"),
            local_hits: registry.counter("local_hits"),
            injector_pops: registry.counter("injector_pops"),
            steals: registry.counter("steals"),
            steal_fails: registry.counter("steal_fails"),
            active_gauge: registry.gauge("active"),
            target_gauge: registry.gauge("target"),
            queue_wait: registry.histogram("queue_wait_ns"),
            park: registry.histogram("park_ns"),
            unpark: registry.histogram("unpark_ns"),
            spin_before_park: registry.histogram("spin_before_park_ns"),
            registry,
            idle_spin,
        });
        let workers = locals
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(&sh, i, w))
                    .expect("spawn worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Submits a job. Callers outside the pool go through the sharded
    /// injector; a job submitting from inside a worker pushes onto that
    /// worker's own deque (the fork-join fast path).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        // Timestamp and box before touching any shared structure, so the
        // instrumentation cannot inflate the contention it measures.
        let task = Task {
            submitted: Instant::now(),
            job: Box::new(job),
        };
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        let key = Arc::as_ptr(&self.shared) as usize;
        let (tls_key, tls_ptr) = CURRENT_WORKER.with(Cell::get);
        if tls_key == key {
            // SAFETY: the entry was set by this thread's own worker_loop
            // for this pool; the Worker lives (pinned) in that frame
            // until the loop returns, which clears the entry first.
            unsafe { (*(tls_ptr as *const Worker<Task>)).push(Box::new(task)) };
        } else {
            self.shared.injector.push(task);
        }
        wake_one(&self.shared);
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_mu.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }

    /// Current number of unsuspended workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// The controller's current target for this pool.
    pub fn target(&self) -> usize {
        self.shared.target.target.load(Ordering::Acquire)
    }

    /// Pool counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_run: self.shared.jobs_run.get(),
            suspends: self.shared.suspends.get(),
            resumes: self.shared.resumes.get(),
            local_hits: self.shared.local_hits.get(),
            injector_pops: self.shared.injector_pops.get(),
            steals: self.shared.steals.get(),
            steal_fails: self.shared.steal_fails.get(),
        }
    }

    /// The pool's statistics registry (counters, live-vs-target gauges,
    /// queue-wait, park/unpark, and spin-before-park histograms).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A point-in-time copy of every pool statistic.
    pub fn stats(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let sh = &self.shared;
        sh.shutdown.store(true, Ordering::Release);
        // Wake idle sleepers...
        {
            let mut sleepers = sh.sleepers.lock();
            let n = sleepers.len();
            sh.nsleepers.fetch_sub(n, Ordering::SeqCst);
            for s in sleepers.drain(..) {
                *s.woken.lock() = true;
                s.cv.notify_one();
            }
        }
        // ...and suspended workers (claimed under the list lock, like a
        // resume, so the hand-off race cannot recur here).
        {
            let mut suspended = sh.suspended.lock();
            for t in suspended.drain(..) {
                *t.state.lock() = ParkState::Resumed(None);
                t.cv.notify_one();
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Wakes one idle-parked worker, if any (producer side).
fn wake_one(sh: &PoolShared) {
    if sh.nsleepers.load(Ordering::SeqCst) == 0 {
        return;
    }
    let slot = {
        let mut sleepers = sh.sleepers.lock();
        let s = sleepers.pop();
        if s.is_some() {
            sh.nsleepers.fetch_sub(1, Ordering::SeqCst);
        }
        s
    };
    if let Some(s) = slot {
        *s.woken.lock() = true;
        s.cv.notify_one();
    }
}

/// True when some queue (injector or any worker deque) appears nonempty.
fn work_available(sh: &PoolShared) -> bool {
    !sh.injector.is_empty() || sh.stealers.iter().any(|s| !s.is_empty())
}

/// Acquires one task: own deque, then injector, then stealing.
fn find_task(sh: &PoolShared, worker: &Worker<Task>, index: usize, rng: &mut u64) -> Option<Task> {
    if let Some(t) = worker.pop() {
        sh.local_hits.incr();
        return Some(*t);
    }
    if let Some(t) = sh.injector.pop(index) {
        sh.injector_pops.incr();
        return Some(t);
    }
    steal_task(sh, index, rng)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Sweeps the other workers' deques from a random start, with
/// exponential backoff between sweeps while CAS races persist.
fn steal_task(sh: &PoolShared, index: usize, rng: &mut u64) -> Option<Task> {
    let n = sh.stealers.len();
    if n <= 1 {
        return None;
    }
    let mut backoff: u32 = 0;
    loop {
        let start = (xorshift(rng) as usize) % n;
        let mut contended = false;
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == index {
                continue;
            }
            match sh.stealers[victim].steal() {
                Steal::Success(t) => {
                    sh.steals.incr();
                    return Some(*t);
                }
                Steal::Retry => {
                    sh.steal_fails.incr();
                    contended = true;
                }
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
        for _ in 0..(1u32 << backoff) {
            std::hint::spin_loop();
        }
        backoff = (backoff + 1).min(10);
    }
}

/// Empties a suspending worker's deque into the injector so its queued
/// jobs stay runnable while it is parked.
fn drain_local(sh: &PoolShared, worker: &Worker<Task>) {
    let mut drained = false;
    while let Some(t) = worker.pop() {
        sh.injector.push(*t);
        drained = true;
    }
    if drained {
        wake_one(sh);
    }
}

/// Parks a worker suspended by process control until a resumer (or
/// shutdown) claims its token.
fn park_suspended(sh: &PoolShared) -> SuspendOutcome {
    let token = Arc::new(ParkToken {
        state: Mutex::new(ParkState::Parked),
        cv: Condvar::new(),
    });
    sh.suspended.lock().push(Arc::clone(&token));
    let parked_at = Instant::now();
    let mut st = token.state.lock();
    loop {
        if let ParkState::Resumed(signaled_at) = *st {
            drop(st);
            sh.park.record(parked_at.elapsed().as_nanos() as u64);
            if let Some(at) = signaled_at {
                sh.unpark.record(at.elapsed().as_nanos() as u64);
            }
            return SuspendOutcome::Resumed;
        }
        if sh.shutdown.load(Ordering::Acquire) {
            // To leave without being resumed we must first withdraw the
            // token; if a resumer already popped it, the claim is ours
            // to honor — loop until the Resumed mark lands.
            drop(st);
            let mut list = sh.suspended.lock();
            if let Some(pos) = list.iter().position(|t| Arc::ptr_eq(t, &token)) {
                list.remove(pos);
                drop(list);
                sh.park.record(parked_at.elapsed().as_nanos() as u64);
                return SuspendOutcome::Shutdown;
            }
            drop(list);
            st = token.state.lock();
            continue;
        }
        token.cv.wait_for(&mut st, SUSPEND_PARK_POLL);
    }
}

/// Resumes one suspended worker, if any. The token is claimed and
/// signaled while the suspended-list lock is held, making the hand-off
/// atomic with respect to both other resumers and the worker's own
/// shutdown withdrawal.
fn resume_one(sh: &PoolShared) {
    let mut list = sh.suspended.lock();
    let Some(token) = list.pop() else { return };
    sh.active.fetch_add(1, Ordering::AcqRel);
    sh.resumes.incr();
    *token.state.lock() = ParkState::Resumed(Some(Instant::now()));
    token.cv.notify_one();
}

/// Spins through a bounded budget of availability checks, then parks on
/// this worker's private slot until a producer wakes it (idle protocol).
fn idle_spin_then_park(sh: &PoolShared, slot: &Arc<IdleSlot>) {
    let started = Instant::now();
    for poll in 0..SPIN_POLLS {
        if sh.shutdown.load(Ordering::Acquire) || work_available(sh) {
            sh.spin_before_park
                .record(started.elapsed().as_nanos() as u64);
            return;
        }
        for _ in 0..(1u32 << (poll / 8).min(6)) {
            std::hint::spin_loop();
        }
        if poll % 8 == 7 {
            std::thread::yield_now();
        }
    }
    // Commit to parking: publish the slot, then re-check, so a producer
    // either sees us in the list or we see its work.
    *slot.woken.lock() = false;
    {
        let mut sleepers = sh.sleepers.lock();
        sleepers.push(Arc::clone(slot));
        sh.nsleepers.fetch_add(1, Ordering::SeqCst);
    }
    sh.spin_before_park
        .record(started.elapsed().as_nanos() as u64);
    if sh.shutdown.load(Ordering::Acquire) || work_available(sh) {
        unregister_sleeper(sh, slot);
        return;
    }
    {
        let mut woken = slot.woken.lock();
        while !*woken && !sh.shutdown.load(Ordering::Acquire) {
            slot.cv.wait_for(&mut woken, IDLE_PARK_POLL);
            if !*woken && work_available(sh) {
                break; // timed-out liveness path
            }
        }
    }
    unregister_sleeper(sh, slot);
}

/// Removes `slot` from the sleeper list if a waker has not already
/// popped it (the timeout and early-exit paths).
fn unregister_sleeper(sh: &PoolShared, slot: &Arc<IdleSlot>) {
    let mut sleepers = sh.sleepers.lock();
    if let Some(pos) = sleepers.iter().position(|s| Arc::ptr_eq(s, slot)) {
        sleepers.remove(pos);
        sh.nsleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(sh: &Arc<PoolShared>, index: usize, worker: Worker<Task>) {
    let _tls = TlsGuard::set(Arc::as_ptr(sh) as usize, &worker);
    let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1) | 1;
    let idle_slot = Arc::new(IdleSlot {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // --- Safe suspension point: no job held, no lock held. ---
        let target = sh.target.target.load(Ordering::Acquire);
        let active = sh.active.load(Ordering::Acquire);
        sh.active_gauge.set(active as i64);
        sh.target_gauge.set(target as i64);
        if active > target && active > 1 {
            // Suspend self (compare-and-swap guards racing suspenders).
            if sh
                .active
                .compare_exchange(active, active - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                sh.suspends.incr();
                // Publish queued jobs before parking: nothing may be
                // stranded behind a suspended worker.
                drain_local(sh, &worker);
                match park_suspended(sh) {
                    SuspendOutcome::Resumed => continue, // re-enter the safe point
                    SuspendOutcome::Shutdown => return,
                }
            }
        } else if active < target {
            resume_one(sh);
        }
        // --- Acquire and run. ---
        match find_task(sh, &worker, index, &mut rng) {
            Some(task) => {
                // Recorded with no lock held (the sample starts at
                // submission time, before the producer touched a shard).
                sh.queue_wait
                    .record(task.submitted.elapsed().as_nanos() as u64);
                (task.job)();
                sh.jobs_run.incr();
                if sh.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = sh.idle_mu.lock();
                    sh.idle_cv.notify_all();
                }
            }
            None => {
                if sh.idle_spin {
                    // Period-faithful busy wait: burn a short slice, then
                    // re-check (lets the OS preempt us naturally).
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                } else {
                    idle_spin_then_park(sh, &idle_slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn controller(cpus: usize) -> Controller {
        Controller::new(cpus, Duration::from_millis(10))
    }

    #[test]
    fn runs_all_jobs() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().jobs_run, 100);
    }

    #[test]
    fn job_acquisition_paths_conserve_jobs() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..500 {
            pool.execute(|| std::hint::black_box(()));
        }
        pool.wait_idle();
        let m = pool.metrics();
        assert_eq!(m.jobs_run, 500);
        assert_eq!(
            m.local_hits + m.injector_pops + m.steals,
            m.jobs_run,
            "every job acquired exactly once: {m:?}"
        );
    }

    #[test]
    fn worker_submissions_take_the_local_fast_path() {
        let c = controller(2);
        let pool = Arc::new(Pool::new(&c, 2, false));
        let counter = Arc::new(AtomicUsize::new(0));
        // One root job fans out children from inside the pool.
        let (p, k) = (Arc::clone(&pool), Arc::clone(&counter));
        pool.execute(move || {
            for _ in 0..64 {
                let k2 = Arc::clone(&k);
                p.execute(move || {
                    k2.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        let m = pool.metrics();
        assert!(
            m.local_hits > 0,
            "in-pool submissions should hit the local deque: {m:?}"
        );
        assert_eq!(m.local_hits + m.injector_pops + m.steals, m.jobs_run);
    }

    #[test]
    fn oversized_pool_suspends_down_to_target() {
        let c = controller(2);
        let pool = Pool::new(&c, 8, false);
        assert_eq!(pool.target(), 2);
        // Keep some work flowing so workers pass safe points.
        for _ in 0..200 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(200)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.active() > 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "never suspended: active={}",
                pool.active()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        assert!(pool.metrics().suspends >= 5);
    }

    #[test]
    fn workers_resume_when_target_grows() {
        let c = controller(4);
        let a = Pool::new(&c, 8, false);
        // Squeeze pool a with a competitor.
        {
            let b = Pool::new(&c, 8, false);
            c.recompute_now();
            assert_eq!(a.target(), 2);
            for _ in 0..400 {
                a.execute(|| std::thread::sleep(Duration::from_micros(100)));
                b.execute(|| std::thread::sleep(Duration::from_micros(100)));
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while a.active() > 3 {
                assert!(std::time::Instant::now() < deadline, "a never shrank");
                std::thread::sleep(Duration::from_millis(5));
            }
            a.wait_idle();
            b.wait_idle();
        } // b drops; its share is released.
        c.recompute_now();
        assert_eq!(a.target(), 4);
        for _ in 0..400 {
            a.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.active() < 4 {
            assert!(std::time::Instant::now() < deadline, "a never grew back");
            std::thread::sleep(Duration::from_millis(5));
        }
        a.wait_idle();
        assert!(a.metrics().resumes >= 1);
    }

    #[test]
    fn stats_cover_latency_histograms_and_gauges() {
        let c = controller(2);
        let pool = Pool::new(&c, 6, false);
        for _ in 0..300 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        // Wait for process control to actually park someone.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.metrics().suspends == 0 {
            assert!(std::time::Instant::now() < deadline, "no worker suspended");
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        let snap = pool.stats();
        // The classic counters live in the registry too.
        assert_eq!(snap.counters["jobs_run"], 300);
        assert!(snap.counters["suspends"] >= 1);
        assert_eq!(
            snap.counters["local_hits"] + snap.counters["injector_pops"] + snap.counters["steals"],
            300
        );
        // Every job passed through the queue-wait histogram.
        assert_eq!(snap.histograms["queue_wait_ns"].count, 300);
        assert!(snap.histograms["queue_wait_ns"].quantile(0.5).is_some());
        // Gauges were sampled at safe points.
        assert_eq!(snap.gauges["target"], 2);
        assert!(snap.gauges["active"] >= 1);
        // Park duration is recorded when a parked worker wakes — which for
        // a still-suspended worker happens at shutdown. The registry
        // outlives the pool, so snapshot it after the drop.
        let registry = pool.registry();
        drop(pool);
        assert!(registry.snapshot().histograms["park_ns"].count >= 1);
    }

    #[test]
    fn idle_workers_record_spin_before_park() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..20 {
            pool.execute(|| {});
        }
        pool.wait_idle();
        // Give the workers time to run out of work and park.
        std::thread::sleep(Duration::from_millis(50));
        let snap = pool.stats();
        assert!(
            snap.histograms["spin_before_park_ns"].count >= 1,
            "idle workers should have measured their spin phase"
        );
    }

    #[test]
    fn drop_wakes_suspended_workers() {
        let c = controller(1);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..50 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        pool.wait_idle();
        drop(pool); // Must not hang on suspended workers.
    }

    /// Regression test for the lost-wakeup window: a resume racing a
    /// park/shutdown must never target a worker that already woke and
    /// left. The target is flapped between 1 and `n` while jobs flow, and
    /// each round ends with a drop mid-churn — under the old non-atomic
    /// hand-off this wedged or double-counted `active`; with the atomic
    /// hand-off every round joins cleanly and `active` never exceeds the
    /// worker count.
    #[test]
    fn resume_racing_park_and_shutdown_stays_sound() {
        for round in 0..20 {
            let n = 4;
            let slot = Arc::new(TargetSlot {
                target: AtomicUsize::new(n),
                nworkers: n,
            });
            let pool = Pool::with_slot(Arc::clone(&slot), n, false);
            for flip in 0..40 {
                slot.target
                    .store(if flip % 2 == 0 { 1 } else { n }, Ordering::Release);
                for _ in 0..5 {
                    pool.execute(|| std::hint::black_box(()));
                }
                assert!(pool.active() <= n, "phantom resume inflated active");
                if flip % 8 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            // Drop while suspends/resumes are likely in flight.
            if round % 2 == 0 {
                pool.wait_idle();
            }
            drop(pool); // must join all workers, every time
        }
    }

    #[test]
    fn arc_pool_handle_works() {
        let c = controller(2);
        let pool = Arc::new(Pool::new(&c, 2, false));
        let counter = Arc::new(AtomicUsize::new(0));
        let k = Arc::clone(&counter);
        pool.execute(move || {
            k.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spin_mode_also_completes() {
        let c = controller(2);
        let pool = Pool::new(&c, 4, true);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }
}
