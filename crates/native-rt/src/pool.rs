//! A work-stealing worker pool over real OS threads, with process control.
//!
//! The native analog of the modified threads package, rebuilt around
//! per-worker [Chase–Lev deques](crate::deque) instead of one central
//! `Mutex<VecDeque>`:
//!
//! - each worker owns a lock-free deque and runs its own submissions
//!   LIFO off the bottom (the `local_hits` fast path — no lock, no CAS);
//! - external [`Pool::execute`] calls land in a [sharded
//!   injector](crate::injector) (the `injector_pops` path), unless the
//!   caller *is* a worker of this pool, in which case the job goes
//!   straight into that worker's deque;
//! - an empty worker steals FIFO from the topologically *nearest*
//!   victims first — SMT sibling, then same-LLC, then same-socket, then
//!   remote rings (see [`crate::topology`]), randomizing only within a
//!   tier — with exponential backoff on CAS contention (`steals` /
//!   `steal_fails` / `steal_tier_*`). Suspended workers drop out of the
//!   victim rings (their deques are drained, by invariant empty);
//! - an idle worker spins through an *adaptive* budget of cheap
//!   re-checks — an EWMA of its recent wait-for-work latency, clamped
//!   to [1µs, 100µs] — and then parks on its *own* condvar, woken
//!   one-at-a-time by producers — no global `work_cv` thundering herd.
//!   The spin phase is measured into the `spin_before_park_ns`
//!   histogram and the live budget into the `spin_budget` gauge;
//! - when the control plane assigns a concrete CPU set
//!   ([`TargetSlot::set_cpus`]) and the pool was built with
//!   [`PoolConfig::pin`], each worker pins itself to its CPU via
//!   `sched_setaffinity` and re-pins on every assignment change
//!   (`affinity_applied` gauge); with no set assigned, pinned workers
//!   fall back to the whole machine (count-only / degraded mode).
//!
//! Process control is unchanged in meaning: **between** jobs — the safe
//! suspension point — a worker compares the pool's count of unsuspended
//! workers against the controller's target and either suspends itself or
//! resumes a suspended colleague. A suspending worker first drains its
//! own deque into the injector, so no submitted job is stranded behind a
//! parked worker. Suspension hand-off is atomic: a resumer claims and
//! signals a parked worker's token *while holding the suspended-list
//! lock*, and a worker abandoning its park (shutdown) must first remove
//! its own token from that list — so a resume can never target a worker
//! that has already woken and left (the lost-wakeup window the central
//! queue version had).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::controller::{Controller, TargetSlot};
use crate::crlock::{Admission, CrConfig, CrGate};
use crate::deque::{self, Steal, Stealer, Worker};
use crate::injector::Injector;
use crate::stats::{Counter, Gauge, Hist, Registry, Snapshot};
use crate::topology::{self, CpuTopology, NUM_STEAL_TIERS, STEAL_TIER_NAMES};
use crate::trace::{self, EventKind, FlightRecorder};

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A queued job with its submission instant (for queue-wait latency).
struct Task {
    submitted: Instant,
    job: Job,
}

/// Pool counters, mirroring the simulated package's
/// [`uthreads::AppMetrics`].
///
/// `jobs_run == local_hits + injector_pops + steals` always (each
/// executed job is acquired through exactly one of the three paths) —
/// the job-conservation invariant the stress tests assert.
///
/// [`uthreads::AppMetrics`]: ../uthreads/struct.AppMetrics.html
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolMetrics {
    /// Jobs executed.
    pub jobs_run: u64,
    /// Worker self-suspensions.
    pub suspends: u64,
    /// Worker resumptions.
    pub resumes: u64,
    /// Jobs a worker popped from its own deque.
    pub local_hits: u64,
    /// Jobs taken from the shared injector.
    pub injector_pops: u64,
    /// Jobs stolen from another worker's deque.
    pub steals: u64,
    /// Steal attempts that lost a CAS race and had to retry.
    pub steal_fails: u64,
    /// Successful steals broken out by victim distance
    /// ([`STEAL_TIER_NAMES`] order: smt, llc, socket, remote); the
    /// entries sum to `steals`.
    pub steal_tier_hits: [u64; NUM_STEAL_TIERS],
    /// Victims passed over because they were suspended (their deques
    /// are drained before parking, so probing them is pure waste).
    pub steal_skips_suspended: u64,
    /// Jobs whose panic was caught and isolated by the worker
    /// ([`PoolConfig::isolate_panics`]). Panicked jobs still count in
    /// `jobs_run` — they were acquired and executed, so the conservation
    /// invariant is unaffected; this counter is the failed subset.
    pub jobs_panicked: u64,
    /// Worker threads the watchdog replaced after they died (a panic
    /// escaped with isolation off). Requires
    /// [`WatchdogConfig::respawn`].
    pub workers_respawned: u64,
    /// Stall episodes the watchdog opened (a running worker's heartbeat
    /// went stale past the threshold).
    pub stalls_detected: u64,
    /// Unpark nudges the watchdog issued to long-parked workers while
    /// work was visibly available (missed-wakeup insurance).
    pub stall_nudges: u64,
}

/// Suspension parking state (process control, not idleness).
#[derive(Clone, Copy)]
enum ParkState {
    /// Still waiting for a resume.
    Parked,
    /// Claimed by a resumer (the instant it fired, for unpark latency)
    /// or by shutdown (`None`).
    Resumed(Option<Instant>),
}

/// One suspended worker's wakeup channel (the "signal").
struct ParkToken {
    state: Mutex<ParkState>,
    cv: Condvar,
}

/// Why a suspension park ended; `Resumed` carries the instant the
/// resume signal fired (None when claimed by shutdown teardown).
enum SuspendOutcome {
    Resumed(Option<Instant>),
    Shutdown,
}

/// One idle (out-of-work) worker's private wakeup channel.
struct IdleSlot {
    woken: Mutex<bool>,
    cv: Condvar,
}

/// Floor of the adaptive idle-spin budget: always worth a microsecond
/// of re-checks before paying for a park/unpark round trip.
const SPIN_BUDGET_MIN_NS: u64 = 1_000;
/// Ceiling of the adaptive idle-spin budget: past 100µs of spinning the
/// burned cycles dwarf any wakeup latency saved.
const SPIN_BUDGET_MAX_NS: u64 = 100_000;
/// Starting budget before any wait has been observed (≈ the old fixed
/// 64-poll spin on contemporary hardware).
const SPIN_BUDGET_START_NS: u64 = 20_000;
/// Upper bound for one idle park; a bounded wait guards the unlikely
/// missed-wake interleavings so they cost latency, never liveness.
const IDLE_PARK_POLL: Duration = Duration::from_millis(10);
/// Same bound for suspension parks (shutdown races).
const SUSPEND_PARK_POLL: Duration = Duration::from_millis(50);

/// Heartbeat states, packed into the low two bits of the per-worker
/// heartbeat word (the upper 62 bits are the timestamp in nanoseconds
/// since [`trace::clock_origin`]).
const HB_IDLE: u64 = 0;
const HB_RUNNING: u64 = 1;
const HB_PARKED: u64 = 2;
const HB_SUSPENDED: u64 = 3;

/// Packs a heartbeat word: `(ts_ns << 2) | state`.
fn pack_heartbeat(ts_ns: u64, state: u64) -> u64 {
    (ts_ns << 2) | state
}

/// Stall-watchdog tuning ([`PoolConfig::watchdog`]).
///
/// The watchdog is a monitor thread that classifies every worker from
/// its heartbeat word — *running* (mid-job), *parked* (idle), or
/// *suspended* (process control) — and escalates when a running worker
/// makes no progress past `stall_threshold`: log line →
/// `stalls_detected` counter + [`EventKind::Stall`] trace event →
/// unpark nudge for long-parked workers with work visibly queued →
/// (opt-in) respawn of a worker thread that died outright.
#[derive(Clone, Debug)]
pub struct WatchdogConfig {
    /// How often the watchdog scans the heartbeats.
    pub interval: Duration,
    /// A running worker whose heartbeat is older than this is stalled.
    pub stall_threshold: Duration,
    /// Wake one idle-parked worker when a parked heartbeat goes stale
    /// past the threshold while the queues are visibly nonempty.
    pub nudge: bool,
    /// Replace worker threads that died (a panic escaped with
    /// [`PoolConfig::isolate_panics`] off). The replacement runs on a
    /// fresh deque; the dead worker's queued tasks stay stealable
    /// through its registered stealer.
    pub respawn: bool,
}

impl WatchdogConfig {
    /// A watchdog scanning at half the stall threshold (so a stall is
    /// detected within 1.5× the threshold, comfortably inside the 2×
    /// detection bound the chaos tests assert), nudging enabled,
    /// respawn off.
    pub fn new(stall_threshold: Duration) -> Self {
        WatchdogConfig {
            interval: (stall_threshold / 2).max(Duration::from_millis(1)),
            stall_threshold,
            nudge: true,
            respawn: false,
        }
    }
}

/// Per-worker adaptive spin control: an EWMA (α = 1/4) of this worker's
/// observed wait-for-work latencies drives how long it spins before
/// parking. Short waits → spin a bit longer and skip the park; long
/// waits → park almost immediately and let the CPU go — the budget the
/// concurrency-restriction literature says must track observed latency.
struct SpinState {
    /// Smoothed wait latency; 0 until the first observation.
    ewma_ns: u64,
    /// Current spin budget, `2×ewma` clamped to
    /// [`SPIN_BUDGET_MIN_NS`, `SPIN_BUDGET_MAX_NS`] — except that waits
    /// far beyond the ceiling drop the budget to the floor (parking is
    /// then a rounding error, so spinning longer buys nothing).
    budget_ns: u64,
}

impl SpinState {
    fn new() -> SpinState {
        SpinState {
            ewma_ns: 0,
            budget_ns: SPIN_BUDGET_START_NS,
        }
    }

    /// Folds one observed wait (spin only, or spin + park) into the
    /// EWMA and recomputes the budget.
    fn observe_wait(&mut self, ns: u64) {
        self.ewma_ns = if self.ewma_ns == 0 {
            ns
        } else {
            self.ewma_ns - self.ewma_ns / 4 + ns / 4
        };
        self.budget_ns = if self.ewma_ns <= SPIN_BUDGET_MAX_NS {
            self.ewma_ns
                .saturating_mul(2)
                .clamp(SPIN_BUDGET_MIN_NS, SPIN_BUDGET_MAX_NS)
        } else {
            SPIN_BUDGET_MIN_NS
        };
    }
}

thread_local! {
    /// `(pool key, worker deque)` of the pool worker running on this
    /// thread, if any — lets `execute` from inside a job push to the
    /// submitting worker's own deque. The key is the address of the
    /// pool's shared state; the worker's `Arc` keeps that address live
    /// (and unreusable) for as long as the entry is set.
    static CURRENT_WORKER: Cell<(usize, *const ())> = const { Cell::new((0, std::ptr::null())) };
}

/// Clears this worker thread's `CURRENT_WORKER` entry on scope exit.
struct TlsGuard;

impl TlsGuard {
    fn set(key: usize, worker: &Worker<Task>) -> TlsGuard {
        CURRENT_WORKER.with(|c| c.set((key, worker as *const Worker<Task> as *const ())));
        TlsGuard
    }
}

impl Drop for TlsGuard {
    fn drop(&mut self) {
        CURRENT_WORKER.with(|c| c.set((0, std::ptr::null())));
    }
}

struct PoolShared {
    /// External submissions (and jobs drained from suspending workers).
    injector: Injector<Task>,
    /// Steal handles for every worker's deque, indexed by worker.
    stealers: Box<[Stealer<Task>]>,
    /// Jobs submitted and not yet finished.
    // sched-atomic(handoff): the final fetch_sub(AcqRel) publishes the
    // last job's writes to wait_idle's Acquire load before idle_cv fires.
    outstanding: AtomicUsize,
    /// Signaled when `outstanding` hits zero.
    idle_cv: Condvar,
    idle_mu: Mutex<()>,
    /// Unsuspended workers.
    // sched-atomic(handoff): the suspend/resume CAS (AcqRel) orders the
    // deque drain against stealers observing the new count.
    active: AtomicUsize,
    /// Workers suspended by process control, oldest first.
    suspended: Mutex<Vec<Arc<ParkToken>>>,
    /// Per-worker "suspended" flags, indexed like `stealers`: set after
    /// a suspending worker drains its deque (so the deque is provably
    /// empty while the flag is up) and cleared by the worker itself on
    /// resume. Stealers skip flagged victims instead of probing their
    /// permanently-empty deques.
    // sched-atomic(handoff): Release store after the drain publishes the
    // emptied deque; stealers' Acquire load pairs with it.
    suspended_flags: Box<[AtomicBool]>,
    /// Per-worker heartbeat words, `(ns_since_origin << 2) | state`
    /// (see `HB_*`), stamped by each worker at job pickup and at every
    /// park/unpark/suspend/resume transition. The watchdog reads them to
    /// classify workers; a torn or slightly stale read costs at most one
    /// scan interval of detection latency, never correctness.
    // sched-atomic(relaxed): monitoring statistic — no data is published
    // under it, and the watchdog tolerates staleness by design.
    heartbeats: Box<[AtomicU64]>,
    /// The worker threads, indexed like `stealers`, shared so the
    /// watchdog can detect a dead thread (`is_finished`) and install a
    /// replacement. `None` only transiently while a respawn is in
    /// flight.
    worker_handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Workers parked for lack of work.
    sleepers: Mutex<Vec<Arc<IdleSlot>>>,
    /// `sleepers.len()`, readable without the lock (producer fast path).
    // sched-atomic(seqcst): Dekker store-load with the producer: sleeper
    // publishes nsleepers then re-checks work; producer publishes work
    // then reads nsleepers. Both sides need the total order.
    nsleepers: AtomicUsize,
    target: Arc<TargetSlot>,
    // sched-atomic(handoff): Release store in shutdown() publishes the
    // final queue state to workers' Acquire re-check before they exit.
    shutdown: AtomicBool,
    /// Statistics registry behind the handles below (snapshot API).
    registry: Arc<Registry>,
    jobs_run: Counter,
    suspends: Counter,
    resumes: Counter,
    local_hits: Counter,
    injector_pops: Counter,
    steals: Counter,
    steal_fails: Counter,
    /// Successful steals by victim distance tier (`steal_tier_smt`,
    /// `steal_tier_llc`, `steal_tier_socket`, `steal_tier_remote`).
    steal_tier_hits: [Counter; NUM_STEAL_TIERS],
    /// Suspended victims skipped during steal sweeps.
    steal_skips_suspended: Counter,
    /// Live (unsuspended) worker count, sampled at safe points.
    active_gauge: Gauge,
    /// The controller target, sampled at safe points.
    target_gauge: Gauge,
    /// Workers currently holding a narrow (own-CPU) affinity pin.
    // sched-atomic(relaxed): feeds the affinity_applied gauge only; no
    // data is published under it.
    npinned: AtomicUsize,
    /// Gauge mirror of `npinned` (0 when pinning is off or count-only).
    affinity_applied: Gauge,
    /// The most recently recomputed adaptive spin budget, nanoseconds.
    spin_budget: Gauge,
    /// Submission-to-dequeue latency of each job, nanoseconds.
    queue_wait: Hist,
    /// How long each suspension lasted, nanoseconds.
    park: Hist,
    /// Resume-signal-to-wakeup latency, nanoseconds.
    unpark: Hist,
    /// How long an out-of-work worker spun before parking (or finding
    /// work), nanoseconds.
    spin_before_park: Hist,
    /// Wake signal (resume or idle unpark) to next job dequeue,
    /// nanoseconds — "how long did a runnable worker wait to run".
    wake_to_run: Hist,
    /// Suspension safe point entered to first job after resume,
    /// nanoseconds (the full decision→effect latency of one suspend).
    suspend_to_resume: Hist,
    /// Victim-ring rebuilds triggered by CPU-set changes (dynamic
    /// re-tiering around the new home CPU).
    retier_events: Counter,
    /// Job panics caught and isolated (the worker survived).
    jobs_panicked: Counter,
    /// Dead worker threads the watchdog replaced.
    workers_respawned: Counter,
    /// Stall episodes the watchdog opened.
    stalls_detected: Counter,
    /// Unpark nudges issued to stale parked workers.
    stall_nudges: Counter,
    /// Duration of each completed stall episode (detection to first
    /// observed progress), nanoseconds.
    stall_ns: Hist,
    /// The per-worker flight-recorder rings (may be disabled).
    recorder: Arc<FlightRecorder>,
    /// Concurrency-restricting gate over the injector sweep (see
    /// [`PoolConfig::cr_injector`]); its `cr_*` statistics ride
    /// `registry`.
    cr_gate: Option<CrGate>,
    /// Busy-wait (1989-style) instead of sleeping when the queues are
    /// empty but work is outstanding.
    idle_spin: bool,
    /// The machine layout victim rings and pinning are derived from.
    topology: Arc<CpuTopology>,
    /// Pin workers to their assigned CPUs via `sched_setaffinity`.
    pin: bool,
    /// Catch job panics in the worker instead of letting them kill it.
    isolate_panics: bool,
}

/// Construction options for a [`Pool`] beyond the worker count.
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Worker thread count (must be ≥ 1).
    pub nworkers: usize,
    /// Busy-wait (1989-style) instead of the adaptive spin-then-park
    /// protocol when no work is queued.
    pub idle_spin: bool,
    /// Pin workers with `sched_setaffinity(2)`: to their own CPU while
    /// the control plane assigns a concrete set, to the whole machine
    /// otherwise. Best-effort — a no-op off Linux or when the kernel
    /// rejects the mask (e.g. synthetic CPU ids beyond the real ones).
    pub pin: bool,
    /// Topology override for victim rings and pin targets; `None` uses
    /// the process-wide detected topology
    /// ([`CpuTopology::shared`]).
    pub topology: Option<Arc<CpuTopology>>,
    /// Per-worker flight-recorder ring capacity in events (rounded up
    /// to a power of two). `0` disables the recorder entirely — the
    /// EXPERIMENTS.md overhead A/B baseline.
    pub trace_capacity: usize,
    /// Run every job under `catch_unwind` so a panicking job is counted
    /// (`jobs_panicked`) and the worker keeps running (default).
    /// Jobs are asserted unwind-safe: a job that panics mid-update of
    /// state it shares with other jobs may leave that state
    /// inconsistent — the pool's own invariants are maintained either
    /// way. With this off, a panic unwinds the worker thread; pair with
    /// [`WatchdogConfig::respawn`] to have the fleet heal itself.
    pub isolate_panics: bool,
    /// Run a stall watchdog over the per-worker heartbeats; `None`
    /// (default) disables monitoring entirely — zero threads, zero
    /// hot-path cost beyond one relaxed heartbeat store per job.
    pub watchdog: Option<WatchdogConfig>,
    /// Put a concurrency-restricting gate ([`CrGate`]) in front of the
    /// injector's sweep: at most `active_max` workers contend for the
    /// shard locks at once, the rest park on the gate's culled list.
    /// `None` (default, and what every gated benchmark baseline uses)
    /// leaves the injector ungated.
    pub cr_injector: Option<CrConfig>,
}

/// Default flight-recorder ring capacity per worker ("always-on": large
/// enough to hold a poll interval's worth of scheduling transitions,
/// small enough that 8 workers cost ~50 KiB).
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

impl PoolConfig {
    /// Defaults: spin-then-park idling, no pinning, detected topology,
    /// flight recorder on at [`DEFAULT_TRACE_CAPACITY`], panic
    /// isolation on, no watchdog.
    pub fn new(nworkers: usize) -> Self {
        PoolConfig {
            nworkers,
            idle_spin: false,
            pin: false,
            topology: None,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            isolate_panics: true,
            watchdog: None,
            cr_injector: None,
        }
    }
}

/// A controlled work-stealing worker pool.
pub struct Pool {
    shared: Arc<PoolShared>,
    watchdog: Option<WatchdogHandle>,
}

/// The running stall watchdog (see [`WatchdogConfig`]). The stop flag
/// doubles as the scan-interval timer: the thread waits on the condvar
/// so shutdown interrupts a sleep instead of waiting it out.
struct WatchdogHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: JoinHandle<()>,
}

impl Pool {
    /// Creates a pool of `nworkers` threads registered with `controller`.
    /// `idle_spin` selects period-faithful busy-waiting (true) or the
    /// adaptive spin-then-park protocol (false) when no work is queued.
    pub fn new(controller: &Controller, nworkers: usize, idle_spin: bool) -> Self {
        let mut cfg = PoolConfig::new(nworkers);
        cfg.idle_spin = idle_spin;
        Self::with_config(controller, cfg)
    }

    /// Creates a pool registered with `controller` using the full
    /// [`PoolConfig`] (pinning, topology override).
    pub fn with_config(controller: &Controller, cfg: PoolConfig) -> Self {
        let target = controller.register(cfg.nworkers);
        Self::with_slot_config(target, cfg)
    }

    /// Creates a pool whose target is driven externally (e.g. by a
    /// [`crate::UdsClient`] poller talking to a cross-process server)
    /// through the given slot.
    ///
    /// For deployments that must survive server crashes, drive the slot
    /// with [`crate::SupervisedClient::spawn_poller`] (Unix only) and
    /// hand it this pool's [`Pool::registry`]: targets then fall back to
    /// degraded mode through outages, and the supervisor's fault
    /// counters travel with the pool's own stats through REPORT/STATS.
    pub fn with_slot(target: Arc<TargetSlot>, nworkers: usize, idle_spin: bool) -> Self {
        let mut cfg = PoolConfig::new(nworkers);
        cfg.idle_spin = idle_spin;
        Self::with_slot_config(target, cfg)
    }

    /// [`Pool::with_slot`] with the full [`PoolConfig`].
    pub fn with_slot_config(target: Arc<TargetSlot>, cfg: PoolConfig) -> Self {
        let nworkers = cfg.nworkers;
        assert!(nworkers >= 1);
        let topology = cfg
            .topology
            .unwrap_or_else(|| Arc::clone(CpuTopology::shared()));
        let registry = Arc::new(Registry::new());
        let mut locals = Vec::with_capacity(nworkers);
        let mut stealers = Vec::with_capacity(nworkers);
        for _ in 0..nworkers {
            let (w, s) = deque::deque::<Task>();
            locals.push(w);
            stealers.push(s);
        }
        // sched-counters: steal_tier_smt steal_tier_llc steal_tier_socket steal_tier_remote
        let steal_tier_hits = std::array::from_fn(|i| {
            registry.counter(&format!("steal_tier_{}", STEAL_TIER_NAMES[i]))
        });
        // One ring per worker plus one for the watchdog: rings are
        // single-producer, so the monitor needs its own to emit
        // Stall/Recovered events about (not from) a wedged worker.
        let recorder = FlightRecorder::new(nworkers + 1, cfg.trace_capacity, &registry);
        let shared = Arc::new(PoolShared {
            injector: Injector::with_counter(nworkers, registry.counter("injector_sweep_skips")),
            cr_gate: cfg
                .cr_injector
                .map(|cr| CrGate::with_registry(cr, &registry)),
            stealers: stealers.into_boxed_slice(),
            outstanding: AtomicUsize::new(0),
            idle_cv: Condvar::new(),
            idle_mu: Mutex::new(()),
            active: AtomicUsize::new(nworkers),
            suspended: Mutex::new(Vec::new()),
            suspended_flags: (0..nworkers).map(|_| AtomicBool::new(false)).collect(),
            heartbeats: (0..nworkers)
                .map(|_| AtomicU64::new(pack_heartbeat(trace::now_ns(), HB_IDLE)))
                .collect(),
            worker_handles: Mutex::new(Vec::new()),
            sleepers: Mutex::new(Vec::new()),
            nsleepers: AtomicUsize::new(0),
            target,
            shutdown: AtomicBool::new(false),
            jobs_run: registry.counter("jobs_run"),
            suspends: registry.counter("suspends"),
            resumes: registry.counter("resumes"),
            local_hits: registry.counter("local_hits"),
            injector_pops: registry.counter("injector_pops"),
            steals: registry.counter("steals"),
            steal_fails: registry.counter("steal_fails"),
            steal_tier_hits,
            steal_skips_suspended: registry.counter("steal_skips_suspended"),
            active_gauge: registry.gauge("active"),
            target_gauge: registry.gauge("target"),
            npinned: AtomicUsize::new(0),
            affinity_applied: registry.gauge("affinity_applied"),
            spin_budget: registry.gauge("spin_budget"),
            queue_wait: registry.histogram("queue_wait_ns"),
            park: registry.histogram("park_ns"),
            unpark: registry.histogram("unpark_ns"),
            spin_before_park: registry.histogram("spin_before_park_ns"),
            wake_to_run: registry.histogram("wake_to_run_ns"),
            suspend_to_resume: registry.histogram("suspend_to_resume_ns"),
            retier_events: registry.counter("retier_events"),
            jobs_panicked: registry.counter("jobs_panicked"),
            workers_respawned: registry.counter("workers_respawned"),
            stalls_detected: registry.counter("stalls_detected"),
            stall_nudges: registry.counter("stall_nudges"),
            stall_ns: registry.histogram("stall_ns"),
            recorder,
            registry,
            idle_spin: cfg.idle_spin,
            topology,
            pin: cfg.pin,
            isolate_panics: cfg.isolate_panics,
        });
        let workers: Vec<Option<JoinHandle<()>>> = locals
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let sh = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name(format!("pool-worker-{i}"))
                        .spawn(move || worker_loop(&sh, i, w))
                        .expect("spawn worker"),
                )
            })
            .collect();
        *shared.worker_handles.lock() = workers;
        let watchdog = cfg.watchdog.map(|wcfg| {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let sh = Arc::clone(&shared);
            let stop2 = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("pool-watchdog".into())
                .spawn(move || watchdog_loop(&sh, &wcfg, &stop2))
                .expect("spawn watchdog");
            WatchdogHandle { stop, handle }
        });
        Pool { shared, watchdog }
    }

    /// Submits a job. Callers outside the pool go through the sharded
    /// injector; a job submitting from inside a worker pushes onto that
    /// worker's own deque (the fork-join fast path).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        // Timestamp and box before touching any shared structure, so the
        // instrumentation cannot inflate the contention it measures.
        let task = Task {
            submitted: Instant::now(),
            job: Box::new(job),
        };
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        let key = Arc::as_ptr(&self.shared) as usize;
        let (tls_key, tls_ptr) = CURRENT_WORKER.with(Cell::get);
        if tls_key == key {
            // SAFETY: the entry was set by this thread's own worker_loop
            // for this pool; the Worker lives (pinned) in that frame
            // until the loop returns, which clears the entry first.
            unsafe { (*(tls_ptr as *const Worker<Task>)).push(Box::new(task)) };
        } else {
            self.shared.injector.push(task);
        }
        wake_one(&self.shared);
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_mu.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }

    /// Current number of unsuspended workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// The controller's current target for this pool.
    pub fn target(&self) -> usize {
        self.shared.target.target.load(Ordering::Acquire)
    }

    /// Pool counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_run: self.shared.jobs_run.get(),
            suspends: self.shared.suspends.get(),
            resumes: self.shared.resumes.get(),
            local_hits: self.shared.local_hits.get(),
            injector_pops: self.shared.injector_pops.get(),
            steals: self.shared.steals.get(),
            steal_fails: self.shared.steal_fails.get(),
            steal_tier_hits: std::array::from_fn(|i| self.shared.steal_tier_hits[i].get()),
            steal_skips_suspended: self.shared.steal_skips_suspended.get(),
            jobs_panicked: self.shared.jobs_panicked.get(),
            workers_respawned: self.shared.workers_respawned.get(),
            stalls_detected: self.shared.stalls_detected.get(),
            stall_nudges: self.shared.stall_nudges.get(),
        }
    }

    /// The pool's statistics registry (counters, live-vs-target gauges,
    /// queue-wait, park/unpark, and spin-before-park histograms).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A point-in-time copy of every pool statistic.
    pub fn stats(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }

    /// The pool's flight recorder: per-worker rings of scheduling events
    /// (job start/end, steals, park/unpark, suspend/resume, CPU-set and
    /// epoch changes). Drain it directly, or hand it to
    /// [`crate::SupervisedClient::with_recorder`] (Unix) so the poller
    /// ships events to the control server for `TRACE` and `schedtop`.
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let sh = &self.shared;
        sh.shutdown.store(true, Ordering::Release);
        // Stop the watchdog before joining workers so no respawn can
        // race the teardown (any respawn already in flight lands a
        // worker that observes `shutdown` and exits immediately).
        if let Some(wd) = self.watchdog.take() {
            *wd.stop.0.lock() = true;
            wd.stop.1.notify_all();
            let _ = wd.handle.join();
        }
        // Wake idle sleepers...
        {
            let mut sleepers = sh.sleepers.lock();
            let n = sleepers.len();
            sh.nsleepers.fetch_sub(n, Ordering::SeqCst);
            for s in sleepers.drain(..) {
                *s.woken.lock() = true;
                s.cv.notify_one();
            }
        }
        // ...and suspended workers (claimed under the list lock, like a
        // resume, so the hand-off race cannot recur here).
        {
            let mut suspended = sh.suspended.lock();
            for t in suspended.drain(..) {
                *t.state.lock() = ParkState::Resumed(None);
                t.cv.notify_one();
            }
        }
        let workers: Vec<Option<JoinHandle<()>>> = std::mem::take(&mut *sh.worker_handles.lock());
        for w in workers.into_iter().flatten() {
            let _ = w.join();
        }
    }
}

/// Wakes one idle-parked worker, if any (producer side).
fn wake_one(sh: &PoolShared) {
    if sh.nsleepers.load(Ordering::SeqCst) == 0 {
        return;
    }
    let slot = {
        let mut sleepers = sh.sleepers.lock();
        let s = sleepers.pop();
        if s.is_some() {
            sh.nsleepers.fetch_sub(1, Ordering::SeqCst);
        }
        s
    };
    if let Some(s) = slot {
        *s.woken.lock() = true;
        s.cv.notify_one();
    }
}

/// True when some queue (injector or any worker deque) appears nonempty.
fn work_available(sh: &PoolShared) -> bool {
    !sh.injector.is_empty() || sh.stealers.iter().any(|s| !s.is_empty())
}

/// Acquires one task: own deque, then injector, then stealing.
fn find_task(
    sh: &PoolShared,
    worker: &Worker<Task>,
    index: usize,
    rings: &VictimRings,
    rng: &mut u64,
) -> Option<Task> {
    if let Some(t) = worker.pop() {
        sh.local_hits.incr();
        return Some(*t);
    }
    if let Some(t) = injector_pop(sh, index) {
        sh.injector_pops.incr();
        return Some(t);
    }
    steal_task(sh, index, rings, rng)
}

/// The injector leg of [`find_task`], routed through the CR gate when
/// one is configured: only `active_max` workers sweep the shard locks
/// at once, the rest park on the culled list until promoted. The gate
/// is consulted only while the injector looks nonempty — an empty
/// injector must stay a one-atomic-load fast path for idle workers.
fn injector_pop(sh: &PoolShared, index: usize) -> Option<Task> {
    let Some(gate) = &sh.cr_gate else {
        return sh.injector.pop(index);
    };
    if sh.injector.is_empty() {
        return None;
    }
    let admission = gate.enter();
    let admitted_at = Instant::now();
    let popped = sh.injector.pop(index);
    gate.observe_acquire(admitted_at.elapsed().as_nanos() as u64);
    let promoted = gate.exit();
    if let Admission::Culled { waited_ns } = admission {
        let us = (waited_ns / 1_000).min(u32::MAX as u64) as u32;
        sh.recorder.record(index, EventKind::CrCull, us);
    }
    if promoted {
        sh.recorder
            .record(index, EventKind::CrPromote, gate.active_max() as u32);
    }
    popped
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// One worker's view of the others as steal victims, grouped by CPU
/// distance and tagged with the [`TargetSlot::cpus_generation`] it was
/// derived from (stale rings are rebuilt at the next safe point).
struct VictimRings {
    /// Victim worker indices, nearest tier first.
    tiers: [Vec<usize>; NUM_STEAL_TIERS],
    /// The CPU this worker maps to under the current assignment.
    my_cpu: u32,
    /// A concrete CPU set is assigned (pin narrow); false = count-only
    /// mode (pin wide).
    narrow: bool,
    /// Generation of the assignment the rings were built from.
    generation: usize,
}

impl VictimRings {
    /// Maps every worker to a CPU — round-robin over the assigned set
    /// when one is published, round-robin over the whole topology
    /// otherwise — and groups the other workers by distance tier.
    fn build(sh: &PoolShared, index: usize) -> VictimRings {
        let generation = sh.target.cpus_generation();
        let cpuset = sh.target.cpus();
        let assigned = cpuset.as_ref().filter(|c| !c.is_empty());
        let n = sh.stealers.len();
        let cpu_of_worker: Vec<u32> = (0..n)
            .map(|w| match assigned {
                Some(cs) => cs[w % cs.len()],
                None => sh.topology.cpu_at(w),
            })
            .collect();
        let tiers = topology::steal_tiers(&sh.topology, &cpu_of_worker, index);
        VictimRings {
            tiers,
            my_cpu: cpu_of_worker[index],
            narrow: assigned.is_some(),
            generation,
        }
    }
}

/// (Re)pins the calling worker after an assignment change: to its own
/// CPU while a set is assigned, to the whole machine in count-only /
/// degraded mode (so a server outage widens, never strands, affinity).
/// Returns whether a narrow pin is in force, maintaining the
/// `affinity_applied` gauge. No-op unless the pool was built with
/// [`PoolConfig::pin`].
fn apply_affinity(sh: &PoolShared, rings: &VictimRings, was_narrow: bool) -> bool {
    if !sh.pin {
        return false;
    }
    let narrow = if rings.narrow {
        topology::pin_current_thread(&[rings.my_cpu])
    } else {
        let all: Vec<u32> = (0..sh.topology.len())
            .map(|i| sh.topology.cpu_at(i))
            .collect();
        topology::pin_current_thread(&all);
        false
    };
    if narrow != was_narrow {
        if narrow {
            sh.npinned.fetch_add(1, Ordering::Relaxed);
        } else {
            sh.npinned.fetch_sub(1, Ordering::Relaxed);
        }
        sh.affinity_applied
            .set(sh.npinned.load(Ordering::Relaxed) as i64);
    }
    narrow
}

/// Sweeps the other workers' deques nearest-tier-first — randomizing
/// the start *within* each tier so same-distance victims share the
/// load — with exponential backoff between sweeps while CAS races
/// persist. Suspended victims are skipped outright: their deques were
/// drained before they parked.
fn steal_task(sh: &PoolShared, index: usize, rings: &VictimRings, rng: &mut u64) -> Option<Task> {
    if sh.stealers.len() <= 1 {
        return None;
    }
    let mut backoff: u32 = 0;
    loop {
        let mut contended = false;
        for (tier, ring) in rings.tiers.iter().enumerate() {
            if ring.is_empty() {
                continue;
            }
            let start = (xorshift(rng) as usize) % ring.len();
            for off in 0..ring.len() {
                let victim = ring[(start + off) % ring.len()];
                if sh.suspended_flags[victim].load(Ordering::Acquire) {
                    sh.steal_skips_suspended.incr();
                    continue;
                }
                match sh.stealers[victim].steal() {
                    Steal::Success(t) => {
                        sh.steals.incr();
                        sh.steal_tier_hits[tier].incr();
                        sh.recorder.record(index, EventKind::Steal, tier as u32);
                        return Some(*t);
                    }
                    Steal::Retry => {
                        sh.steal_fails.incr();
                        contended = true;
                    }
                    Steal::Empty => {}
                }
            }
        }
        if !contended {
            return None;
        }
        for _ in 0..(1u32 << backoff) {
            std::hint::spin_loop();
        }
        backoff = (backoff + 1).min(10);
    }
}

/// Empties a suspending worker's deque into the injector so its queued
/// jobs stay runnable while it is parked.
fn drain_local(sh: &PoolShared, worker: &Worker<Task>) {
    let mut drained = false;
    while let Some(t) = worker.pop() {
        sh.injector.push(*t);
        drained = true;
    }
    if drained {
        wake_one(sh);
    }
}

/// Parks a worker suspended by process control until a resumer (or
/// shutdown) claims its token.
fn park_suspended(sh: &PoolShared) -> SuspendOutcome {
    let token = Arc::new(ParkToken {
        state: Mutex::new(ParkState::Parked),
        cv: Condvar::new(),
    });
    sh.suspended.lock().push(Arc::clone(&token));
    let parked_at = Instant::now();
    let mut st = token.state.lock();
    loop {
        if let ParkState::Resumed(signaled_at) = *st {
            drop(st);
            sh.park.record(parked_at.elapsed().as_nanos() as u64);
            if let Some(at) = signaled_at {
                sh.unpark.record(at.elapsed().as_nanos() as u64);
            }
            return SuspendOutcome::Resumed(signaled_at);
        }
        if sh.shutdown.load(Ordering::Acquire) {
            // To leave without being resumed we must first withdraw the
            // token; if a resumer already popped it, the claim is ours
            // to honor — loop until the Resumed mark lands.
            drop(st);
            let mut list = sh.suspended.lock();
            if let Some(pos) = list.iter().position(|t| Arc::ptr_eq(t, &token)) {
                list.remove(pos);
                drop(list);
                sh.park.record(parked_at.elapsed().as_nanos() as u64);
                return SuspendOutcome::Shutdown;
            }
            drop(list);
            st = token.state.lock();
            continue;
        }
        token.cv.wait_for(&mut st, SUSPEND_PARK_POLL);
    }
}

/// Resumes one suspended worker, if any. The token is claimed and
/// signaled while the suspended-list lock is held, making the hand-off
/// atomic with respect to both other resumers and the worker's own
/// shutdown withdrawal.
fn resume_one(sh: &PoolShared) {
    let mut list = sh.suspended.lock();
    let Some(token) = list.pop() else { return };
    sh.active.fetch_add(1, Ordering::AcqRel);
    sh.resumes.incr();
    *token.state.lock() = ParkState::Resumed(Some(Instant::now()));
    token.cv.notify_one();
}

/// Folds one completed wait into the worker's spin state and publishes
/// the recomputed budget on the `spin_budget` gauge.
fn observe_wait(sh: &PoolShared, spin: &mut SpinState, waited_ns: u64) {
    spin.observe_wait(waited_ns);
    sh.spin_budget.set(spin.budget_ns as i64);
}

/// Spins through this worker's adaptive budget of availability checks
/// (see [`SpinState`]), then parks on its private slot until a producer
/// wakes it (idle protocol). Every exit path feeds the total wait back
/// into the budget EWMA.
fn idle_spin_then_park(
    sh: &PoolShared,
    index: usize,
    slot: &Arc<IdleSlot>,
    spin: &mut SpinState,
) -> Option<Instant> {
    let started = Instant::now();
    let budget = Duration::from_nanos(spin.budget_ns);
    let mut poll: u32 = 0;
    loop {
        if sh.shutdown.load(Ordering::Acquire) || work_available(sh) {
            let waited = started.elapsed().as_nanos() as u64;
            sh.spin_before_park.record(waited);
            observe_wait(sh, spin, waited);
            return None;
        }
        if started.elapsed() >= budget {
            break;
        }
        for _ in 0..(1u32 << (poll / 8).min(6)) {
            std::hint::spin_loop();
        }
        if poll % 8 == 7 {
            std::thread::yield_now();
        }
        poll = poll.wrapping_add(1);
    }
    // Commit to parking: publish the slot, then re-check, so a producer
    // either sees us in the list or we see its work.
    *slot.woken.lock() = false;
    {
        let mut sleepers = sh.sleepers.lock();
        sleepers.push(Arc::clone(slot));
        sh.nsleepers.fetch_add(1, Ordering::SeqCst);
    }
    sh.recorder.record(index, EventKind::Park, 0);
    sh.heartbeats[index].store(
        pack_heartbeat(trace::now_ns(), HB_PARKED),
        Ordering::Relaxed,
    );
    sh.spin_before_park
        .record(started.elapsed().as_nanos() as u64);
    if sh.shutdown.load(Ordering::Acquire) || work_available(sh) {
        unregister_sleeper(sh, slot);
        observe_wait(sh, spin, started.elapsed().as_nanos() as u64);
        let woke = Instant::now();
        sh.heartbeats[index].store(
            pack_heartbeat(trace::ns_since_origin(woke), HB_IDLE),
            Ordering::Relaxed,
        );
        sh.recorder
            .record_at(index, trace::ns_since_origin(woke), EventKind::Unpark, 0);
        return Some(woke);
    }
    {
        let mut woken = slot.woken.lock();
        while !*woken && !sh.shutdown.load(Ordering::Acquire) {
            slot.cv.wait_for(&mut woken, IDLE_PARK_POLL);
            if !*woken && work_available(sh) {
                break; // timed-out liveness path
            }
        }
    }
    unregister_sleeper(sh, slot);
    observe_wait(sh, spin, started.elapsed().as_nanos() as u64);
    let woke = Instant::now();
    sh.heartbeats[index].store(
        pack_heartbeat(trace::ns_since_origin(woke), HB_IDLE),
        Ordering::Relaxed,
    );
    sh.recorder
        .record_at(index, trace::ns_since_origin(woke), EventKind::Unpark, 0);
    Some(woke)
}

/// Removes `slot` from the sleeper list if a waker has not already
/// popped it (the timeout and early-exit paths).
fn unregister_sleeper(sh: &PoolShared, slot: &Arc<IdleSlot>) {
    let mut sleepers = sh.sleepers.lock();
    if let Some(pos) = sleepers.iter().position(|s| Arc::ptr_eq(s, slot)) {
        sleepers.remove(pos);
        sh.nsleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-job accounting that must run whether the job returns or panics:
/// `jobs_run` counts every executed job (panicked ones included — they
/// were acquired through exactly one path, so conservation holds) and
/// the `outstanding` decrement keeps `wait_idle` from hanging on a job
/// that will never "finish" normally.
struct JobGuard<'a> {
    sh: &'a PoolShared,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.sh.jobs_run.incr();
        if self.sh.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.sh.idle_mu.lock();
            self.sh.idle_cv.notify_all();
        }
    }
}

/// Armed for the lifetime of a worker loop; if the loop unwinds (a job
/// panic escaping with [`PoolConfig::isolate_panics`] off), repairs the
/// shared accounting the dead worker can no longer maintain: clears its
/// suspended flag, removes it from the `active` count, and stamps a
/// fresh idle heartbeat so the watchdog sees a death (the thread's
/// `is_finished` handle), not a stall.
struct DeathWatch<'a> {
    sh: &'a PoolShared,
    index: usize,
    armed: bool,
}

impl Drop for DeathWatch<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.sh.suspended_flags[self.index].store(false, Ordering::Release);
        self.sh.active.fetch_sub(1, Ordering::AcqRel);
        self.sh.heartbeats[self.index]
            .store(pack_heartbeat(trace::now_ns(), HB_IDLE), Ordering::Relaxed);
    }
}

/// The stall-watchdog monitor thread (see [`WatchdogConfig`]): scans
/// every worker's heartbeat each interval, opens a stall episode for a
/// running worker whose heartbeat went stale past the threshold
/// (log + `stalls_detected` + [`EventKind::Stall`]), closes it on the
/// first observed progress (`stall_ns` + [`EventKind::Recovered`]),
/// nudges long-parked workers while work is visibly queued, and — when
/// opted in — respawns worker threads that died.
fn watchdog_loop(sh: &Arc<PoolShared>, cfg: &WatchdogConfig, stop: &(Mutex<bool>, Condvar)) {
    let n = sh.stealers.len();
    // The recorder's extra ring (index n) belongs to the watchdog.
    let wd_ring = n;
    // Open episodes: the heartbeat word observed at detection (progress
    // == any change) and the detection timestamp.
    let mut episodes: Vec<Option<(u64, u64)>> = vec![None; n];
    let threshold_ns = cfg.stall_threshold.as_nanos() as u64;
    loop {
        {
            let mut stopped = stop.0.lock();
            if !*stopped {
                stop.1.wait_for(&mut stopped, cfg.interval);
            }
            if *stopped {
                return;
            }
        }
        let now_ns = trace::now_ns();
        for (i, episode) in episodes.iter_mut().enumerate() {
            let hb = sh.heartbeats[i].load(Ordering::Relaxed);
            let (ts, state) = (hb >> 2, hb & 0b11);
            let stale = now_ns.saturating_sub(ts);
            let stalled = state == HB_RUNNING && stale > threshold_ns;
            match *episode {
                None if stalled => {
                    *episode = Some((hb, now_ns));
                    sh.stalls_detected.incr();
                    let ms = (stale / 1_000_000).min(u64::from(u32::MAX)) as u32;
                    sh.recorder
                        .record_from(wd_ring, i as u16, now_ns, EventKind::Stall, ms);
                    eprintln!(
                        "pool-watchdog: worker {i} stalled ({} ms since last progress, threshold {} ms)",
                        stale / 1_000_000,
                        threshold_ns / 1_000_000,
                    );
                }
                Some((hb_at_detect, detected_ns)) if hb != hb_at_detect => {
                    *episode = None;
                    let dur = now_ns.saturating_sub(detected_ns);
                    sh.stall_ns.record(dur);
                    let ms = (dur / 1_000_000).min(u64::from(u32::MAX)) as u32;
                    sh.recorder
                        .record_from(wd_ring, i as u16, now_ns, EventKind::Recovered, ms);
                }
                _ => {}
            }
            if cfg.nudge
                && state == HB_PARKED
                && stale > threshold_ns
                && sh.outstanding.load(Ordering::Acquire) > 0
                && work_available(sh)
            {
                sh.stall_nudges.incr();
                wake_one(sh);
            }
        }
        if cfg.respawn {
            respawn_dead_workers(sh);
        }
    }
}

/// Replaces any worker thread whose handle reports it finished while the
/// pool is still running (only a panic escaping `worker_loop` gets a
/// worker there). The dead worker's deque buffer stays alive behind its
/// registered stealer, so tasks it still held remain stealable; the
/// replacement runs on a fresh, unregistered deque — its local pushes
/// are popped locally and drained to the injector on suspend, so
/// nothing is stranded (the deque is merely invisible to steal sweeps,
/// a throughput footnote on an already-exceptional path).
fn respawn_dead_workers(sh: &Arc<PoolShared>) {
    let mut handles = sh.worker_handles.lock();
    for i in 0..handles.len() {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        if !handles[i].as_ref().is_some_and(JoinHandle::is_finished) {
            continue;
        }
        if let Some(dead) = handles[i].take() {
            let _ = dead.join();
        }
        let (w, _unregistered_stealer) = deque::deque::<Task>();
        let sh2 = Arc::clone(sh);
        if let Ok(h) = std::thread::Builder::new()
            .name(format!("pool-worker-{i}r"))
            .spawn(move || worker_loop(&sh2, i, w))
        {
            // The death guard removed the worker from `active`; its
            // replacement re-enters the active set.
            sh.active.fetch_add(1, Ordering::AcqRel);
            sh.workers_respawned.incr();
            handles[i] = Some(h);
        }
    }
}

fn worker_loop(sh: &Arc<PoolShared>, index: usize, worker: Worker<Task>) {
    let _tls = TlsGuard::set(Arc::as_ptr(sh) as usize, &worker);
    let mut death = DeathWatch {
        sh,
        index,
        armed: true,
    };
    let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1) | 1;
    let idle_slot = Arc::new(IdleSlot {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let mut spin = SpinState::new();
    let mut rings = VictimRings::build(sh, index);
    let mut narrow_pin = apply_affinity(sh, &rings, false);
    // Flight-recorder bookkeeping: the last wake signal not yet matched
    // to a job (wake-to-run), the pending suspension safe-point entry
    // (suspend-to-resume), the last decision epoch this worker saw, and
    // the length of the current uninterrupted running burst.
    let mut pending_wake: Option<Instant> = None;
    let mut pending_suspend: Option<Instant> = None;
    let mut last_target = usize::MAX;
    let mut burst_jobs: u32 = 0;
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            if burst_jobs > 0 {
                sh.recorder.record(index, EventKind::JobEnd, burst_jobs);
            }
            death.armed = false;
            return;
        }
        // --- Safe suspension point: no job held, no lock held. ---
        if rings.generation != sh.target.cpus_generation() {
            // The control plane moved our CPU set: rebuild the victim
            // rings around the new home CPU (dynamic re-tiering) and
            // follow the assignment with the affinity mask.
            rings = VictimRings::build(sh, index);
            narrow_pin = apply_affinity(sh, &rings, narrow_pin);
            sh.retier_events.incr();
            sh.recorder
                .record(index, EventKind::CpuSet, rings.generation as u32);
            sh.recorder.record(index, EventKind::Retier, rings.my_cpu);
        }
        let target = sh.target.target.load(Ordering::Acquire);
        let active = sh.active.load(Ordering::Acquire);
        sh.active_gauge.set(active as i64);
        sh.target_gauge.set(target as i64);
        if target != last_target {
            sh.recorder.record(index, EventKind::Epoch, target as u32);
            last_target = target;
        }
        if active > target && active > 1 {
            // Suspend self (compare-and-swap guards racing suspenders).
            if sh
                .active
                .compare_exchange(active, active - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                sh.suspends.incr();
                if burst_jobs > 0 {
                    sh.recorder.record(index, EventKind::JobEnd, burst_jobs);
                    burst_jobs = 0;
                }
                // Publish queued jobs before parking: nothing may be
                // stranded behind a suspended worker. Only then raise
                // the suspended flag — stealers may skip a flagged
                // victim only while its deque is provably empty.
                drain_local(sh, &worker);
                sh.suspended_flags[index].store(true, Ordering::Release);
                let suspended_at = Instant::now();
                sh.heartbeats[index].store(
                    pack_heartbeat(trace::ns_since_origin(suspended_at), HB_SUSPENDED),
                    Ordering::Relaxed,
                );
                sh.recorder.record_at(
                    index,
                    trace::ns_since_origin(suspended_at),
                    EventKind::Suspend,
                    target as u32,
                );
                let outcome = park_suspended(sh);
                sh.suspended_flags[index].store(false, Ordering::Release);
                match outcome {
                    SuspendOutcome::Resumed(signaled_at) => {
                        let woke = Instant::now();
                        sh.heartbeats[index].store(
                            pack_heartbeat(trace::ns_since_origin(woke), HB_IDLE),
                            Ordering::Relaxed,
                        );
                        let lat_us = signaled_at.map_or(0, |at| {
                            (woke.duration_since(at).as_micros()).min(u32::MAX as u128) as u32
                        });
                        sh.recorder.record_at(
                            index,
                            trace::ns_since_origin(woke),
                            EventKind::Resume,
                            lat_us,
                        );
                        pending_wake = signaled_at;
                        pending_suspend = Some(suspended_at);
                        continue; // re-enter the safe point
                    }
                    SuspendOutcome::Shutdown => {
                        death.armed = false;
                        return;
                    }
                }
            }
        } else if active < target {
            resume_one(sh);
        }
        // --- Acquire and run. ---
        match find_task(sh, &worker, index, &rings, &mut rng) {
            Some(task) => {
                // Recorded with no lock held (the sample starts at
                // submission time, before the producer touched a shard).
                // One clock read serves the queue-wait sample, the
                // wake-to-run/suspend-to-resume latencies, and the
                // flight-recorder timestamp.
                let now = Instant::now();
                let now_ns = trace::ns_since_origin(now);
                // The heartbeat reuses the clock read above: one relaxed
                // store per job to a worker-private word is the entire
                // hot-path cost of the watchdog.
                sh.heartbeats[index].store(pack_heartbeat(now_ns, HB_RUNNING), Ordering::Relaxed);
                let wait = now.duration_since(task.submitted);
                sh.queue_wait.record(wait.as_nanos() as u64);
                if let Some(at) = pending_wake.take() {
                    sh.wake_to_run
                        .record(now.duration_since(at).as_nanos() as u64);
                }
                if let Some(at) = pending_suspend.take() {
                    sh.suspend_to_resume
                        .record(now.duration_since(at).as_nanos() as u64);
                }
                // JobStart is burst-coalesced like JobEnd: only the
                // first pickup after idle/park/resume opens a burst
                // event (arg = that pickup's queue wait). Mid-burst
                // pickups carry no scheduling signal and a per-job push
                // would keep the full ring on its drop-oldest CAS path.
                if burst_jobs == 0 {
                    sh.recorder.record_at(
                        index,
                        now_ns,
                        EventKind::JobStart,
                        wait.as_micros().min(u32::MAX as u128) as u32,
                    );
                }
                burst_jobs = burst_jobs.saturating_add(1);
                {
                    let _completed = JobGuard { sh };
                    if sh.isolate_panics {
                        // Jobs are asserted unwind-safe (see
                        // `PoolConfig::isolate_panics`): the pool's own
                        // invariants hold either way, and shared state a
                        // job mutates is the job author's contract.
                        let caught =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(task.job));
                        if caught.is_err() {
                            sh.jobs_panicked.incr();
                        }
                    } else {
                        (task.job)();
                    }
                }
            }
            None => {
                if burst_jobs > 0 {
                    sh.recorder.record(index, EventKind::JobEnd, burst_jobs);
                    burst_jobs = 0;
                }
                // Out of work: leave the running state so the watchdog
                // never mistakes an empty queue for a wedged job (the
                // idle path can afford its own clock read).
                sh.heartbeats[index]
                    .store(pack_heartbeat(trace::now_ns(), HB_IDLE), Ordering::Relaxed);
                if sh.idle_spin {
                    // Period-faithful busy wait: burn a short slice, then
                    // re-check (lets the OS preempt us naturally).
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                } else if let Some(woke) = idle_spin_then_park(sh, index, &idle_slot, &mut spin) {
                    pending_wake = Some(woke);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use std::time::Duration;

    fn controller(cpus: usize) -> Controller {
        Controller::new(cpus, Duration::from_millis(10))
    }

    #[test]
    fn runs_all_jobs() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().jobs_run, 100);
    }

    #[test]
    fn job_acquisition_paths_conserve_jobs() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..500 {
            pool.execute(|| std::hint::black_box(()));
        }
        pool.wait_idle();
        let m = pool.metrics();
        assert_eq!(m.jobs_run, 500);
        assert_eq!(
            m.local_hits + m.injector_pops + m.steals,
            m.jobs_run,
            "every job acquired exactly once: {m:?}"
        );
    }

    #[test]
    fn worker_submissions_take_the_local_fast_path() {
        let c = controller(2);
        let pool = Arc::new(Pool::new(&c, 2, false));
        let counter = Arc::new(AtomicUsize::new(0));
        // One root job fans out children from inside the pool.
        let (p, k) = (Arc::clone(&pool), Arc::clone(&counter));
        pool.execute(move || {
            for _ in 0..64 {
                let k2 = Arc::clone(&k);
                p.execute(move || {
                    k2.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        let m = pool.metrics();
        assert!(
            m.local_hits > 0,
            "in-pool submissions should hit the local deque: {m:?}"
        );
        assert_eq!(m.local_hits + m.injector_pops + m.steals, m.jobs_run);
    }

    #[test]
    fn oversized_pool_suspends_down_to_target() {
        let c = controller(2);
        let pool = Pool::new(&c, 8, false);
        assert_eq!(pool.target(), 2);
        // Keep some work flowing so workers pass safe points.
        for _ in 0..200 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(200)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.active() > 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "never suspended: active={}",
                pool.active()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        assert!(pool.metrics().suspends >= 5);
    }

    #[test]
    fn workers_resume_when_target_grows() {
        let c = controller(4);
        let a = Pool::new(&c, 8, false);
        // Squeeze pool a with a competitor.
        {
            let b = Pool::new(&c, 8, false);
            c.recompute_now();
            assert_eq!(a.target(), 2);
            for _ in 0..400 {
                a.execute(|| std::thread::sleep(Duration::from_micros(100)));
                b.execute(|| std::thread::sleep(Duration::from_micros(100)));
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while a.active() > 3 {
                assert!(std::time::Instant::now() < deadline, "a never shrank");
                std::thread::sleep(Duration::from_millis(5));
            }
            a.wait_idle();
            b.wait_idle();
        } // b drops; its share is released.
        c.recompute_now();
        assert_eq!(a.target(), 4);
        for _ in 0..400 {
            a.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.active() < 4 {
            assert!(std::time::Instant::now() < deadline, "a never grew back");
            std::thread::sleep(Duration::from_millis(5));
        }
        a.wait_idle();
        assert!(a.metrics().resumes >= 1);
    }

    #[test]
    fn stats_cover_latency_histograms_and_gauges() {
        let c = controller(2);
        let pool = Pool::new(&c, 6, false);
        for _ in 0..300 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        // Wait for process control to actually park someone.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.metrics().suspends == 0 {
            assert!(std::time::Instant::now() < deadline, "no worker suspended");
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        let snap = pool.stats();
        // The classic counters live in the registry too.
        assert_eq!(snap.counters["jobs_run"], 300);
        assert!(snap.counters["suspends"] >= 1);
        assert_eq!(
            snap.counters["local_hits"] + snap.counters["injector_pops"] + snap.counters["steals"],
            300
        );
        // Every job passed through the queue-wait histogram.
        assert_eq!(snap.histograms["queue_wait_ns"].count, 300);
        assert!(snap.histograms["queue_wait_ns"].quantile(0.5).is_some());
        // Gauges were sampled at safe points.
        assert_eq!(snap.gauges["target"], 2);
        assert!(snap.gauges["active"] >= 1);
        // Park duration is recorded when a parked worker wakes — which for
        // a still-suspended worker happens at shutdown. The registry
        // outlives the pool, so snapshot it after the drop.
        let registry = pool.registry();
        drop(pool);
        assert!(registry.snapshot().histograms["park_ns"].count >= 1);
    }

    #[test]
    fn idle_workers_record_spin_before_park() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..20 {
            pool.execute(|| {});
        }
        pool.wait_idle();
        // Give the workers time to run out of work and park.
        std::thread::sleep(Duration::from_millis(50));
        let snap = pool.stats();
        assert!(
            snap.histograms["spin_before_park_ns"].count >= 1,
            "idle workers should have measured their spin phase"
        );
    }

    #[test]
    fn drop_wakes_suspended_workers() {
        let c = controller(1);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..50 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        pool.wait_idle();
        drop(pool); // Must not hang on suspended workers.
    }

    /// Regression test for the lost-wakeup window: a resume racing a
    /// park/shutdown must never target a worker that already woke and
    /// left. The target is flapped between 1 and `n` while jobs flow, and
    /// each round ends with a drop mid-churn — under the old non-atomic
    /// hand-off this wedged or double-counted `active`; with the atomic
    /// hand-off every round joins cleanly and `active` never exceeds the
    /// worker count.
    #[test]
    fn resume_racing_park_and_shutdown_stays_sound() {
        for round in 0..20 {
            let n = 4;
            let slot = Arc::new(TargetSlot::new(n));
            let pool = Pool::with_slot(Arc::clone(&slot), n, false);
            for flip in 0..40 {
                slot.target
                    .store(if flip % 2 == 0 { 1 } else { n }, Ordering::Release);
                for _ in 0..5 {
                    pool.execute(|| std::hint::black_box(()));
                }
                assert!(pool.active() <= n, "phantom resume inflated active");
                if flip % 8 == 0 {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            // Drop while suspends/resumes are likely in flight.
            if round % 2 == 0 {
                pool.wait_idle();
            }
            drop(pool); // must join all workers, every time
        }
    }

    #[test]
    fn arc_pool_handle_works() {
        let c = controller(2);
        let pool = Arc::new(Pool::new(&c, 2, false));
        let counter = Arc::new(AtomicUsize::new(0));
        let k = Arc::clone(&counter);
        pool.execute(move || {
            k.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn steal_tier_hits_partition_steals() {
        let c = controller(8);
        let mut cfg = PoolConfig::new(8);
        cfg.topology = Some(Arc::new(CpuTopology::synthetic(8)));
        let pool = Pool::with_config(&c, cfg);
        for _ in 0..2000 {
            pool.execute(|| std::hint::black_box(()));
        }
        pool.wait_idle();
        let m = pool.metrics();
        assert_eq!(m.jobs_run, 2000);
        assert_eq!(
            m.steal_tier_hits.iter().sum::<u64>(),
            m.steals,
            "per-tier counters must partition steals: {m:?}"
        );
        assert_eq!(m.local_hits + m.injector_pops + m.steals, m.jobs_run);
    }

    #[test]
    fn pinned_pool_runs_everything_and_reports_affinity() {
        let c = controller(2);
        let mut cfg = PoolConfig::new(4);
        cfg.pin = true;
        let pool = Pool::with_config(&c, cfg);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 200);
        // Pinning is best-effort; whatever happened, the gauge must
        // exist and never exceed the worker count.
        let snap = pool.stats();
        assert!(snap.gauges["affinity_applied"] <= 4);
    }

    #[test]
    fn spin_budget_gauge_tracks_idle_waits() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..50 {
            pool.execute(|| {});
            std::thread::sleep(Duration::from_micros(200));
        }
        pool.wait_idle();
        std::thread::sleep(Duration::from_millis(50));
        let snap = pool.stats();
        let budget = snap.gauges["spin_budget"];
        assert!(
            budget >= SPIN_BUDGET_MIN_NS as i64 && budget <= SPIN_BUDGET_MAX_NS as i64,
            "budget out of clamp range: {budget}"
        );
    }

    #[test]
    fn spin_state_adapts_and_clamps() {
        let mut s = SpinState::new();
        assert_eq!(s.budget_ns, SPIN_BUDGET_START_NS);
        s.observe_wait(500); // short waits → the floor, not zero
        assert_eq!(s.budget_ns, SPIN_BUDGET_MIN_NS);
        for _ in 0..64 {
            s.observe_wait(40_000); // moderate waits → ~2× the EWMA
        }
        assert!(
            s.budget_ns > 50_000 && s.budget_ns <= SPIN_BUDGET_MAX_NS,
            "budget should track 2×EWMA: {}",
            s.budget_ns
        );
        for _ in 0..64 {
            s.observe_wait(10_000_000); // very long waits → park at once
        }
        assert_eq!(s.budget_ns, SPIN_BUDGET_MIN_NS);
    }

    #[test]
    fn spin_mode_also_completes() {
        let c = controller(2);
        let pool = Pool::new(&c, 4, true);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn flight_recorder_captures_job_starts_with_ordered_timestamps() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..100 {
            pool.execute(|| std::hint::black_box(()));
        }
        pool.wait_idle();
        let rec = pool.recorder();
        let registry = pool.registry();
        assert!(rec.is_enabled());
        drop(pool); // join the workers: no more producers, no races below
        let events = rec.drain(usize::MAX);
        let starts = events
            .iter()
            .filter(|e| e.kind == EventKind::JobStart)
            .count() as u64;
        let ended: u64 = events
            .iter()
            .filter(|e| e.kind == EventKind::JobEnd)
            .map(|e| u64::from(e.arg))
            .sum();
        let snap = registry.snapshot();
        // Burst coalescing conserves jobs: with nothing dropped (a
        // handful of events per 256-slot ring), the JobEnd burst lengths
        // sum to exactly the jobs run, and every burst that ended was
        // opened by a JobStart.
        assert_eq!(snap.counters["trace_dropped"], 0);
        assert_eq!(ended, 100, "JobEnd burst lengths must sum to jobs run");
        assert!(
            (1..=ended).contains(&starts),
            "burst starts out of range: {starts} starts for {ended} jobs"
        );
        // The drain is merged by timestamp and each worker's own events
        // are monotonic (single origin, single producer per ring).
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns, "merged drain out of order");
        }
        // Every event the pool emits round-trips through the wire codec.
        for e in &events {
            assert_eq!(TraceEvent::parse(&e.to_wire()), Some(*e));
        }
        // Counter conservation: everything recorded was drained or
        // dropped (the drain above emptied the rings).
        assert_eq!(
            snap.counters["trace_events"],
            events.len() as u64 + snap.counters["trace_dropped"]
        );
    }

    #[test]
    fn disabled_recorder_pool_still_runs() {
        let c = controller(2);
        let mut cfg = PoolConfig::new(2);
        cfg.trace_capacity = 0;
        let pool = Pool::with_config(&c, cfg);
        for _ in 0..50 {
            pool.execute(|| {});
        }
        pool.wait_idle();
        let rec = pool.recorder();
        assert!(!rec.is_enabled());
        assert!(rec.drain(usize::MAX).is_empty());
        assert_eq!(pool.stats().counters["trace_events"], 0);
    }

    #[test]
    fn suspension_records_wake_to_run_and_trace_events() {
        let slot = Arc::new(TargetSlot::new(4));
        let pool = Pool::with_slot(Arc::clone(&slot), 4, false);
        // Force suspensions, then let everyone run again.
        slot.target.store(1, Ordering::Release);
        for _ in 0..200 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(50)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.metrics().suspends == 0 {
            assert!(std::time::Instant::now() < deadline, "no worker suspended");
            std::thread::sleep(Duration::from_millis(2));
        }
        slot.target.store(4, Ordering::Release);
        for _ in 0..200 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(50)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.metrics().resumes == 0 {
            assert!(std::time::Instant::now() < deadline, "no worker resumed");
            std::thread::sleep(Duration::from_millis(2));
        }
        pool.wait_idle();
        let snap = pool.stats();
        assert!(
            snap.histograms["wake_to_run_ns"].count >= 1,
            "resume did not feed wake-to-run"
        );
        assert!(
            snap.histograms["suspend_to_resume_ns"].count >= 1,
            "suspension cycle did not feed suspend-to-resume"
        );
        let events = pool.recorder().drain(usize::MAX);
        let kinds: std::collections::BTreeSet<EventKind> = events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::Suspend), "no Suspend event");
        assert!(kinds.contains(&EventKind::Resume), "no Resume event");
        assert!(kinds.contains(&EventKind::Epoch), "no Epoch event");
    }

    #[test]
    fn panicking_jobs_are_isolated_and_conserved() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false); // isolate_panics defaults on
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                if i % 5 == 0 {
                    panic!("chaos job {i}");
                }
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle(); // must not hang on the panicked jobs
        assert_eq!(done.load(Ordering::Relaxed), 80);
        let m = pool.metrics();
        assert_eq!(m.jobs_run, 100, "panicked jobs still count as run");
        assert_eq!(m.jobs_panicked, 20);
        assert_eq!(
            m.local_hits + m.injector_pops + m.steals,
            m.jobs_run,
            "conservation must survive panics: {m:?}"
        );
        // The workers survived: fresh jobs still run on all paths.
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 81);
        assert_eq!(pool.metrics().workers_respawned, 0, "nobody died");
    }

    #[test]
    fn escaped_panic_kills_worker_and_watchdog_respawns_it() {
        let c = controller(4);
        let mut cfg = PoolConfig::new(4);
        cfg.isolate_panics = false;
        let mut wd = WatchdogConfig::new(Duration::from_millis(200));
        wd.interval = Duration::from_millis(5);
        wd.respawn = true;
        cfg.watchdog = Some(wd);
        let pool = Pool::with_config(&c, cfg);
        pool.execute(|| panic!("worker killer"));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.metrics().workers_respawned == 0 {
            assert!(std::time::Instant::now() < deadline, "never respawned");
            std::thread::sleep(Duration::from_millis(5));
        }
        // The healed fleet still runs everything, conservation intact.
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 200);
        let m = pool.metrics();
        assert_eq!(m.jobs_run, 201, "the killer job still counts");
        assert_eq!(m.local_hits + m.injector_pops + m.steals, m.jobs_run);
        assert!(pool.active() <= 4, "respawn inflated the active count");
    }

    /// Randomized (seeded) respawn hand-off churn: escaped panics kill
    /// workers mid-stream while the target flaps, the watchdog keeps
    /// replacing them, and every non-panicking job still runs exactly
    /// once with the acquisition-path conservation intact.
    #[test]
    fn respawn_handoff_churn_preserves_conservation() {
        let mut seed = 0x5EED_D0A7u64;
        for round in 0..4 {
            let n = 4;
            let slot = Arc::new(TargetSlot::new(n));
            let mut cfg = PoolConfig::new(n);
            cfg.isolate_panics = false;
            let mut wd = WatchdogConfig::new(Duration::from_millis(200));
            wd.interval = Duration::from_millis(2);
            wd.respawn = true;
            cfg.watchdog = Some(wd);
            let pool = Pool::with_slot_config(Arc::clone(&slot), cfg);
            let done = Arc::new(AtomicUsize::new(0));
            let mut expected = 0usize;
            let mut submitted = 0u64;
            for flip in 0..30 {
                slot.target
                    .store(if flip % 2 == 0 { 1 } else { n }, Ordering::Release);
                for _ in 0..8 {
                    submitted += 1;
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    if seed % 11 == 0 {
                        pool.execute(|| panic!("churn"));
                    } else {
                        expected += 1;
                        let d = Arc::clone(&done);
                        pool.execute(move || {
                            d.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                }
                if flip % 10 == 9 {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            pool.wait_idle();
            assert_eq!(
                done.load(Ordering::Relaxed),
                expected,
                "round {round}: surviving jobs must all run"
            );
            let m = pool.metrics();
            assert_eq!(m.jobs_run, submitted, "round {round}: {m:?}");
            assert_eq!(
                m.local_hits + m.injector_pops + m.steals,
                m.jobs_run,
                "round {round}: conservation broke: {m:?}"
            );
            assert!(pool.active() <= n, "round {round}: phantom active");
            drop(pool); // must join respawned workers cleanly too
        }
    }

    #[test]
    fn watchdog_detects_stall_and_recovery_with_trace_events() {
        let c = controller(2);
        let mut cfg = PoolConfig::new(2);
        let threshold = Duration::from_millis(200);
        cfg.watchdog = Some(WatchdogConfig::new(threshold));
        let pool = Pool::with_config(&c, cfg);
        // One wedged job: sleeps far past the stall threshold.
        let submitted = std::time::Instant::now();
        pool.execute(|| std::thread::sleep(Duration::from_millis(600)));
        let deadline = submitted + Duration::from_secs(5);
        while pool.metrics().stalls_detected == 0 {
            assert!(std::time::Instant::now() < deadline, "stall never detected");
            std::thread::sleep(Duration::from_millis(5));
        }
        let detected_after = submitted.elapsed();
        assert!(
            detected_after <= threshold * 2 + Duration::from_millis(150),
            "detection too slow: {detected_after:?} for threshold {threshold:?}"
        );
        // The job ends; the next heartbeat closes the episode.
        pool.wait_idle();
        pool.execute(|| {});
        pool.wait_idle();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().histograms["stall_ns"].count == 0 {
            assert!(std::time::Instant::now() < deadline, "never recovered");
            std::thread::sleep(Duration::from_millis(5));
        }
        let events = pool.recorder().drain(usize::MAX);
        let stall = events.iter().find(|e| e.kind == EventKind::Stall);
        let recovered = events.iter().find(|e| e.kind == EventKind::Recovered);
        let stall = stall.expect("Stall event emitted");
        assert!(recovered.is_some(), "Recovered event emitted");
        assert!(
            (stall.worker as usize) < 2,
            "Stall names the wedged worker: {stall:?}"
        );
        // Wire codec round-trips the new kinds.
        assert_eq!(TraceEvent::parse(&stall.to_wire()), Some(*stall));
    }

    #[test]
    fn cpu_set_change_retiers_victim_rings() {
        let slot = Arc::new(TargetSlot::new(4));
        let mut cfg = PoolConfig::new(4);
        cfg.topology = Some(Arc::new(CpuTopology::synthetic(8)));
        let pool = Pool::with_slot_config(Arc::clone(&slot), cfg);
        for _ in 0..20 {
            pool.execute(|| {});
        }
        pool.wait_idle();
        assert_eq!(pool.stats().counters["retier_events"], 0);
        // Publish a concrete CPU set: every worker must rebuild its
        // victim rings around its new home CPU at the next safe point.
        slot.set_cpus(Some(vec![4, 5, 6, 7]));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().counters["retier_events"] < 4 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never re-tiered: {}",
                pool.stats().counters["retier_events"]
            );
            for _ in 0..10 {
                pool.execute(|| {});
            }
            pool.wait_idle();
            std::thread::sleep(Duration::from_millis(2));
        }
        // The re-tier is visible in the event stream with the new home.
        let events = pool.recorder().drain(usize::MAX);
        let retiers: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Retier)
            .collect();
        assert!(!retiers.is_empty(), "no Retier events");
        assert!(
            retiers.iter().all(|e| (4..=7).contains(&e.arg)),
            "re-tier did not move homes into the assigned set: {retiers:?}"
        );
        assert!(events.iter().any(|e| e.kind == EventKind::CpuSet));
    }
}
