//! A task-queue worker pool over real OS threads, with process control.
//!
//! The native analog of the modified threads package: workers pull jobs
//! from a shared queue; **between** jobs — the safe suspension point — a
//! worker compares the pool's count of unsuspended workers against the
//! controller's target and either suspends itself (blocks on a private
//! condition variable, the analog of waiting for a signal) or resumes a
//! suspended colleague. Application code (the jobs) never sees any of it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::controller::{Controller, TargetSlot};
use crate::stats::{Counter, Gauge, Hist, Registry, Snapshot};

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool counters, mirroring the simulated package's [`uthreads::AppMetrics`].
///
/// [`uthreads::AppMetrics`]: ../uthreads/struct.AppMetrics.html
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolMetrics {
    /// Jobs executed.
    pub jobs_run: u64,
    /// Worker self-suspensions.
    pub suspends: u64,
    /// Worker resumptions.
    pub resumes: u64,
}

/// One suspended worker's wakeup channel (the "signal"). The payload
/// carries the resume flag plus the instant the resumer fired it, so the
/// woken worker can measure the unpark latency.
struct ParkToken {
    resumed: Mutex<(bool, Option<Instant>)>,
    cv: Condvar,
}

struct PoolShared {
    /// Jobs with their submission instants (for queue-wait latency).
    queue: Mutex<VecDeque<(Instant, Job)>>,
    /// Signaled when work arrives or the pool shuts down.
    work_cv: Condvar,
    /// Jobs submitted and not yet finished.
    outstanding: AtomicUsize,
    /// Signaled when `outstanding` hits zero.
    idle_cv: Condvar,
    idle_mu: Mutex<()>,
    /// Unsuspended workers.
    active: AtomicUsize,
    suspended: Mutex<Vec<Arc<ParkToken>>>,
    target: Arc<TargetSlot>,
    shutdown: AtomicBool,
    /// Statistics registry behind the handles below (snapshot API).
    registry: Arc<Registry>,
    jobs_run: Counter,
    suspends: Counter,
    resumes: Counter,
    /// Live (unsuspended) worker count, sampled at safe points.
    active_gauge: Gauge,
    /// The controller target, sampled at safe points.
    target_gauge: Gauge,
    /// Submission-to-dequeue latency of each job, nanoseconds.
    queue_wait: Hist,
    /// How long each suspension lasted, nanoseconds.
    park: Hist,
    /// Resume-signal-to-wakeup latency, nanoseconds.
    unpark: Hist,
    /// Busy-wait (1989-style) instead of sleeping when the queue is empty
    /// but work is outstanding.
    idle_spin: bool,
}

/// A controlled worker pool.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool of `nworkers` threads registered with `controller`.
    /// `idle_spin` selects period-faithful busy-waiting (true) or polite
    /// blocking (false) when the queue is momentarily empty.
    pub fn new(controller: &Controller, nworkers: usize, idle_spin: bool) -> Self {
        let target = controller.register(nworkers);
        Self::with_slot(target, nworkers, idle_spin)
    }

    /// Creates a pool whose target is driven externally (e.g. by a
    /// [`crate::UdsClient`] poller talking to a cross-process server)
    /// through the given slot.
    pub fn with_slot(target: Arc<TargetSlot>, nworkers: usize, idle_spin: bool) -> Self {
        assert!(nworkers >= 1);
        let registry = Arc::new(Registry::new());
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            idle_cv: Condvar::new(),
            idle_mu: Mutex::new(()),
            active: AtomicUsize::new(nworkers),
            suspended: Mutex::new(Vec::new()),
            target,
            shutdown: AtomicBool::new(false),
            jobs_run: registry.counter("jobs_run"),
            suspends: registry.counter("suspends"),
            resumes: registry.counter("resumes"),
            active_gauge: registry.gauge("active"),
            target_gauge: registry.gauge("target"),
            queue_wait: registry.histogram("queue_wait_ns"),
            park: registry.histogram("park_ns"),
            unpark: registry.histogram("unpark_ns"),
            registry,
            idle_spin,
        });
        let workers = (0..nworkers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Submits a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        self.shared
            .queue
            .lock()
            .push_back((Instant::now(), Box::new(job)));
        self.shared.work_cv.notify_one();
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_mu.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }

    /// Current number of unsuspended workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// The controller's current target for this pool.
    pub fn target(&self) -> usize {
        self.shared.target.target.load(Ordering::Acquire)
    }

    /// Pool counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_run: self.shared.jobs_run.get(),
            suspends: self.shared.suspends.get(),
            resumes: self.shared.resumes.get(),
        }
    }

    /// The pool's statistics registry (counters, live-vs-target gauges,
    /// queue-wait and park/unpark latency histograms).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// A point-in-time copy of every pool statistic.
    pub fn stats(&self) -> Snapshot {
        self.shared.registry.snapshot()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake sleepers and suspended workers so everyone can exit.
        self.shared.work_cv.notify_all();
        let tokens = std::mem::take(&mut *self.shared.suspended.lock());
        for t in tokens {
            *t.resumed.lock() = (true, None);
            t.cv.notify_one();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(sh: &Arc<PoolShared>) {
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // --- Safe suspension point: no job held, no lock held. ---
        let target = sh.target.target.load(Ordering::Acquire);
        let active = sh.active.load(Ordering::Acquire);
        sh.active_gauge.set(active as i64);
        sh.target_gauge.set(target as i64);
        if active > target && active > 1 {
            // Suspend self (compare-and-swap guards racing suspenders).
            if sh
                .active
                .compare_exchange(active, active - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                sh.suspends.incr();
                let token = Arc::new(ParkToken {
                    resumed: Mutex::new((false, None)),
                    cv: Condvar::new(),
                });
                sh.suspended.lock().push(Arc::clone(&token));
                let parked_at = Instant::now();
                let mut resumed = token.resumed.lock();
                // Bounded waits guard the race where the pool shuts down
                // between our shutdown check and parking.
                while !resumed.0 && !sh.shutdown.load(Ordering::Acquire) {
                    token
                        .cv
                        .wait_for(&mut resumed, std::time::Duration::from_millis(50));
                }
                sh.park.record(parked_at.elapsed().as_nanos() as u64);
                if let (true, Some(signaled_at)) = *resumed {
                    sh.unpark.record(signaled_at.elapsed().as_nanos() as u64);
                }
                continue; // Re-enter the safe point.
            }
        } else if active < target {
            let popped = sh.suspended.lock().pop();
            if let Some(t) = popped {
                sh.active.fetch_add(1, Ordering::AcqRel);
                sh.resumes.incr();
                *t.resumed.lock() = (true, Some(Instant::now()));
                t.cv.notify_one();
            }
        }
        // --- Dequeue and run. ---
        let job = sh.queue.lock().pop_front();
        match job {
            Some((submitted_at, job)) => {
                sh.queue_wait
                    .record(submitted_at.elapsed().as_nanos() as u64);
                job();
                sh.jobs_run.incr();
                if sh.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = sh.idle_mu.lock();
                    sh.idle_cv.notify_all();
                }
            }
            None => {
                if sh.idle_spin {
                    // Period-faithful busy wait: burn a short slice, then
                    // re-check (lets the OS preempt us naturally).
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                } else {
                    let mut q = sh.queue.lock();
                    if q.is_empty() && !sh.shutdown.load(Ordering::Acquire) {
                        sh.work_cv
                            .wait_for(&mut q, std::time::Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn controller(cpus: usize) -> Controller {
        Controller::new(cpus, Duration::from_millis(10))
    }

    #[test]
    fn runs_all_jobs() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().jobs_run, 100);
    }

    #[test]
    fn oversized_pool_suspends_down_to_target() {
        let c = controller(2);
        let pool = Pool::new(&c, 8, false);
        assert_eq!(pool.target(), 2);
        // Keep some work flowing so workers pass safe points.
        for _ in 0..200 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(200)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.active() > 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "never suspended: active={}",
                pool.active()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        assert!(pool.metrics().suspends >= 5);
    }

    #[test]
    fn workers_resume_when_target_grows() {
        let c = controller(4);
        let a = Pool::new(&c, 8, false);
        // Squeeze pool a with a competitor.
        {
            let b = Pool::new(&c, 8, false);
            c.recompute_now();
            assert_eq!(a.target(), 2);
            for _ in 0..400 {
                a.execute(|| std::thread::sleep(Duration::from_micros(100)));
                b.execute(|| std::thread::sleep(Duration::from_micros(100)));
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while a.active() > 3 {
                assert!(std::time::Instant::now() < deadline, "a never shrank");
                std::thread::sleep(Duration::from_millis(5));
            }
            a.wait_idle();
            b.wait_idle();
        } // b drops; its share is released.
        c.recompute_now();
        assert_eq!(a.target(), 4);
        for _ in 0..400 {
            a.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.active() < 4 {
            assert!(std::time::Instant::now() < deadline, "a never grew back");
            std::thread::sleep(Duration::from_millis(5));
        }
        a.wait_idle();
        assert!(a.metrics().resumes >= 1);
    }

    #[test]
    fn stats_cover_latency_histograms_and_gauges() {
        let c = controller(2);
        let pool = Pool::new(&c, 6, false);
        for _ in 0..300 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        // Wait for process control to actually park someone.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.metrics().suspends == 0 {
            assert!(std::time::Instant::now() < deadline, "no worker suspended");
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        let snap = pool.stats();
        // The three classic counters live in the registry too.
        assert_eq!(snap.counters["jobs_run"], 300);
        assert!(snap.counters["suspends"] >= 1);
        // Every job passed through the queue-wait histogram.
        assert_eq!(snap.histograms["queue_wait_ns"].count, 300);
        assert!(snap.histograms["queue_wait_ns"].quantile(0.5).is_some());
        // Gauges were sampled at safe points.
        assert_eq!(snap.gauges["target"], 2);
        assert!(snap.gauges["active"] >= 1);
        // Park duration is recorded when a parked worker wakes — which for
        // a still-suspended worker happens at shutdown. The registry
        // outlives the pool, so snapshot it after the drop.
        let registry = pool.registry();
        drop(pool);
        assert!(registry.snapshot().histograms["park_ns"].count >= 1);
    }

    #[test]
    fn drop_wakes_suspended_workers() {
        let c = controller(1);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..50 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        pool.wait_idle();
        drop(pool); // Must not hang on suspended workers.
    }

    #[test]
    fn arc_pool_handle_works() {
        let c = controller(2);
        let pool = Arc::new(Pool::new(&c, 2, false));
        let counter = Arc::new(AtomicUsize::new(0));
        let k = Arc::clone(&counter);
        pool.execute(move || {
            k.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spin_mode_also_completes() {
        let c = controller(2);
        let pool = Pool::new(&c, 4, true);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }
}
