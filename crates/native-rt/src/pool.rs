//! A task-queue worker pool over real OS threads, with process control.
//!
//! The native analog of the modified threads package: workers pull jobs
//! from a shared queue; **between** jobs — the safe suspension point — a
//! worker compares the pool's count of unsuspended workers against the
//! controller's target and either suspends itself (blocks on a private
//! condition variable, the analog of waiting for a signal) or resumes a
//! suspended colleague. Application code (the jobs) never sees any of it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::controller::{Controller, TargetSlot};

/// A unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Pool counters, mirroring the simulated package's [`uthreads::AppMetrics`].
///
/// [`uthreads::AppMetrics`]: ../uthreads/struct.AppMetrics.html
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolMetrics {
    /// Jobs executed.
    pub jobs_run: u64,
    /// Worker self-suspensions.
    pub suspends: u64,
    /// Worker resumptions.
    pub resumes: u64,
}

/// One suspended worker's wakeup channel (the "signal").
struct ParkToken {
    resumed: Mutex<bool>,
    cv: Condvar,
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signaled when work arrives or the pool shuts down.
    work_cv: Condvar,
    /// Jobs submitted and not yet finished.
    outstanding: AtomicUsize,
    /// Signaled when `outstanding` hits zero.
    idle_cv: Condvar,
    idle_mu: Mutex<()>,
    /// Unsuspended workers.
    active: AtomicUsize,
    suspended: Mutex<Vec<Arc<ParkToken>>>,
    target: Arc<TargetSlot>,
    shutdown: AtomicBool,
    jobs_run: AtomicU64,
    suspends: AtomicU64,
    resumes: AtomicU64,
    /// Busy-wait (1989-style) instead of sleeping when the queue is empty
    /// but work is outstanding.
    idle_spin: bool,
}

/// A controlled worker pool.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool of `nworkers` threads registered with `controller`.
    /// `idle_spin` selects period-faithful busy-waiting (true) or polite
    /// blocking (false) when the queue is momentarily empty.
    pub fn new(controller: &Controller, nworkers: usize, idle_spin: bool) -> Self {
        let target = controller.register(nworkers);
        Self::with_slot(target, nworkers, idle_spin)
    }

    /// Creates a pool whose target is driven externally (e.g. by a
    /// [`crate::UdsClient`] poller talking to a cross-process server)
    /// through the given slot.
    pub fn with_slot(target: Arc<TargetSlot>, nworkers: usize, idle_spin: bool) -> Self {
        assert!(nworkers >= 1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            outstanding: AtomicUsize::new(0),
            idle_cv: Condvar::new(),
            idle_mu: Mutex::new(()),
            active: AtomicUsize::new(nworkers),
            suspended: Mutex::new(Vec::new()),
            target,
            shutdown: AtomicBool::new(false),
            jobs_run: AtomicU64::new(0),
            suspends: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            idle_spin,
        });
        let workers = (0..nworkers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pool-worker-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Submits a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        self.shared.queue.lock().push_back(Box::new(job));
        self.shared.work_cv.notify_one();
    }

    /// Blocks until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.idle_mu.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared.idle_cv.wait(&mut guard);
        }
    }

    /// Current number of unsuspended workers.
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// The controller's current target for this pool.
    pub fn target(&self) -> usize {
        self.shared.target.target.load(Ordering::Acquire)
    }

    /// Pool counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs_run: self.shared.jobs_run.load(Ordering::Acquire),
            suspends: self.shared.suspends.load(Ordering::Acquire),
            resumes: self.shared.resumes.load(Ordering::Acquire),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake sleepers and suspended workers so everyone can exit.
        self.shared.work_cv.notify_all();
        let tokens = std::mem::take(&mut *self.shared.suspended.lock());
        for t in tokens {
            *t.resumed.lock() = true;
            t.cv.notify_one();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(sh: &Arc<PoolShared>) {
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            return;
        }
        // --- Safe suspension point: no job held, no lock held. ---
        let target = sh.target.target.load(Ordering::Acquire);
        let active = sh.active.load(Ordering::Acquire);
        if active > target && active > 1 {
            // Suspend self (compare-and-swap guards racing suspenders).
            if sh
                .active
                .compare_exchange(active, active - 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                sh.suspends.fetch_add(1, Ordering::Relaxed);
                let token = Arc::new(ParkToken {
                    resumed: Mutex::new(false),
                    cv: Condvar::new(),
                });
                sh.suspended.lock().push(Arc::clone(&token));
                let mut resumed = token.resumed.lock();
                // Bounded waits guard the race where the pool shuts down
                // between our shutdown check and parking.
                while !*resumed && !sh.shutdown.load(Ordering::Acquire) {
                    token
                        .cv
                        .wait_for(&mut resumed, std::time::Duration::from_millis(50));
                }
                continue; // Re-enter the safe point.
            }
        } else if active < target {
            let popped = sh.suspended.lock().pop();
            if let Some(t) = popped {
                sh.active.fetch_add(1, Ordering::AcqRel);
                sh.resumes.fetch_add(1, Ordering::Relaxed);
                *t.resumed.lock() = true;
                t.cv.notify_one();
            }
        }
        // --- Dequeue and run. ---
        let job = sh.queue.lock().pop_front();
        match job {
            Some(job) => {
                job();
                sh.jobs_run.fetch_add(1, Ordering::Relaxed);
                if sh.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let _g = sh.idle_mu.lock();
                    sh.idle_cv.notify_all();
                }
            }
            None => {
                if sh.idle_spin {
                    // Period-faithful busy wait: burn a short slice, then
                    // re-check (lets the OS preempt us naturally).
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    std::thread::yield_now();
                } else {
                    let mut q = sh.queue.lock();
                    if q.is_empty() && !sh.shutdown.load(Ordering::Acquire) {
                        sh.work_cv
                            .wait_for(&mut q, std::time::Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn controller(cpus: usize) -> Controller {
        Controller::new(cpus, Duration::from_millis(10))
    }

    #[test]
    fn runs_all_jobs() {
        let c = controller(4);
        let pool = Pool::new(&c, 4, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.metrics().jobs_run, 100);
    }

    #[test]
    fn oversized_pool_suspends_down_to_target() {
        let c = controller(2);
        let pool = Pool::new(&c, 8, false);
        assert_eq!(pool.target(), 2);
        // Keep some work flowing so workers pass safe points.
        for _ in 0..200 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(200)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.active() > 3 {
            assert!(
                std::time::Instant::now() < deadline,
                "never suspended: active={}",
                pool.active()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.wait_idle();
        assert!(pool.metrics().suspends >= 5);
    }

    #[test]
    fn workers_resume_when_target_grows() {
        let c = controller(4);
        let a = Pool::new(&c, 8, false);
        // Squeeze pool a with a competitor.
        {
            let b = Pool::new(&c, 8, false);
            c.recompute_now();
            assert_eq!(a.target(), 2);
            for _ in 0..400 {
                a.execute(|| std::thread::sleep(Duration::from_micros(100)));
                b.execute(|| std::thread::sleep(Duration::from_micros(100)));
            }
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while a.active() > 3 {
                assert!(std::time::Instant::now() < deadline, "a never shrank");
                std::thread::sleep(Duration::from_millis(5));
            }
            a.wait_idle();
            b.wait_idle();
        } // b drops; its share is released.
        c.recompute_now();
        assert_eq!(a.target(), 4);
        for _ in 0..400 {
            a.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.active() < 4 {
            assert!(std::time::Instant::now() < deadline, "a never grew back");
            std::thread::sleep(Duration::from_millis(5));
        }
        a.wait_idle();
        assert!(a.metrics().resumes >= 1);
    }

    #[test]
    fn drop_wakes_suspended_workers() {
        let c = controller(1);
        let pool = Pool::new(&c, 4, false);
        for _ in 0..50 {
            pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
        }
        pool.wait_idle();
        drop(pool); // Must not hang on suspended workers.
    }

    #[test]
    fn arc_pool_handle_works() {
        let c = controller(2);
        let pool = Arc::new(Pool::new(&c, 2, false));
        let counter = Arc::new(AtomicUsize::new(0));
        let k = Arc::clone(&counter);
        pool.execute(move || {
            k.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spin_mode_also_completes() {
        let c = controller(2);
        let pool = Pool::new(&c, 4, true);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let k = Arc::clone(&counter);
            pool.execute(move || {
                k.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }
}
