//! Model-checked interleavings of the flight recorder's SPSC ring.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI loom lane). The
//! `sched-atomic(verified)` annotations in `trace.rs` cite this file:
//! the Vyukov slot protocol (`seq` Release/Acquire around relaxed
//! payload words) and the CAS-claimed `tail` are exactly the edges these
//! models drive. Against the in-tree `shims/loom` each closure replays
//! 256 times on real threads with scheduling perturbation; against real
//! loom the same tests explore interleavings exhaustively.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

use native_rt::{EventKind, SpscRing, TraceEvent};

fn ev(arg: u32) -> TraceEvent {
    TraceEvent {
        ts_ns: u64::from(arg),
        worker: 0,
        kind: EventKind::JobStart,
        arg,
    }
}

/// The publish/consume edge: a consumer racing the producer sees each
/// event exactly once, fully formed, and in publish order — the slot
/// `seq` Release/Acquire pair must never let a half-written payload out.
#[test]
fn publish_consume_hands_off_each_event_once_in_order() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(4));
        let producer_ring = Arc::clone(&ring);
        let producer = thread::spawn(move || {
            producer_ring.push(ev(1));
            producer_ring.push(ev(2));
        });
        let consumer_ring = Arc::clone(&ring);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(e) = consumer_ring.pop() {
                // A published event is whole: ts and meta were written
                // before the seq publish, so they always agree.
                assert_eq!(e.ts_ns, u64::from(e.arg), "torn payload: {e:?}");
                got.push(e.arg);
            }
            got
        });
        let mut got = consumer.join().unwrap();
        producer.join().unwrap();
        // Sweep whatever the consumer's early exit left behind.
        while let Some(e) = ring.pop() {
            got.push(e.arg);
        }
        assert_eq!(got, vec![1, 2], "events lost, duplicated, or reordered");
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.pushed(), 2);
    });
}

/// Drop-oldest overflow racing a consumer: the producer claims the tail
/// entry like a consumer would, so however the CAS race lands, every
/// pushed event is either delivered once or counted dropped — and the
/// newest event always survives.
#[test]
fn overflow_conserves_pushed_equals_popped_plus_dropped() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        let consumer_ring = Arc::clone(&ring);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(e) = consumer_ring.pop() {
                got.push(e.arg);
            }
            got
        });
        // Three pushes into a two-slot ring: at least one push runs the
        // producer's discard path unless the consumer drains fast enough.
        for a in 1..=3 {
            ring.push(ev(a));
        }
        let mut got = consumer.join().unwrap();
        while let Some(e) = ring.pop() {
            got.push(e.arg);
        }
        assert_eq!(
            got.len() as u64 + ring.dropped(),
            ring.pushed(),
            "conservation: delivered {got:?} + dropped {} != pushed {}",
            ring.dropped(),
            ring.pushed()
        );
        // Oldest-dropped keeps delivery in publish order, no duplicates.
        assert!(
            got.windows(2).all(|w| w[0] < w[1]),
            "out of order or duplicated: {got:?}"
        );
        assert_eq!(got.last(), Some(&3), "the newest event must survive");
    });
}

/// Two consumers race for a single event: the CAS on `tail` is the only
/// entry ticket, so exactly one of them wins it.
#[test]
fn competing_consumers_claim_an_event_once() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(4));
        ring.push(ev(7));
        let wins = Arc::new(AtomicUsize::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let r = Arc::clone(&ring);
                let w = Arc::clone(&wins);
                thread::spawn(move || {
                    while let Some(e) = r.pop() {
                        assert_eq!(e.arg, 7);
                        w.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(
            wins.load(Ordering::Relaxed),
            1,
            "event claimed twice or lost"
        );
        assert!(ring.pop().is_none());
    });
}
