//! Model-checked interleavings of the Chase–Lev deque.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI loom lane). The
//! in-tree `shims/loom` replays each closure many times with scheduling
//! perturbation; against the real `loom` crate the same tests explore
//! interleavings exhaustively. Either way the property under test is the
//! deque's core contract: every pushed element is taken exactly once,
//! whether by the owner's `pop` or a thief's `steal`.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

use native_rt::deque::deque;
use native_rt::Steal;

/// Owner pushes then pops while one thief steals: each element lands on
/// exactly one side and none are duplicated or lost.
#[test]
fn owner_pop_races_single_steal() {
    loom::model(|| {
        let (worker, stealer) = deque::<usize>();
        let seen = Arc::new([
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ]);

        for v in 0..3 {
            worker.push(Box::new(v));
        }

        let thief_seen = Arc::clone(&seen);
        let thief = thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    thief_seen[*v].fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });

        while let Some(v) = worker.pop() {
            seen[*v].fetch_add(1, Ordering::Relaxed);
        }
        thief.join().unwrap();

        // The thief may have drained the last element after our final
        // pop returned None — sweep any remainder.
        while let Some(v) = worker.pop() {
            seen[*v].fetch_add(1, Ordering::Relaxed);
        }

        for (i, slot) in seen.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), 1, "element {i} count");
        }
    });
}

/// Two thieves race over a one-element deque: the CAS on `top` must let
/// exactly one of them win.
#[test]
fn competing_steals_take_an_element_once() {
    loom::model(|| {
        let (worker, stealer) = deque::<u32>();
        worker.push(Box::new(7));

        let s2 = stealer.clone();
        let count = Arc::new(AtomicUsize::new(0));

        let c1 = Arc::clone(&count);
        let t1 = thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    assert_eq!(*v, 7);
                    c1.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });
        let c2 = Arc::clone(&count);
        let t2 = thread::spawn(move || loop {
            match s2.steal() {
                Steal::Success(v) => {
                    assert_eq!(*v, 7);
                    c2.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();

        assert_eq!(
            count.load(Ordering::Relaxed),
            1,
            "element stolen twice or lost"
        );
        assert!(worker.pop().is_none());
    });
}

/// The owner pushes concurrently with a thief stealing: nothing pushed
/// is lost, and the owner's later pops never see a stolen element.
#[test]
fn push_races_steal_without_loss() {
    loom::model(|| {
        let (worker, stealer) = deque::<usize>();
        worker.push(Box::new(0));

        let stolen = Arc::new(AtomicUsize::new(usize::MAX));
        let thief_stolen = Arc::clone(&stolen);
        let thief = thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    thief_stolen.store(*v, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });

        worker.push(Box::new(1));
        worker.push(Box::new(2));
        thief.join().unwrap();

        let mut owned = Vec::new();
        while let Some(v) = worker.pop() {
            owned.push(*v);
        }

        let mut all = owned;
        let s = stolen.load(Ordering::Relaxed);
        if s != usize::MAX {
            all.push(s);
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "elements lost or duplicated");
    });
}

/// Growth (buffer doubling) while a thief holds a pointer to the old
/// buffer must stay safe: retired buffers are kept alive, so the steal
/// either retries against the new buffer or wins a valid element.
#[test]
fn steal_survives_concurrent_growth() {
    loom::model(|| {
        // INITIAL_CAP is 64; push past it to force at least one grow.
        let (worker, stealer) = deque::<usize>();
        for v in 0..4 {
            worker.push(Box::new(v));
        }

        let got = Arc::new(AtomicUsize::new(0));
        let thief_got = Arc::clone(&got);
        let thief = thread::spawn(move || {
            for _ in 0..2 {
                loop {
                    match stealer.steal() {
                        Steal::Success(_) => {
                            thief_got.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
            }
        });

        for v in 4..80 {
            worker.push(Box::new(v));
        }
        thief.join().unwrap();

        let mut popped = 0usize;
        while worker.pop().is_some() {
            popped += 1;
        }
        assert_eq!(
            popped + got.load(Ordering::Relaxed),
            80,
            "conservation across grow"
        );
    });
}
