//! Model-checked interleavings of the Chase–Lev deque.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI loom lane). The
//! in-tree `shims/loom` replays each closure many times with scheduling
//! perturbation; against the real `loom` crate the same tests explore
//! interleavings exhaustively. Either way the property under test is the
//! deque's core contract: every pushed element is taken exactly once,
//! whether by the owner's `pop` or a thief's `steal`.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

use native_rt::deque::deque;
use native_rt::Steal;

/// Owner pushes then pops while one thief steals: each element lands on
/// exactly one side and none are duplicated or lost.
#[test]
fn owner_pop_races_single_steal() {
    loom::model(|| {
        let (worker, stealer) = deque::<usize>();
        let seen = Arc::new([
            AtomicUsize::new(0),
            AtomicUsize::new(0),
            AtomicUsize::new(0),
        ]);

        for v in 0..3 {
            worker.push(Box::new(v));
        }

        let thief_seen = Arc::clone(&seen);
        let thief = thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    thief_seen[*v].fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });

        while let Some(v) = worker.pop() {
            seen[*v].fetch_add(1, Ordering::Relaxed);
        }
        thief.join().unwrap();

        // The thief may have drained the last element after our final
        // pop returned None — sweep any remainder.
        while let Some(v) = worker.pop() {
            seen[*v].fetch_add(1, Ordering::Relaxed);
        }

        for (i, slot) in seen.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), 1, "element {i} count");
        }
    });
}

/// Two thieves race over a one-element deque: the CAS on `top` must let
/// exactly one of them win.
#[test]
fn competing_steals_take_an_element_once() {
    loom::model(|| {
        let (worker, stealer) = deque::<u32>();
        worker.push(Box::new(7));

        let s2 = stealer.clone();
        let count = Arc::new(AtomicUsize::new(0));

        let c1 = Arc::clone(&count);
        let t1 = thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    assert_eq!(*v, 7);
                    c1.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });
        let c2 = Arc::clone(&count);
        let t2 = thread::spawn(move || loop {
            match s2.steal() {
                Steal::Success(v) => {
                    assert_eq!(*v, 7);
                    c2.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();

        assert_eq!(
            count.load(Ordering::Relaxed),
            1,
            "element stolen twice or lost"
        );
        assert!(worker.pop().is_none());
    });
}

/// The owner pushes concurrently with a thief stealing: nothing pushed
/// is lost, and the owner's later pops never see a stolen element.
#[test]
fn push_races_steal_without_loss() {
    loom::model(|| {
        let (worker, stealer) = deque::<usize>();
        worker.push(Box::new(0));

        let stolen = Arc::new(AtomicUsize::new(usize::MAX));
        let thief_stolen = Arc::clone(&stolen);
        let thief = thread::spawn(move || loop {
            match stealer.steal() {
                Steal::Success(v) => {
                    thief_stolen.store(*v, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });

        worker.push(Box::new(1));
        worker.push(Box::new(2));
        thief.join().unwrap();

        let mut owned = Vec::new();
        while let Some(v) = worker.pop() {
            owned.push(*v);
        }

        let mut all = owned;
        let s = stolen.load(Ordering::Relaxed);
        if s != usize::MAX {
            all.push(s);
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2], "elements lost or duplicated");
    });
}

/// A hunting worker walking the *tiered* victim order (SMT sibling
/// first, then LLC mates — the order `topology::steal_tiers` computes)
/// races another thief over the same deques: every element still lands
/// exactly once, independent of which tier the winning scan came from.
/// The tier layout is pure data (no atomics), so computing it under loom
/// is free; what the model checks is that a tier-ordered *sequence* of
/// steals composes as safely as the single-victim primitives above.
#[test]
fn tiered_victim_scan_conserves_elements() {
    use native_rt::topology::{steal_tiers, CpuTopology};

    loom::model(|| {
        // Workers 0..3 pinned to synthetic CPUs 0..3: for worker 0 the
        // tier order is [1] (SMT sibling), then [2, 3] (LLC mates).
        let topo = CpuTopology::synthetic(4);
        let tiers = steal_tiers(&topo, &[0, 1, 2, 3], 0);
        assert_eq!(tiers[0], vec![1]);
        assert_eq!(tiers[1], vec![2, 3]);

        // Victims 1 and 2 hold one element each; victim 3 stays empty
        // (a suspended worker's drained deque looks exactly like this).
        let (w1, s1) = deque::<usize>();
        let (w2, s2) = deque::<usize>();
        let (_w3, s3) = deque::<usize>();
        w1.push(Box::new(10));
        w2.push(Box::new(20));
        let stealers = [s1, s2, s3];

        let got = Arc::new(AtomicUsize::new(0));

        // The tier-ordered hunter: scan smt, then llc, like the pool's
        // steal_task does, taking at most one element per full scan.
        let hunter_got = Arc::clone(&got);
        let hunter_stealers = stealers.clone();
        let hunter = thread::spawn(move || {
            for _ in 0..2 {
                'scan: for tier in [vec![0usize], vec![1, 2]] {
                    for v in tier {
                        loop {
                            match hunter_stealers[v].steal() {
                                Steal::Success(x) => {
                                    hunter_got.fetch_add(*x, Ordering::Relaxed);
                                    break 'scan;
                                }
                                Steal::Retry => {}
                                Steal::Empty => break,
                            }
                        }
                    }
                }
            }
        });

        // A rival thief races the hunter for victim 1's element.
        let rival_got = Arc::clone(&got);
        let rival = thread::spawn(move || loop {
            match stealers[0].steal() {
                Steal::Success(x) => {
                    rival_got.fetch_add(*x, Ordering::Relaxed);
                    break;
                }
                Steal::Retry => {}
                Steal::Empty => break,
            }
        });

        hunter.join().unwrap();
        rival.join().unwrap();

        // Sweep anything neither got (the hunter may have taken victim
        // 1's element in round one and victim 2's in round two, or the
        // rival may have won victim 1 while the hunter only got victim
        // 2 — in every interleaving each element is taken exactly once).
        let mut rest = 0usize;
        while let Some(x) = w1.pop() {
            rest += *x;
        }
        while let Some(x) = w2.pop() {
            rest += *x;
        }
        assert_eq!(
            got.load(Ordering::Relaxed) + rest,
            30,
            "tiered scan lost or duplicated an element"
        );
    });
}

/// Growth (buffer doubling) while a thief holds a pointer to the old
/// buffer must stay safe: retired buffers are kept alive, so the steal
/// either retries against the new buffer or wins a valid element.
#[test]
fn steal_survives_concurrent_growth() {
    loom::model(|| {
        // INITIAL_CAP is 64; push past it to force at least one grow.
        let (worker, stealer) = deque::<usize>();
        for v in 0..4 {
            worker.push(Box::new(v));
        }

        let got = Arc::new(AtomicUsize::new(0));
        let thief_got = Arc::clone(&got);
        let thief = thread::spawn(move || {
            for _ in 0..2 {
                loop {
                    match stealer.steal() {
                        Steal::Success(_) => {
                            thief_got.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                }
            }
        });

        for v in 4..80 {
            worker.push(Box::new(v));
        }
        thief.join().unwrap();

        let mut popped = 0usize;
        while worker.pop().is_some() {
            popped += 1;
        }
        assert_eq!(
            popped + got.load(Ordering::Relaxed),
            80,
            "conservation across grow"
        );
    });
}
