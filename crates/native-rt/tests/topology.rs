//! Golden-file tests for sysfs topology parsing, plus property tests for
//! the distance model and cpulist codec.
//!
//! Each golden test materializes a miniature
//! `/sys/devices/system/cpu`-shaped tree in a temp directory — the same
//! files the kernel exposes, with the same formats — and checks that
//! [`CpuTopology::from_sysfs`] reconstructs the intended distances and
//! linearization.

use std::path::{Path, PathBuf};

use native_rt::topology::{format_cpulist, parse_cpulist, steal_tiers, CpuTopology};

use proptest::prelude::*;

/// A scratch sysfs root, removed on drop.
struct FakeSysfs {
    root: PathBuf,
}

impl FakeSysfs {
    fn new(tag: &str) -> FakeSysfs {
        let root = std::env::temp_dir().join(format!("procctl-topo-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fake sysfs root");
        FakeSysfs { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, content).expect("write sysfs file");
    }

    /// One `cpuN` directory: package/core from `topology/`, an L1 private
    /// cache and an L3 `shared_cpu_list` (the LLC) under `cache/`.
    fn cpu(&self, id: u32, package: u32, core: u32, llc_shared: &str) {
        let base = format!("cpu{id}");
        self.write(
            &format!("{base}/topology/physical_package_id"),
            &format!("{package}\n"),
        );
        self.write(&format!("{base}/topology/core_id"), &format!("{core}\n"));
        self.write(&format!("{base}/cache/index0/level"), "1\n");
        self.write(
            &format!("{base}/cache/index0/shared_cpu_list"),
            &format!("{id}\n"),
        );
        self.write(&format!("{base}/cache/index3/level"), "3\n");
        self.write(
            &format!("{base}/cache/index3/shared_cpu_list"),
            &format!("{llc_shared}\n"),
        );
    }

    fn path(&self) -> &Path {
        &self.root
    }
}

impl Drop for FakeSysfs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn two_socket_no_smt_layout() {
    // 4 CPUs, two sockets, one thread per core, one LLC per socket —
    // the classic server shape the paper's DASH-era machines had.
    let fs = FakeSysfs::new("twosocket");
    fs.cpu(0, 0, 0, "0-1");
    fs.cpu(1, 0, 1, "0-1");
    fs.cpu(2, 1, 0, "2-3");
    fs.cpu(3, 1, 1, "2-3");
    let t = CpuTopology::from_sysfs(fs.path()).expect("parse");
    assert_eq!(t.len(), 4);
    // No SMT: nearest non-self neighbor shares the LLC, not the core.
    assert_eq!(t.distance(0, 1), 2, "same socket, same LLC");
    assert_eq!(t.distance(0, 2), 4, "cross socket is remote");
    assert_eq!(t.distance(2, 3), 2);
    // Same core_id on DIFFERENT sockets must not look like siblings.
    assert_eq!(t.distance(0, 2), 4, "core_id collides across packages");
    let order = t.linear_order();
    assert_eq!(order, vec![0, 1, 2, 3]);
}

#[test]
fn smt_single_socket_layout() {
    // 4 CPUs = 2 cores × 2 hyperthreads, one shared L3.
    let fs = FakeSysfs::new("smt");
    fs.cpu(0, 0, 0, "0-3");
    fs.cpu(1, 0, 0, "0-3");
    fs.cpu(2, 0, 1, "0-3");
    fs.cpu(3, 0, 1, "0-3");
    let t = CpuTopology::from_sysfs(fs.path()).expect("parse");
    assert_eq!(t.distance(0, 1), 1, "SMT sibling");
    assert_eq!(t.distance(0, 2), 2, "same LLC, different core");
    assert_eq!(t.distance(1, 3), 2);
    // Siblings stay adjacent in the handout order.
    let order = t.linear_order();
    let pos = |id: u32| order.iter().position(|&c| c == id).unwrap();
    assert_eq!(pos(0).abs_diff(pos(1)), 1, "siblings adjacent: {order:?}");
    assert_eq!(pos(2).abs_diff(pos(3)), 1, "siblings adjacent: {order:?}");
}

#[test]
fn heterogeneous_split_llc_layout() {
    // A big.LITTLE-ish part: one package, two cache clusters — distance
    // 3 (same socket, different LLC) exists without a second socket.
    let fs = FakeSysfs::new("hetero");
    fs.cpu(0, 0, 0, "0-1");
    fs.cpu(1, 0, 1, "0-1");
    fs.cpu(2, 0, 2, "2-3");
    fs.cpu(3, 0, 3, "2-3");
    let t = CpuTopology::from_sysfs(fs.path()).expect("parse");
    assert_eq!(t.distance(0, 1), 2, "same cluster");
    assert_eq!(t.distance(0, 2), 3, "same socket, other cluster");
    assert_eq!(t.distance(0, 3), 3);
    // The handout order keeps each cluster contiguous.
    let order = t.linear_order();
    let pos = |id: u32| order.iter().position(|&c| c == id).unwrap();
    assert!(pos(0).abs_diff(pos(1)) == 1 && pos(2).abs_diff(pos(3)) == 1);
}

#[test]
fn junk_entries_and_broken_cpus_are_skipped() {
    let fs = FakeSysfs::new("junk");
    fs.cpu(0, 0, 0, "0-1");
    fs.cpu(1, 0, 1, "0-1");
    // Kernel clutter that must be ignored, not choked on.
    fs.write("cpufreq/policy0/scaling_governor", "performance\n");
    fs.write("online", "0-1\n");
    fs.write("cpuidle/notes", "nope\n");
    // A cpu dir with garbled topology files contributes nothing.
    fs.write("cpu7/topology/physical_package_id", "not-a-number\n");
    fs.write("cpu7/topology/core_id", "0\n");
    let t = CpuTopology::from_sysfs(fs.path()).expect("parse");
    assert_eq!(t.len(), 2);
    assert!(t.record(7).is_none(), "broken cpu7 must be skipped");
}

#[test]
fn missing_cache_hierarchy_falls_back_to_package_llc() {
    // Some VMs expose topology/ but no cache/: the LLC defaults to the
    // package, so same-socket CPUs are LLC-near rather than remote.
    let fs = FakeSysfs::new("nocache");
    for (id, pkg, core) in [(0, 0, 0), (1, 0, 1), (2, 1, 0), (3, 1, 1)] {
        fs.write(
            &format!("cpu{id}/topology/physical_package_id"),
            &format!("{pkg}\n"),
        );
        fs.write(&format!("cpu{id}/topology/core_id"), &format!("{core}\n"));
    }
    let t = CpuTopology::from_sysfs(fs.path()).expect("parse");
    assert_eq!(t.distance(0, 1), 2, "package-wide LLC fallback");
    assert_eq!(t.distance(0, 2), 4);
}

#[test]
fn empty_or_missing_sysfs_is_an_error_and_synthetic_covers_it() {
    let fs = FakeSysfs::new("empty");
    assert!(CpuTopology::from_sysfs(fs.path()).is_err(), "empty tree");
    let gone = fs.path().join("never-created");
    assert!(CpuTopology::from_sysfs(&gone).is_err(), "missing tree");
    // The fallback the runtime actually takes on such hosts: a synthetic
    // layout of the requested width, fully populated.
    let t = CpuTopology::synthetic(6);
    assert_eq!(t.len(), 6);
    assert_eq!(t.linear_order().len(), 6);
}

#[test]
fn golden_tree_steal_tiers_partition_all_victims() {
    let fs = FakeSysfs::new("tiers");
    fs.cpu(0, 0, 0, "0-3");
    fs.cpu(1, 0, 0, "0-3");
    fs.cpu(2, 0, 1, "0-3");
    fs.cpu(3, 0, 1, "0-3");
    let t = CpuTopology::from_sysfs(fs.path()).expect("parse");
    let cpus = [0u32, 1, 2, 3];
    let tiers = steal_tiers(&t, &cpus, 0);
    assert_eq!(tiers[0], vec![1], "SMT sibling first");
    assert_eq!(tiers[1], vec![2, 3], "then LLC mates");
    assert!(tiers[2].is_empty() && tiers[3].is_empty());
}

proptest! {
    /// The distance matrix over any synthetic topology is symmetric with
    /// a zero diagonal, and bounded by the remote tier.
    #[test]
    fn distance_matrix_symmetric_zero_diagonal(n in 1usize..64) {
        let t = CpuTopology::synthetic(n);
        for a in 0..n as u32 {
            prop_assert_eq!(t.distance(a, a), 0);
            for b in 0..n as u32 {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
                prop_assert!(t.distance(a, b) <= 4);
            }
        }
    }

    /// Same invariants for arbitrary (not grid-shaped) record sets.
    #[test]
    fn distance_symmetry_on_arbitrary_records(
        placements in prop::collection::vec((0u32..4, 0u32..8, 0u32..4), 1..24)
    ) {
        let records: Vec<_> = placements
            .iter()
            .enumerate()
            .map(|(i, &(package, core, llc))| native_rt::CpuRecord {
                id: i as u32,
                package,
                core,
                llc,
            })
            .collect();
        let n = records.len() as u32;
        let t = CpuTopology::from_records(records);
        for a in 0..n {
            prop_assert_eq!(t.distance(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    /// format ∘ parse is the identity on canonical cpulists, and parse ∘
    /// format canonicalizes arbitrary id sets.
    #[test]
    fn cpulist_round_trips(raw in prop::collection::vec(0u32..2048, 0..64)) {
        let mut ids = raw;
        ids.sort_unstable();
        ids.dedup();
        let rendered = format_cpulist(&ids);
        prop_assert_eq!(parse_cpulist(&rendered).expect("own output parses"), ids);
    }

    /// The parser never panics on arbitrary short strings.
    #[test]
    fn cpulist_parser_total(s in "[0-9,\\- ]{0,24}") {
        let _ = parse_cpulist(&s);
    }
}
