//! Starvation-bound properties for the CR gate's promotion policy.
//!
//! The culled list is LIFO on purpose (the most recently passivated
//! thread has the warmest cache), which is exactly the shape that
//! starves: a steady arrival stream keeps pushing fresh threads onto
//! the back and the front never moves. `promote_index`'s aging rule —
//! promote the *oldest* once it has waited `promotion_interval`
//! admissions — is the fairness backstop. These properties drive a
//! discrete model of the gate (admissions are the clock, exactly as in
//! `CrGate`) over arbitrary schedules and pin the bound the ISSUE
//! demands: no culled thread waits more than
//! `promotion_interval × active_set` admissions.

use std::collections::VecDeque;

use native_rt::crlock::{promote_index, AdaptiveConfig, AdaptiveSizer};
use proptest::prelude::*;

#[derive(Clone, Copy, PartialEq)]
enum ThreadState {
    Idle,
    Culled,
    Active,
}

/// Replays `schedule` against a discrete gate model: each step picks a
/// thread; idle threads try to enter (admit or cull), active threads
/// exit (promote per `promote_index`, else free the slot). Returns the
/// maximum admissions any culled thread waited before promotion.
fn max_promotion_wait(
    nthreads: usize,
    active_max: usize,
    interval: u64,
    schedule: &[usize],
) -> u64 {
    let mut state = vec![ThreadState::Idle; nthreads];
    let mut culled: VecDeque<(usize, u64)> = VecDeque::new();
    let mut active = 0usize;
    let mut now = 0u64;
    let mut max_wait = 0u64;

    for &pick in schedule {
        let t = pick % nthreads;
        match state[t] {
            ThreadState::Culled => {} // parked — cannot act
            ThreadState::Idle => {
                if active < active_max {
                    active += 1;
                    now += 1;
                    state[t] = ThreadState::Active;
                } else {
                    culled.push_back((t, now));
                    state[t] = ThreadState::Culled;
                }
            }
            ThreadState::Active => {
                let stamps: VecDeque<u64> = culled.iter().map(|&(_, s)| s).collect();
                if let Some(idx) = promote_index(&stamps, now, interval) {
                    let (w, stamp) = culled.remove(idx).unwrap();
                    now += 1;
                    max_wait = max_wait.max(now - stamp);
                    state[w] = ThreadState::Active;
                } else {
                    active -= 1;
                }
                state[t] = ThreadState::Idle;
            }
        }
    }
    max_wait
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ISSUE's starvation bound: with an active set of `a` and a
    /// promotion interval of `i`, no culled thread is promoted after
    /// waiting more than `i × a` admissions, over arbitrary schedules.
    #[test]
    fn no_culled_thread_waits_more_than_interval_times_active_set(
        a in 2usize..9,
        i in 8u64..65,
        schedule in prop::collection::vec(0usize..64, 1..800),
    ) {
        // Enough threads to overflow the active set, few enough that the
        // aging backstop can cycle the whole list inside the bound.
        let nthreads = (a + (a as u64 * i / 2) as usize).min(64);
        let wait = max_promotion_wait(nthreads, a, i, &schedule);
        prop_assert!(
            wait <= i * a as u64,
            "a culled thread waited {wait} admissions (bound {})",
            i * a as u64
        );
    }

    /// `promote_index` always returns a valid index, and only ever the
    /// LIFO back or the overdue front.
    #[test]
    fn promote_index_picks_back_or_overdue_front(
        stamps in prop::collection::vec(0u64..1000, 0..32),
        advance in 0u64..200,
        interval in 1u64..128,
    ) {
        let mut sorted = stamps;
        sorted.sort_unstable();
        let q: VecDeque<u64> = sorted.into_iter().collect();
        let now = q.back().copied().unwrap_or(0) + advance;
        match promote_index(&q, now, interval) {
            None => prop_assert!(q.is_empty()),
            Some(idx) => {
                prop_assert!(idx < q.len());
                if idx == 0 {
                    // Front only when overdue (or the list is length 1).
                    prop_assert!(
                        q.len() == 1 || now.saturating_sub(q[0]) >= interval
                    );
                } else {
                    prop_assert_eq!(idx, q.len() - 1);
                }
            }
        }
    }

    /// The adaptive sizer never leaves its configured bounds, whatever
    /// latencies it observes.
    #[test]
    fn adaptive_sizer_respects_bounds(
        min in 1usize..5,
        span in 0usize..13,
        start_off in 0usize..13,
        latencies in prop::collection::vec((1u64..10_000_000, any::<bool>()), 1..600),
    ) {
        let max = min + span;
        let cfg = AdaptiveConfig { min, max, adapt_every: 4, ..AdaptiveConfig::default() };
        let mut sizer = AdaptiveSizer::new(cfg);
        let mut cur = (min + start_off.min(span)).min(max);
        for (lat, waiting) in latencies {
            if let Some(n) = sizer.observe(lat, cur, waiting) {
                prop_assert!(n >= min && n <= max, "sizer left [{min}, {max}]: {n}");
                cur = n;
            }
        }
    }
}
