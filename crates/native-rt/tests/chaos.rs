//! Chaos-lane integration tests for the fault-tolerant control plane.
//!
//! Every test is deterministic: fault schedules come from fixed seeds
//! (see `chaos::ChaosProxy`), and timing assertions use generous
//! deadlines rather than exact sleeps. CI runs this file in its own
//! `chaos` lane.

#![cfg(target_os = "linux")]

use native_rt::{
    ChaosConfig, ChaosProxy, CrConfig, JobChaos, JobFault, Pool, PoolConfig, RestartKind,
    SupervisedClient, SupervisorConfig, TargetSlot, UdsClient, UdsServer, UdsServerConfig,
    WatchdogConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("procctl-chaos-{}-{tag}.sock", std::process::id()))
}

fn fast_sup_cfg(path: &std::path::Path, nworkers: u32) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(path, nworkers);
    cfg.io_timeout = Duration::from_millis(250);
    cfg.backoff_initial = Duration::from_millis(10);
    cfg.backoff_max = Duration::from_millis(80);
    cfg
}

/// Wait until `cond` holds or panic after `secs` seconds.
fn wait_for(secs: u64, what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The acceptance scenario: a pool driven through a `SupervisedClient`
/// survives a server kill + restart. It must enter degraded mode (target
/// == nworkers) within a poll interval or two, re-register against the
/// restarted server's new epoch, and converge back to the fair-partition
/// target — with `reconnects` and `degraded_enters` observable via STATS.
#[test]
fn pool_survives_server_kill_and_restart() {
    let path = sock_path("kill-restart");
    let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
    let first_epoch = server.epoch();

    let slot = Arc::new(TargetSlot::new(8));
    let pool = Pool::with_slot(Arc::clone(&slot), 8, false);
    let registry = pool.registry();
    let sup = SupervisedClient::new(fast_sup_cfg(&path, 8), Arc::clone(&registry));
    assert!(sup.connected());
    assert_eq!(sup.epoch(), Some(first_epoch));
    let _poller = sup.spawn_poller(Arc::clone(&slot), Duration::from_millis(25), true);

    // Healthy: one 8-worker app on a 4-cpu machine gets all 4 processors.
    wait_for(5, "initial fair target", || {
        slot.target.load(Ordering::Acquire) == 4
    });

    // The pool keeps doing real work across the whole outage.
    let done = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    for _ in 0..64 {
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
    }

    // Kill the server. The poller must fall back to the uncontrolled
    // target (all 8 workers runnable) — the paper's no-server behavior.
    drop(server);
    wait_for(5, "degraded fallback target", || {
        slot.target.load(Ordering::Acquire) == 8
    });

    // Restart on the same path: new epoch, empty registration table. The
    // supervisor must reconnect, re-register, and converge back to 4.
    let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("restart");
    assert_ne!(
        server.epoch(),
        first_epoch,
        "epochs must differ across restarts"
    );
    wait_for(5, "post-restart fair target", || {
        slot.target.load(Ordering::Acquire) == 4
    });

    pool.wait_idle();
    assert_eq!(done.load(Ordering::Relaxed), 64);

    // Recovery is visible in the pool's own registry...
    let snap = registry.snapshot();
    assert!(snap.counters["reconnects"] >= 1, "{snap:?}");
    assert!(snap.counters["degraded_enters"] >= 1, "{snap:?}");
    assert!(snap.counters["epoch_changes"] >= 1, "{snap:?}");
    assert_eq!(snap.gauges["degraded"], 0, "must have left degraded mode");
    assert!(snap.histograms["degraded_ns"].count >= 1);

    // ...and over the wire: the poller REPORTs the shared registry, so a
    // second client can read the fault counters through STATS.
    let mut observer = UdsClient::register(&path, 1).expect("observer");
    let line = loop {
        let line = observer.app_stats(std::process::id()).expect("app stats");
        if line.contains("reconnects=") {
            break line;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        line.contains("degraded_enters="),
        "STATS line missing fault counters: {line}"
    );
}

/// CPU-set handout across an outage: under a live server the poller
/// publishes the assigned CPU set; killing the server drops the slot to
/// count-only degraded mode (no set — workers widen their affinity);
/// a restart re-registers and re-publishes a concrete set, so workers
/// re-pin on recovery.
#[test]
fn cpu_set_targets_survive_server_kill_and_restart() {
    let path = sock_path("cpuset-kill-restart");
    let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");

    let slot = Arc::new(TargetSlot::new(8));
    let pool = Pool::with_slot(Arc::clone(&slot), 8, false);
    let sup = SupervisedClient::new(fast_sup_cfg(&path, 8), pool.registry());
    let _poller = sup.spawn_poller(Arc::clone(&slot), Duration::from_millis(25), true);

    // Healthy: the only app on a 4-cpu machine is handed all four CPUs.
    wait_for(5, "initial CPU-set handout", || {
        slot.cpus().is_some_and(|c| c.len() == 4)
    });
    let gen_pinned = slot.cpus_generation();

    // Kill the server: degraded mode must clear the set (count-only),
    // not leave workers pinned to a stale assignment.
    drop(server);
    wait_for(5, "degraded clears the CPU set", || slot.cpus().is_none());
    assert_eq!(
        slot.target.load(Ordering::Acquire),
        8,
        "degraded fallback must free all workers"
    );
    assert_ne!(slot.cpus_generation(), gen_pinned, "clear bumps generation");

    // Restart: the poller re-registers and the set comes back, so the
    // pool's workers re-apply their affinity.
    let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("restart");
    wait_for(5, "CPU set re-published after restart", || {
        slot.cpus().is_some_and(|c| c.len() == 4)
    });
    assert_eq!(slot.target.load(Ordering::Acquire), 4);
}

/// A restarted server hands out a fresh epoch; a direct (non-poller)
/// supervised client observes the bump and counts it.
#[test]
fn restart_bumps_epoch_and_client_re_registers() {
    let path = sock_path("epoch-bump");
    let server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("server");
    let registry = Arc::new(native_rt::Registry::new());
    let mut sup = SupervisedClient::new(fast_sup_cfg(&path, 4), Arc::clone(&registry));
    assert_eq!(sup.poll_target(), Some(4));
    let e1 = sup.epoch().expect("epoch after first poll");

    drop(server);
    // First poll after the kill fails and enters degraded mode.
    wait_for(5, "degraded after kill", || sup.poll_target().is_none());

    let _server = UdsServer::start(UdsServerConfig::new(&path, 4)).expect("restart");
    wait_for(5, "healthy poll after restart", || {
        sup.poll_target() == Some(4)
    });
    let e2 = sup.epoch().expect("epoch after restart");
    assert_ne!(e1, e2, "boot epoch must change across restarts");
    let snap = registry.snapshot();
    assert!(snap.counters["epoch_changes"] >= 1);
    assert!(snap.counters["reconnects"] >= 1);
}

/// A client that stops polling loses its lease: the remaining app's
/// share grows back to the whole machine and the server counts the
/// expiry.
#[test]
fn wedged_client_lease_expires_and_share_returns() {
    let path = sock_path("lease-reclaim");
    let mut cfg = UdsServerConfig::new(&path, 4);
    cfg.lease_ttl = Duration::from_millis(80);
    cfg.prune_dead = false; // isolate lease expiry from the /proc prune
    let server = UdsServer::start(cfg).expect("server");

    // The "wedged" app registers over a raw connection with a pid that is
    // not ours (same-process registrations share one pid) and never polls
    // again.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut s = std::os::unix::net::UnixStream::connect(&path).expect("connect");
        s.write_all(b"REGISTER 999999 8\n").expect("register");
        let mut line = String::new();
        BufReader::new(&s).read_line(&mut line).expect("reply");
        assert!(line.starts_with("OK "), "unexpected reply: {line}");
        // Keep the stream open but silent — a wedged client, not a dead one.
        std::mem::forget(s);
    }

    let mut live = UdsClient::register(&path, 8).expect("live app");
    // Two registered apps on 4 cpus: 2 each.
    assert_eq!(live.poll().expect("poll"), 2);

    // Outlive the wedged app's lease, keeping our own fresh.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        std::thread::sleep(Duration::from_millis(30));
        if live.poll().expect("poll") == 4 {
            break;
        }
        assert!(Instant::now() < deadline, "lease never expired");
    }
    let snap = server.stats();
    assert!(snap.counters["lease_expiries"] >= 1, "{snap:?}");
}

/// Torn and corrupted reply frames, injected by the chaos proxy with a
/// fixed seed, never wedge or panic the supervised client — it keeps
/// producing targets (healthy or fallback) through the noise.
#[test]
fn client_survives_truncated_and_garbled_frames() {
    let server_path = sock_path("garble-upstream");
    let proxy_path = sock_path("garble-listen");
    let _server = UdsServer::start(UdsServerConfig::new(&server_path, 4)).expect("server");
    let mut cfg = ChaosConfig::passthrough(&proxy_path, &server_path, 0xC0FFEE);
    cfg.truncate_prob = 0.15;
    cfg.garble_prob = 0.15;
    cfg.drop_prob = 0.10;
    let proxy = ChaosProxy::start(cfg).expect("proxy");

    let mut sup_cfg = fast_sup_cfg(&proxy_path, 8);
    sup_cfg.io_timeout = Duration::from_millis(120); // dropped replies resolve fast
    let registry = Arc::new(native_rt::Registry::new());
    let mut sup = SupervisedClient::new(sup_cfg, Arc::clone(&registry));

    let mut healthy = 0u32;
    for _ in 0..120 {
        if sup.poll_target() == Some(4) {
            healthy += 1;
        }
        sup.retry_now();
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        healthy >= 10,
        "made almost no progress through faults: {healthy}"
    );

    let faults = proxy.stats();
    let injected =
        faults.counters["truncates"] + faults.counters["garbles"] + faults.counters["drops"];
    assert!(injected >= 1, "proxy injected nothing: {faults:?}");
    // Garbled frames surface as poll errors, never as panics or hangs.
    let snap = registry.snapshot();
    assert!(snap.counters["poll_errors"] >= 1, "{snap:?}");
}

/// Panic isolation under churn: a seeded fraction of jobs panic, yet no
/// worker dies, every submitted job is accounted for exactly once
/// (`jobs_run` conservation), and the pool keeps executing afterwards.
#[test]
fn injected_job_panics_never_lose_workers_or_jobs() {
    let slot = Arc::new(TargetSlot::new(4));
    let mut cfg = PoolConfig::new(4);
    cfg.watchdog = Some(WatchdogConfig::new(Duration::from_millis(500)));
    let pool = Pool::with_slot_config(slot, cfg);

    const JOBS: u64 = 400;
    let mut chaos = JobChaos::new(0xBADC0DE, 0.2, 0.0, Duration::ZERO);
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..JOBS {
        let d = Arc::clone(&done);
        let (_, job) = chaos.wrap(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        pool.execute(job);
    }
    pool.wait_idle();

    let (panics, _) = chaos.injected();
    assert!(panics > 0, "the schedule must inject at least one panic");
    let m = pool.metrics();
    assert_eq!(m.jobs_run, JOBS, "conservation: every job accounted once");
    assert_eq!(m.jobs_panicked, panics, "every injected panic was caught");
    assert_eq!(
        done.load(Ordering::Relaxed) as u64,
        JOBS - panics,
        "clean jobs all ran; panicked jobs never reached their work"
    );
    assert_eq!(m.workers_respawned, 0, "isolation means no worker died");

    // The pool is still fully alive: a clean batch runs to completion.
    let after = Arc::new(AtomicUsize::new(0));
    for _ in 0..64 {
        let a = Arc::clone(&after);
        pool.execute(move || {
            a.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    assert_eq!(after.load(Ordering::Relaxed), 64);
}

/// The two throttling mechanisms compose under faults: a
/// concurrency-restricting gate on the injector (at most 2 workers
/// contending for the central queue, the rest parked on the gate's
/// culled list) while process control flaps the target between 1 and
/// the full pool — so control-suspended workers and gate-passivated
/// workers overlap — and a seeded fraction of jobs panic on top. A bad
/// hand-off here wedges the pool (the lone runnable worker parked on
/// the gate, the gate holder suspended by control); the test's
/// liveness proof is that `wait_idle` returns with every job accounted
/// for exactly once.
#[test]
fn cr_gate_composes_with_control_flapping_under_panics() {
    let slot = Arc::new(TargetSlot::new(4));
    let mut cfg = PoolConfig::new(4);
    cfg.watchdog = Some(WatchdogConfig::new(Duration::from_millis(500)));
    cfg.cr_injector = Some(CrConfig::fixed(2));
    let pool = Pool::with_slot_config(Arc::clone(&slot), cfg);

    const BATCHES: u64 = 8;
    const PER_BATCH: u64 = 75;
    const JOBS: u64 = BATCHES * PER_BATCH;
    let mut chaos = JobChaos::new(0xCC10C4, 0.2, 0.0, Duration::ZERO);
    let done = Arc::new(AtomicUsize::new(0));
    for batch in 0..BATCHES {
        // Flap control out of phase with the batches: shrink to one
        // runnable worker while others sit passivated on the gate, then
        // restore, repeatedly. Each pause lets workers reach safe points
        // and observe the new target mid-stream.
        let target = if batch % 2 == 0 { 1 } else { 4 };
        slot.target.store(target, Ordering::Release);
        for _ in 0..PER_BATCH {
            let d = Arc::clone(&done);
            let (_, job) = chaos.wrap(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
            pool.execute(job);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    slot.target.store(4, Ordering::Release);
    pool.wait_idle();

    let (panics, _) = chaos.injected();
    assert!(panics > 0, "the schedule must inject at least one panic");
    let m = pool.metrics();
    assert_eq!(m.jobs_run, JOBS, "conservation: every job accounted once");
    assert_eq!(m.jobs_panicked, panics, "every injected panic was caught");
    assert_eq!(
        done.load(Ordering::Relaxed) as u64,
        JOBS - panics,
        "clean jobs all ran; panicked jobs never reached their work"
    );
    assert_eq!(m.workers_respawned, 0, "isolation means no worker died");
    assert!(
        m.suspends >= 1,
        "flapping the target to 1 must suspend at least one worker"
    );
    let snap = pool.registry().snapshot();
    assert_eq!(snap.gauges["cr_active_size"], 2, "fixed gate never resizes");
    assert!(snap.counters.contains_key("cr_passivations"), "{snap:?}");
    assert!(snap.counters.contains_key("cr_promotions"), "{snap:?}");

    // Both mechanisms disengaged: a clean batch runs to completion.
    let after = Arc::new(AtomicUsize::new(0));
    for _ in 0..64 {
        let a = Arc::clone(&after);
        pool.execute(move || {
            a.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    assert_eq!(after.load(Ordering::Relaxed), 64);
}

/// Stall detection bound: a job that wedges a worker is flagged by the
/// watchdog within 2× the stall threshold (scan interval is half the
/// threshold), surfaces as `Stall`/`Recovered` trace events, and closes
/// into the `stall_ns` histogram once the worker makes progress again.
#[test]
fn injected_stall_detected_within_twice_threshold() {
    const THRESHOLD: Duration = Duration::from_millis(120);
    let slot = Arc::new(TargetSlot::new(2));
    let mut cfg = PoolConfig::new(2);
    cfg.watchdog = Some(WatchdogConfig::new(THRESHOLD));
    let pool = Pool::with_slot_config(slot, cfg);

    // Probability 1: the schedule stalls this job deterministically.
    let mut chaos = JobChaos::new(5, 0.0, 1.0, Duration::from_millis(600));
    let (fault, job) = chaos.wrap(|| {});
    assert_eq!(fault, JobFault::Stall);
    let submitted = Instant::now();
    pool.execute(job);

    wait_for(5, "stall detection", || pool.metrics().stalls_detected >= 1);
    let detected_after = submitted.elapsed();
    assert!(
        detected_after <= 2 * THRESHOLD,
        "stall flagged only after {detected_after:?} (threshold {THRESHOLD:?})"
    );

    // The episode closes when the sleep ends: duration recorded, and
    // both ends of the episode are in the flight recorder.
    pool.wait_idle();
    wait_for(5, "stall episode closes", || {
        pool.registry().snapshot().histograms["stall_ns"].count >= 1
    });
    let kinds: Vec<native_rt::EventKind> =
        pool.recorder().drain(4096).iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&native_rt::EventKind::Stall), "{kinds:?}");
    assert!(
        kinds.contains(&native_rt::EventKind::Recovered),
        "{kinds:?}"
    );
}

/// The full crash-recovery acceptance path: `kill -9` the standalone
/// serverd (no final snapshot write, no socket cleanup), restart it on
/// the same snapshot path, and the supervised client must classify the
/// restart as [`RestartKind::Recovered`] — its registration came back
/// from the periodic snapshot with no re-REGISTER — under a strictly
/// larger boot epoch.
#[test]
fn kill_nine_serverd_restart_recovers_registrations_from_snapshot() {
    let path = sock_path("kill9");
    let snap =
        std::env::temp_dir().join(format!("procctl-chaos-{}-kill9.snap", std::process::id()));
    let _ = std::fs::remove_file(&snap);
    let bin = env!("CARGO_BIN_EXE_procctl-serverd");
    let spawn = || {
        std::process::Command::new(bin)
            .arg(path.as_os_str())
            .args(["--cpus", "4", "--snapshot-interval-ms", "25", "--snapshot"])
            .arg(snap.as_os_str())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn serverd")
    };
    let mut child = spawn();
    wait_for(10, "server socket", || path.exists());

    let registry = Arc::new(native_rt::Registry::new());
    let mut sup = SupervisedClient::new(fast_sup_cfg(&path, 8), Arc::clone(&registry));
    wait_for(10, "first healthy poll", || {
        sup.retry_now();
        sup.poll_target() == Some(4)
    });
    let e1 = sup.epoch().expect("epoch after first poll");

    // Wait for a *periodic* snapshot to capture our registration — with
    // SIGKILL there is no shutdown write, this file is all that survives.
    let app_line = format!("app {} ", std::process::id());
    wait_for(10, "registration snapshotted", || {
        std::fs::read_to_string(&snap).is_ok_and(|s| s.contains(&app_line))
    });

    child.kill().expect("kill -9");
    let _ = child.wait();
    wait_for(10, "supervisor notices the kill", || {
        sup.poll_target().is_none()
    });

    // Restart on the same socket (stale file reclaimed) and snapshot.
    let mut child2 = spawn();
    wait_for(10, "post-restart healthy poll", || {
        sup.retry_now();
        sup.poll_target() == Some(4)
    });

    assert_eq!(
        sup.last_restart(),
        Some(RestartKind::Recovered),
        "restart must be classified as recovered-from-snapshot"
    );
    let e2 = sup.epoch().expect("epoch after recovery");
    assert!(e2 > e1, "boot epochs must be monotone: {e1} -> {e2}");
    let snap_counters = registry.snapshot().counters;
    assert_eq!(snap_counters["restarts_recovered"], 1);
    assert_eq!(
        snap_counters["restarts_cold"], 0,
        "a recovered restart must not re-REGISTER"
    );

    let _ = child2.kill();
    let _ = child2.wait();
    let _ = std::fs::remove_file(&snap);
}

/// A paused proxy is the "wedged but alive" server: the client's I/O
/// timeout bounds the stall and degraded mode kicks in; resuming lets it
/// recover.
#[test]
fn wedged_server_bounded_by_client_timeout() {
    let server_path = sock_path("pause-upstream");
    let proxy_path = sock_path("pause-listen");
    let _server = UdsServer::start(UdsServerConfig::new(&server_path, 4)).expect("server");
    let proxy =
        ChaosProxy::start(ChaosConfig::passthrough(&proxy_path, &server_path, 7)).expect("proxy");

    let registry = Arc::new(native_rt::Registry::new());
    let mut sup = SupervisedClient::new(fast_sup_cfg(&proxy_path, 8), Arc::clone(&registry));
    assert_eq!(sup.poll_target(), Some(4));

    proxy.pause();
    let start = Instant::now();
    let got = sup.poll_target();
    let stalled = start.elapsed();
    assert_eq!(got, None, "wedged server must yield the fallback");
    assert!(
        stalled < Duration::from_secs(2),
        "I/O timeout did not bound the stall: {stalled:?}"
    );

    proxy.resume();
    wait_for(5, "recovery after resume", || {
        sup.retry_now();
        sup.poll_target() == Some(4)
    });
    let snap = registry.snapshot();
    assert!(snap.counters["degraded_enters"] >= 1);
    assert_eq!(snap.gauges["degraded"], 0);
}
