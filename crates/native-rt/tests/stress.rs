//! Stress and property tests for the native runtime (real threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use native_rt::{Controller, Pool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every job runs exactly once for arbitrary worker counts, machine
    /// sizes, and job counts — including zero jobs and heavy overcommit.
    #[test]
    fn all_jobs_run_exactly_once(
        cpus in 1usize..4,
        workers in 1usize..10,
        jobs in 0usize..300,
    ) {
        let controller = Controller::new(cpus, Duration::from_millis(10));
        let pool = Pool::new(&controller, workers, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..jobs {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        prop_assert_eq!(counter.load(Ordering::Relaxed), jobs);
        prop_assert_eq!(pool.metrics().jobs_run, jobs as u64);
    }

    /// Pools can be created and torn down repeatedly against one
    /// controller without deadlock, and shares always sum feasibly.
    #[test]
    fn churn_does_not_wedge(pools in prop::collection::vec(1usize..8, 1..5)) {
        let controller = Controller::new(4, Duration::from_millis(10));
        for &workers in &pools {
            let pool = Pool::new(&controller, workers, false);
            for _ in 0..20 {
                pool.execute(|| {
                    std::thread::sleep(Duration::from_micros(50));
                });
            }
            pool.wait_idle();
            prop_assert!(pool.target() >= 1);
            prop_assert!(pool.target() <= workers.max(4));
            drop(pool);
        }
        controller.recompute_now();
    }
}

/// Two pools hammered concurrently from submitter threads: totals must be
/// exact and the controller's equal split honored.
#[test]
fn concurrent_submitters_two_pools() {
    let controller = Controller::new(2, Duration::from_millis(10));
    let a = Arc::new(Pool::new(&controller, 6, false));
    let b = Arc::new(Pool::new(&controller, 6, false));
    controller.recompute_now();
    assert_eq!(a.target(), 1);
    assert_eq!(b.target(), 1);
    let count = Arc::new(AtomicUsize::new(0));
    let submitters: Vec<_> = (0..4)
        .map(|i| {
            let pool = if i % 2 == 0 {
                Arc::clone(&a)
            } else {
                Arc::clone(&b)
            };
            let c = Arc::clone(&count);
            std::thread::spawn(move || {
                for _ in 0..250 {
                    let c2 = Arc::clone(&c);
                    pool.execute(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter");
    }
    a.wait_idle();
    b.wait_idle();
    assert_eq!(count.load(Ordering::Relaxed), 1000);
    assert_eq!(a.metrics().jobs_run + b.metrics().jobs_run, 1000);
}

/// A suspended worker parked for a long stretch still wakes for shutdown.
#[test]
fn long_suspension_then_clean_shutdown() {
    let controller = Controller::new(1, Duration::from_millis(10));
    let pool = Pool::new(&controller, 4, false);
    for _ in 0..50 {
        pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
    }
    pool.wait_idle();
    // Let workers reach their suspension points and park.
    std::thread::sleep(Duration::from_millis(150));
    let m = pool.metrics();
    assert!(m.suspends >= 1, "expected suspensions, got {m:?}");
    drop(pool); // Must join everyone.
}
