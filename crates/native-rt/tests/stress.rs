//! Stress and property tests for the native runtime (real threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use native_rt::{Controller, Pool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every job runs exactly once for arbitrary worker counts, machine
    /// sizes, and job counts — including zero jobs and heavy overcommit.
    #[test]
    fn all_jobs_run_exactly_once(
        cpus in 1usize..4,
        workers in 1usize..10,
        jobs in 0usize..300,
    ) {
        let controller = Controller::new(cpus, Duration::from_millis(10));
        let pool = Pool::new(&controller, workers, false);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..jobs {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        prop_assert_eq!(counter.load(Ordering::Relaxed), jobs);
        prop_assert_eq!(pool.metrics().jobs_run, jobs as u64);
    }

    /// Pools can be created and torn down repeatedly against one
    /// controller without deadlock, and shares always sum feasibly.
    #[test]
    fn churn_does_not_wedge(pools in prop::collection::vec(1usize..8, 1..5)) {
        let controller = Controller::new(4, Duration::from_millis(10));
        for &workers in &pools {
            let pool = Pool::new(&controller, workers, false);
            for _ in 0..20 {
                pool.execute(|| {
                    std::thread::sleep(Duration::from_micros(50));
                });
            }
            pool.wait_idle();
            prop_assert!(pool.target() >= 1);
            prop_assert!(pool.target() <= workers.max(4));
            drop(pool);
        }
        controller.recompute_now();
    }
}

/// Two pools hammered concurrently from submitter threads: totals must be
/// exact and the controller's equal split honored.
#[test]
fn concurrent_submitters_two_pools() {
    let controller = Controller::new(2, Duration::from_millis(10));
    let a = Arc::new(Pool::new(&controller, 6, false));
    let b = Arc::new(Pool::new(&controller, 6, false));
    controller.recompute_now();
    assert_eq!(a.target(), 1);
    assert_eq!(b.target(), 1);
    let count = Arc::new(AtomicUsize::new(0));
    let submitters: Vec<_> = (0..4)
        .map(|i| {
            let pool = if i % 2 == 0 {
                Arc::clone(&a)
            } else {
                Arc::clone(&b)
            };
            let c = Arc::clone(&count);
            std::thread::spawn(move || {
                for _ in 0..250 {
                    let c2 = Arc::clone(&c);
                    pool.execute(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter");
    }
    a.wait_idle();
    b.wait_idle();
    assert_eq!(count.load(Ordering::Relaxed), 1000);
    assert_eq!(a.metrics().jobs_run + b.metrics().jobs_run, 1000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Job conservation across all three acquisition paths: however jobs
    /// arrive (external submitters racing with fork-join spawns from
    /// inside workers), every one is accounted to exactly one of the
    /// local-pop, injector-pop, or steal counters — and their sum equals
    /// the number run.
    #[test]
    fn acquisition_paths_partition_all_jobs(
        workers in 1usize..8,
        submitters in 1usize..4,
        external in 1usize..120,
        fanout in 0usize..40,
    ) {
        let controller = Controller::new(4, Duration::from_millis(10));
        let pool = Arc::new(Pool::new(&controller, workers, false));
        let ran = Arc::new(AtomicUsize::new(0));

        // External producers hammer the injector from non-worker threads.
        let handles: Vec<_> = (0..submitters)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    for _ in 0..external {
                        let r = Arc::clone(&ran);
                        pool.execute(move || {
                            r.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();

        // Fork-join: each seed job spawns two children from inside a
        // worker, exercising the TLS local-deque fast path (and steals,
        // once siblings go hunting).
        for _ in 0..fanout {
            let pool2 = Arc::clone(&pool);
            let ran2 = Arc::clone(&ran);
            pool.execute(move || {
                ran2.fetch_add(1, Ordering::Relaxed);
                for _ in 0..2 {
                    let r = Arc::clone(&ran2);
                    pool2.execute(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }

        for h in handles {
            h.join().expect("submitter");
        }
        pool.wait_idle();

        let submitted = submitters * external + fanout * 3;
        prop_assert_eq!(ran.load(Ordering::Relaxed), submitted);
        let m = pool.metrics();
        prop_assert_eq!(m.jobs_run, submitted as u64);
        prop_assert_eq!(
            m.local_hits + m.injector_pops + m.steals,
            m.jobs_run,
            "acquisition counters must partition jobs_run: {:?}",
            m
        );
    }
}

/// The conservation invariant holds under sustained multithreaded churn
/// with process control actively suspending and resuming workers.
#[test]
fn conservation_holds_under_process_control_churn() {
    let controller = Controller::new(1, Duration::from_millis(5));
    let pool = Arc::new(Pool::new(&controller, 6, false));
    let ran = Arc::new(AtomicUsize::new(0));
    let submitters: Vec<_> = (0..3)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let ran = Arc::clone(&ran);
            std::thread::spawn(move || {
                for i in 0..400 {
                    let r = Arc::clone(&ran);
                    if i % 8 == 0 {
                        // Occasionally do a little work so suspension
                        // points interleave with nonempty deques.
                        pool.execute(move || {
                            std::thread::sleep(Duration::from_micros(20));
                            r.fetch_add(1, Ordering::Relaxed);
                        });
                    } else {
                        pool.execute(move || {
                            r.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter");
    }
    pool.wait_idle();
    assert_eq!(ran.load(Ordering::Relaxed), 1200);
    let m = pool.metrics();
    assert_eq!(m.jobs_run, 1200);
    assert_eq!(
        m.local_hits + m.injector_pops + m.steals,
        m.jobs_run,
        "jobs leaked between queues under suspension churn: {m:?}"
    );

    // Deterministic tail for the suspended-victim skip: wait until the
    // pool settles at its target of one active worker (the other five
    // parked as suspended, their steal flags raised), then push one more
    // burst. The active worker's hunt between injector pops must *skip*
    // the flagged victims — their deques are provably empty — and count
    // each skip.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = pool.metrics();
        if m.suspends > m.resumes {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never settled into suspension: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for _ in 0..64 {
        let r = Arc::clone(&ran);
        pool.execute(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
    }
    pool.wait_idle();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while pool.metrics().steal_skips_suspended == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "steal scans never skipped a suspended victim: {:?}",
            pool.metrics()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let m = pool.metrics();
    assert_eq!(m.jobs_run, 1264);
    assert_eq!(
        m.local_hits + m.injector_pops + m.steals,
        m.jobs_run,
        "skipping suspended victims broke conservation: {m:?}"
    );
}

/// Supervised pollers churned against a server that dies and comes back:
/// pools keep finishing work, every poller thread joins cleanly, and no
/// poll ever wedges. (The TSan lane runs this to race-check the
/// supervised-client threads against the pool's workers.)
#[cfg(target_os = "linux")]
#[test]
fn supervised_poller_churn_across_server_restarts() {
    use native_rt::{SupervisedClient, SupervisorConfig, TargetSlot, UdsServer, UdsServerConfig};

    let path = std::env::temp_dir().join(format!("procctl-stress-sup-{}.sock", std::process::id()));
    let mut server = Some(UdsServer::start(UdsServerConfig::new(&path, 2)).expect("server"));
    let ran = Arc::new(AtomicUsize::new(0));
    for round in 0..3 {
        // Alternate rounds run without a server: pollers must stay in
        // degraded mode and the pools must still drain their queues.
        if round == 1 {
            server = None;
        } else if server.is_none() {
            server = Some(UdsServer::start(UdsServerConfig::new(&path, 2)).expect("restart"));
        }
        let guards: Vec<_> = (0..2)
            .map(|_| {
                let slot = Arc::new(TargetSlot::new(4));
                let pool = Pool::with_slot(Arc::clone(&slot), 4, false);
                let mut cfg = SupervisorConfig::new(&path, 4);
                cfg.io_timeout = Duration::from_millis(100);
                cfg.backoff_initial = Duration::from_millis(5);
                cfg.backoff_max = Duration::from_millis(40);
                let sup = SupervisedClient::new(cfg, pool.registry());
                let guard = sup.spawn_poller(slot, Duration::from_millis(10), true);
                for _ in 0..100 {
                    let r = Arc::clone(&ran);
                    pool.execute(move || {
                        r.fetch_add(1, Ordering::Relaxed);
                    });
                }
                pool.wait_idle();
                (pool, guard)
            })
            .collect();
        drop(guards); // joins poller threads, then pool workers
    }
    drop(server);
    assert_eq!(ran.load(Ordering::Relaxed), 600);
}

/// A suspended worker parked for a long stretch still wakes for shutdown.
#[test]
fn long_suspension_then_clean_shutdown() {
    let controller = Controller::new(1, Duration::from_millis(10));
    let pool = Pool::new(&controller, 4, false);
    for _ in 0..50 {
        pool.execute(|| std::thread::sleep(Duration::from_micros(100)));
    }
    pool.wait_idle();
    // Let workers reach their suspension points and park.
    std::thread::sleep(Duration::from_millis(150));
    let m = pool.metrics();
    assert!(m.suspends >= 1, "expected suspensions, got {m:?}");
    drop(pool); // Must join everyone.
}
