//! Model checks for the CR gate's passivation hand-off
//! (`crlock.rs`) — the protocol behind the `sched-atomic(seqcst)`
//! annotations on `admitted` and `passive_len`.
//!
//! The interleaving under test is the classic lost wakeup: the last
//! active thread releases *while* a newly culled thread is between
//! "published on the culled list" and "parked". If the releaser misses
//! the publication and the parker misses the release, the parker sleeps
//! forever on a gate nobody will ever exit again. The Dekker pairing
//! (parker: publish `passive_len`, re-check `admitted`; releaser:
//! decrement `admitted`, re-check `passive_len`, both `SeqCst`)
//! guarantees at least one side sees the other, so every model
//! iteration must terminate with every thread admitted exactly once.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p native-rt --test
//! loom_crlock` (the loom CI lane).

#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

use native_rt::crlock::{Admission, CrConfig, CrGate, CrLock};

/// One holder, one challenger, one slot: the challenger arrives while
/// the slot is taken and the holder releases concurrently with the
/// challenger's publish/park. A lost wakeup hangs the model; a slot
/// leak trips the final `culled()`/re-entry checks.
#[test]
fn release_while_culling_never_loses_the_wakeup() {
    loom::model(|| {
        let gate = Arc::new(CrGate::new(CrConfig::fixed(1)));
        let admitted = Arc::new(AtomicUsize::new(0));

        let holder = {
            let gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            loom::thread::spawn(move || {
                gate.enter();
                admitted.fetch_add(1, Ordering::Relaxed);
                gate.exit();
            })
        };
        let challenger = {
            let gate = Arc::clone(&gate);
            let admitted = Arc::clone(&admitted);
            loom::thread::spawn(move || {
                gate.enter();
                admitted.fetch_add(1, Ordering::Relaxed);
                gate.exit();
            })
        };
        holder.join().unwrap();
        challenger.join().unwrap();

        assert_eq!(admitted.load(Ordering::Relaxed), 2);
        assert_eq!(gate.culled(), 0, "culled list must drain");
        // The gate must still work: both slots were returned.
        assert_eq!(gate.enter(), Admission::Direct);
        gate.exit();
    });
}

/// Three threads through a one-slot gate: at least one passivation is
/// forced in most interleavings, and every hand-off chain (exit →
/// promote → parked thread resumes → its exit promotes the next) must
/// run to completion without dropping a thread.
#[test]
fn handoff_chain_admits_every_thread_exactly_once() {
    loom::model(|| {
        let gate = Arc::new(CrGate::new(CrConfig::fixed(1)));
        let inside = Arc::new(AtomicUsize::new(0));
        let admitted = Arc::new(AtomicUsize::new(0));

        let threads: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let inside = Arc::clone(&inside);
                let admitted = Arc::clone(&admitted);
                loom::thread::spawn(move || {
                    gate.enter();
                    assert_eq!(
                        inside.fetch_add(1, Ordering::SeqCst),
                        0,
                        "two threads inside a one-slot gate"
                    );
                    admitted.fetch_add(1, Ordering::Relaxed);
                    inside.fetch_sub(1, Ordering::SeqCst);
                    gate.exit();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        assert_eq!(admitted.load(Ordering::Relaxed), 3);
        assert_eq!(gate.culled(), 0, "culled list must drain");
    });
}

/// The composed lock: mutual exclusion over real data while the gate
/// culls and promotes underneath. Lost updates would show as a short
/// count.
#[test]
fn crlock_conserves_updates_across_handoffs() {
    loom::model(|| {
        let lk: Arc<CrLock<usize>> = Arc::new(CrLock::new(CrConfig::fixed(1), 0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let lk = Arc::clone(&lk);
                loom::thread::spawn(move || {
                    *lk.lock() += 1;
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lk.lock(), 3);
    });
}
