//! Property tests for the kernel engine under randomized process scripts.

use desim::{SimDur, SimTime};
use proptest::prelude::*;
use simkernel::policy::{
    Affinity, Coscheduling, FifoRoundRobin, PriorityDecay, SpacePartition, SpinlockFlag,
};
use simkernel::{Action, AppId, Kernel, KernelConfig, SchedPolicy, Script};

const LIMIT: SimTime = SimTime(7_200 * 1_000_000_000);

/// A simplified op for script generation.
#[derive(Clone, Copy, Debug)]
enum GenOp {
    Compute(u64),
    Critical(u64),
    Sleep(u64),
    Yield,
}

fn gen_ops() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..40).prop_map(GenOp::Compute),
            (1u64..10).prop_map(GenOp::Critical),
            (1u64..30).prop_map(GenOp::Sleep),
            Just(GenOp::Yield),
        ],
        1..12,
    )
}

/// Builds a kernel script from generated ops, using `lock` for critical
/// sections. Returns (script, total compute ms including critical).
fn build_script(ops: &[GenOp], lock: simkernel::LockId) -> (Vec<Action>, u64) {
    let mut actions = Vec::new();
    let mut compute_ms = 0;
    for op in ops {
        match *op {
            GenOp::Compute(ms) => {
                compute_ms += ms;
                actions.push(Action::Compute(SimDur::from_millis(ms)));
            }
            GenOp::Critical(ms) => {
                compute_ms += ms;
                actions.push(Action::AcquireLock(lock));
                actions.push(Action::Compute(SimDur::from_millis(ms)));
                actions.push(Action::ReleaseLock(lock));
            }
            GenOp::Sleep(ms) => actions.push(Action::Sleep(SimDur::from_millis(ms))),
            GenOp::Yield => actions.push(Action::Yield),
        }
    }
    (actions, compute_ms)
}

fn policies() -> Vec<Box<dyn SchedPolicy>> {
    vec![
        Box::new(FifoRoundRobin::new()),
        Box::new(PriorityDecay::default()),
        Box::new(Coscheduling::new(SimDur::from_millis(100))),
        Box::new(SpinlockFlag::new()),
        Box::new(Affinity::new(SimDur::from_millis(100))),
        Box::new(SpacePartition::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any collection of lock-balanced processes runs to completion under
    /// every scheduling policy, and the kernel charges at least the
    /// requested compute time as work.
    #[test]
    fn random_processes_complete_under_all_policies(
        cpus in 1usize..5,
        procs in prop::collection::vec(gen_ops(), 1..8),
        policy_idx in 0usize..6,
    ) {
        let policy = policies().swap_remove(policy_idx);
        let mut k = Kernel::new(
            KernelConfig::multimax().with_cpus(cpus).without_trace(),
            policy,
        );
        let lock = k.create_lock();
        let mut expected = Vec::new();
        for (i, ops) in procs.iter().enumerate() {
            let (script, ms) = build_script(ops, lock);
            let pid = k.spawn_root(AppId(i as u32 % 3), 64, Box::new(Script::new(script)));
            expected.push((pid, ms));
        }
        prop_assert!(k.run_to_completion(LIMIT), "hang under policy {}", k.policy_name());
        prop_assert_eq!(k.runnable_count(), 0);
        prop_assert_eq!(k.live_procs(), 0);
        for (pid, ms) in expected {
            let acct = k.proc_accounting(pid);
            prop_assert!(
                acct.work >= SimDur::from_millis(ms),
                "{pid}: work {} < {}ms", acct.work, ms
            );
        }
    }

    /// The kernel's running runnable counter always equals what rpstat
    /// reports, sampled at random points during execution.
    #[test]
    fn runnable_counter_matches_rpstat(
        procs in prop::collection::vec(gen_ops(), 1..6),
        checkpoints in prop::collection::vec(1u64..2_000, 1..8),
    ) {
        let mut k = Kernel::new(
            KernelConfig::multimax().with_cpus(2).without_trace(),
            Box::new(FifoRoundRobin::new()),
        );
        let lock = k.create_lock();
        for (i, ops) in procs.iter().enumerate() {
            let (script, _) = build_script(ops, lock);
            k.spawn_root(AppId(i as u32), 64, Box::new(Script::new(script)));
        }
        let mut sorted = checkpoints.clone();
        sorted.sort_unstable();
        for ms in sorted {
            k.run_until(SimTime::ZERO + SimDur::from_millis(ms));
            let via_rpstat = k.rpstat().iter().filter(|p| p.runnable).count() as u32;
            prop_assert_eq!(k.runnable_count(), via_rpstat);
        }
        prop_assert!(k.run_to_completion(LIMIT));
    }

    /// Simulation is deterministic under every policy: two identical runs
    /// produce identical per-process accounting.
    #[test]
    fn deterministic_under_all_policies(
        procs in prop::collection::vec(gen_ops(), 1..6),
        policy_idx in 0usize..6,
    ) {
        let run = || {
            let policy = policies().swap_remove(policy_idx);
            let mut k = Kernel::new(
                KernelConfig::multimax().with_cpus(3).without_trace(),
                policy,
            );
            let lock = k.create_lock();
            let mut pids = Vec::new();
            for (i, ops) in procs.iter().enumerate() {
                let (script, _) = build_script(ops, lock);
                pids.push(k.spawn_root(AppId(i as u32), 64, Box::new(Script::new(script))));
            }
            assert!(k.run_to_completion(LIMIT));
            pids.iter()
                .map(|&p| {
                    let a = k.proc_accounting(p);
                    (a.work, a.spin, a.refill, a.dispatches, a.preemptions)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Lock mutual exclusion: with N processes each doing one critical
    /// section on a shared lock, the lock records exactly N acquisitions
    /// and total work is conserved (no one computes inside while spinning).
    #[test]
    fn lock_acquisitions_exact(n in 1u32..12, cs_ms in 1u64..20) {
        let mut k = Kernel::new(
            KernelConfig::multimax().with_cpus(4).without_trace(),
            Box::new(FifoRoundRobin::new()),
        );
        let lock = k.create_lock();
        for i in 0..n {
            k.spawn_root(
                AppId(i),
                64,
                Box::new(Script::new(vec![
                    Action::AcquireLock(lock),
                    Action::Compute(SimDur::from_millis(cs_ms)),
                    Action::ReleaseLock(lock),
                ])),
            );
        }
        prop_assert!(k.run_to_completion(LIMIT));
        prop_assert_eq!(k.lock_stats(lock).acquisitions, u64::from(n));
        // Sections are serialized: the machine needed at least n * cs time.
        prop_assert!(k.now() >= SimTime::ZERO + SimDur::from_millis(u64::from(n) * cs_ms));
    }
}
