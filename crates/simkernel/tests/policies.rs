//! End-to-end behavioral tests of the scheduling policies: each baseline
//! must exhibit the property the literature claims for it.

use desim::{SimDur, SimTime};
use simkernel::policy::{
    Affinity, Coscheduling, FifoRoundRobin, GroupMode, GroupPolicy, PriorityDecay, SpacePartition,
    SpinlockFlag,
};
use simkernel::{Action, AppId, KTrace, Kernel, KernelConfig, Script};

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(secs)
}

fn cfg(cpus: usize) -> KernelConfig {
    KernelConfig::multimax().with_cpus(cpus)
}

/// Spinlock-flag: a lock holder's quantum expiry is deferred until it
/// leaves the critical section, so contenders barely spin — unlike FIFO,
/// where the holder loses the processor mid-section.
#[test]
fn spinflag_protects_critical_sections() {
    let spin_under = |policy: Box<dyn simkernel::SchedPolicy>| -> SimDur {
        let mut k = Kernel::new(cfg(1), policy);
        let lock = k.create_lock();
        // Holder: 250 ms critical section (spans quanta); contender spins.
        k.spawn_root(
            AppId(0),
            64,
            Box::new(Script::new(vec![
                Action::AcquireLock(lock),
                Action::Compute(SimDur::from_millis(250)),
                Action::ReleaseLock(lock),
            ])),
        );
        k.spawn_root(
            AppId(1),
            64,
            Box::new(Script::new(vec![
                Action::AcquireLock(lock),
                Action::Compute(SimDur::from_millis(1)),
                Action::ReleaseLock(lock),
            ])),
        );
        assert!(k.run_to_completion(t(30)));
        k.app_stats(AppId(1)).spin
    };
    let fifo_spin = spin_under(Box::new(FifoRoundRobin::new()));
    let flag_spin = spin_under(Box::new(SpinlockFlag::new()));
    assert!(
        fifo_spin >= SimDur::from_millis(100),
        "fifo should exhibit the pathology: spin {fifo_spin}"
    );
    assert!(
        flag_spin < fifo_spin / 2,
        "spinlock flag failed to protect: {flag_spin} vs fifo {fifo_spin}"
    );
}

/// The no-preempt deferral is bounded: a compute-bound process that holds
/// a lock "forever" cannot monopolize the processor indefinitely.
#[test]
fn spinflag_deferral_is_bounded() {
    let mut k = Kernel::new(cfg(1), Box::new(SpinlockFlag::new()));
    let lock = k.create_lock();
    // Rogue: holds the lock through 3 s of compute (30 quanta).
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![
            Action::AcquireLock(lock),
            Action::Compute(SimDur::from_secs(3)),
            Action::ReleaseLock(lock),
        ])),
    );
    // Victim: independent pure compute.
    let victim = k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(200))])),
    );
    assert!(k.run_to_completion(t(60)));
    // The victim must have run well before the rogue finished: with a
    // 10-defer cap and 10 ms grace, the rogue yields the processor within
    // ~quantum + 10 * quantum/10 = ~200 ms.
    let victim_acct = k.proc_accounting(victim);
    assert!(victim_acct.dispatches > 0);
    let done = k.app_done_time(AppId(1)).unwrap();
    assert!(
        done < t(2),
        "victim starved until {done} by an unbounded deferral"
    );
}

/// Coscheduling: two gangs on one processor-sized machine alternate as
/// whole gangs — processes of different applications never run (much)
/// interleaved within a slice.
#[test]
fn coscheduling_gangs_alternate() {
    let quantum = SimDur::from_millis(100);
    let mut k = Kernel::new(cfg(2), Box::new(Coscheduling::new(quantum)));
    for app in 0..2u32 {
        for _ in 0..2 {
            k.spawn_root(
                AppId(app),
                64,
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(400))])),
            );
        }
    }
    assert!(k.run_to_completion(t(30)));
    // Examine dispatches: at any slice, the two processors should host the
    // same application. Walk the trace and check per-slice homogeneity.
    let mut per_cpu: Vec<Option<AppId>> = vec![None; 2];
    let mut mixed_samples = 0u32;
    let mut samples = 0u32;
    for e in k.trace().events() {
        if let KTrace::Dispatch { cpu, pid, .. } = e.kind {
            let app = AppId(pid.0 / 2); // pids 0,1 -> app0; 2,3 -> app1
            per_cpu[cpu.0] = Some(app);
            if let (Some(a), Some(b)) = (per_cpu[0], per_cpu[1]) {
                samples += 1;
                if a != b {
                    mixed_samples += 1;
                }
            }
        }
    }
    assert!(samples > 0);
    // Fragment filling allows some mixing when a gang is short a member,
    // but gangs of equal size should mostly coincide.
    assert!(
        mixed_samples * 2 <= samples,
        "gangs mixed in {mixed_samples}/{samples} dispatch samples"
    );
}

/// Priority decay: a freshly started process preempts... rather, gets
/// picked ahead of a long-running one (the Figure-4 matmul anomaly).
#[test]
fn priority_decay_favors_newcomers() {
    let mut k = Kernel::new(cfg(1), Box::new(PriorityDecay::default()));
    // Old-timer: computing since t=0.
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(2))])),
    );
    // Run 1 s so the old-timer accumulates decayed usage.
    k.run_until(t(1));
    // Newcomer arrives.
    k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(300))])),
    );
    assert!(k.run_to_completion(t(30)));
    let old_done = k.app_done_time(AppId(0)).unwrap();
    let new_done = k.app_done_time(AppId(1)).unwrap();
    // The newcomer (0.3 s of work) should finish well before the old-timer
    // despite arriving later: it wins most slice decisions.
    assert!(
        new_done < old_done,
        "newcomer {new_done} did not outrank old-timer {old_done}"
    );
}

/// Affinity: with as many processes as processors, each process stays on
/// its processor — context switches (paid dispatches) are rare.
#[test]
fn affinity_keeps_processes_home() {
    let run = |policy: Box<dyn simkernel::SchedPolicy>| -> u64 {
        let mut k = Kernel::new(cfg(2), policy);
        for i in 0..4u32 {
            k.spawn_root(
                AppId(i),
                512,
                Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
            );
        }
        assert!(k.run_to_completion(t(60)));
        (0..4).map(|i| k.app_stats(AppId(i)).switches).sum()
    };
    let fifo_switches = run(Box::new(FifoRoundRobin::new()));
    let affinity_switches = run(Box::new(Affinity::new(SimDur::from_millis(100))));
    assert!(
        affinity_switches * 2 < fifo_switches,
        "affinity {affinity_switches} vs fifo {fifo_switches} switches"
    );
}

/// Space partitioning: two applications on a four-processor machine never
/// share a processor (isolation), even though both are overcommitted.
#[test]
fn partition_isolates_applications() {
    let mut k = Kernel::new(cfg(4), Box::new(SpacePartition::new()));
    for app in 0..2u32 {
        for _ in 0..4 {
            k.spawn_root(
                AppId(app),
                64,
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(300))])),
            );
        }
    }
    assert!(k.run_to_completion(t(60)));
    // While BOTH applications are alive, every processor hosts only one
    // application. Two transients are legitimate and excluded: the startup
    // window (app0 is dispatched machine-wide before app1 exists; the
    // repartition takes effect at the first quantum expiry, 100 ms) and
    // the tail after the first application finishes (its processors are
    // dynamically handed to the survivor).
    let settle = SimTime::ZERO + SimDur::from_millis(150);
    let mut cpu_apps: Vec<std::collections::HashSet<u32>> =
        vec![std::collections::HashSet::new(); 4];
    for e in k.trace().events() {
        match e.kind {
            KTrace::AppDone { .. } => break,
            KTrace::Dispatch { cpu, pid, .. } if e.time >= settle => {
                cpu_apps[cpu.0].insert(pid.0 / 4); // pids 0..4 app0, 4..8 app1
            }
            _ => {}
        }
    }
    for (i, apps) in cpu_apps.iter().enumerate() {
        assert!(
            apps.len() <= 1,
            "cpu{i} hosted {apps:?} — partition isolation violated"
        );
    }
}

/// Edler groups: a no-preempt group member keeps its processor through
/// quantum expiries (bounded), while normal members rotate.
#[test]
fn edler_nopreempt_group_defers() {
    let mut modes = std::collections::HashMap::new();
    modes.insert(AppId(0), GroupMode::NoPreempt);
    let mut k = Kernel::new(
        cfg(1),
        Box::new(GroupPolicy::new(
            SimDur::from_millis(100),
            modes,
            GroupMode::Normal,
        )),
    );
    // No-preempt member: 300 ms of compute (3 quanta).
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(300))])),
    );
    // Normal member.
    k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(300))])),
    );
    assert!(k.run_to_completion(t(30)));
    let protected = k.app_stats(AppId(0));
    // The protected process should suffer (almost) no preemptions; with
    // pure FIFO it would have ~3.
    assert!(
        protected.preemptions <= 1,
        "no-preempt member preempted {} times",
        protected.preemptions
    );
}
