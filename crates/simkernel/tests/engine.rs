//! End-to-end tests of the simulated kernel engine.

use desim::{SimDur, SimTime};
use simkernel::policy::FifoRoundRobin;
use simkernel::{
    Action, AppId, FnBehavior, Kernel, KernelConfig, KernelConfig as KC, Pid, Script, Wakeup,
};

fn small_cfg(cpus: usize) -> KernelConfig {
    KC::multimax().with_cpus(cpus)
}

fn t(secs: u64) -> SimTime {
    SimTime::ZERO + SimDur::from_secs(secs)
}

fn kernel(cpus: usize) -> Kernel {
    Kernel::new(small_cfg(cpus), Box::new(FifoRoundRobin::new()))
}

#[test]
fn single_process_computes_and_exits() {
    let mut k = kernel(1);
    let pid = k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(10))])),
    );
    assert!(k.run_to_completion(t(10)));
    let acct = k.proc_accounting(pid);
    assert!(acct.work >= SimDur::from_millis(10));
    assert_eq!(
        acct.dispatches, 1,
        "no preemption expected within a quantum"
    );
    assert_eq!(k.runnable_count(), 0);
    assert!(k.app_done_time(AppId(0)).is_some());
}

#[test]
fn completion_time_includes_switch_and_refill() {
    let mut k = kernel(1);
    k.spawn_root(
        AppId(0),
        1_000,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(10))])),
    );
    assert!(k.run_to_completion(t(10)));
    let done = k.app_done_time(AppId(0)).unwrap();
    // 100 us switch + 1000 lines * 500 ns refill = 600 us of overhead, plus
    // 10 ms of work and ~200 us exit service.
    assert!(done > SimTime::ZERO + SimDur::from_millis(10));
    assert!(done < SimTime::ZERO + SimDur::from_millis(12));
}

#[test]
fn two_processes_one_cpu_round_robin() {
    let mut k = kernel(1);
    // Each needs 250 ms of work; quantum is 100 ms, so both get preempted
    // and interleave.
    let a = k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(250))])),
    );
    let b = k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(250))])),
    );
    assert!(k.run_to_completion(t(10)));
    let (aa, ab) = (k.proc_accounting(a), k.proc_accounting(b));
    assert!(aa.preemptions >= 2, "a preempted {} times", aa.preemptions);
    assert!(ab.preemptions >= 2);
    // Completions should land near each other (fair interleaving).
    let da = k.app_done_time(AppId(0)).unwrap();
    let db = k.app_done_time(AppId(1)).unwrap();
    let gap = db.saturating_since(da).max(da.saturating_since(db));
    assert!(gap < SimDur::from_millis(150), "unfair gap {gap}");
}

#[test]
fn processes_fill_all_cpus_in_parallel() {
    let mut k = kernel(4);
    for i in 0..4 {
        k.spawn_root(
            AppId(i),
            64,
            Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(50))])),
        );
    }
    assert!(k.run_to_completion(t(10)));
    // All four ran in parallel: done well before 4 * 50 ms.
    let done = (0..4)
        .map(|i| k.app_done_time(AppId(i)).unwrap())
        .max()
        .unwrap();
    assert!(
        done < SimTime::ZERO + SimDur::from_millis(60),
        "done {done}"
    );
}

#[test]
fn spinlock_serializes_critical_sections() {
    let mut k = kernel(2);
    let lock = k.create_lock();
    // Two processes each do: acquire, compute 10 ms (in section), release.
    for i in 0..2 {
        k.spawn_root(
            AppId(i),
            64,
            Box::new(Script::new(vec![
                Action::AcquireLock(lock),
                Action::Compute(SimDur::from_millis(10)),
                Action::ReleaseLock(lock),
            ])),
        );
    }
    assert!(k.run_to_completion(t(10)));
    let stats = k.lock_stats(lock);
    assert_eq!(stats.acquisitions, 2);
    assert_eq!(stats.contended, 1, "second process should have spun");
    // The loser spun for roughly the critical section length.
    let spin: SimDur = (0..2)
        .map(|i| k.app_stats(AppId(i)).spin)
        .fold(SimDur::ZERO, |a, b| a + b);
    assert!(spin >= SimDur::from_millis(8), "spin {spin}");
    assert!(spin <= SimDur::from_millis(12), "spin {spin}");
}

#[test]
fn preempted_lock_holder_stalls_spinners() {
    // One processor, two processes: the holder takes the lock then computes
    // past its quantum; the contender spins. Total spin should be large
    // because the holder loses the processor mid-section to the spinner,
    // which then burns a whole quantum spinning.
    let mut k = kernel(1);
    let lock = k.create_lock();
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![
            Action::AcquireLock(lock),
            Action::Compute(SimDur::from_millis(250)), // spans 3 quanta
            Action::ReleaseLock(lock),
        ])),
    );
    k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![
            Action::AcquireLock(lock),
            Action::Compute(SimDur::from_millis(1)),
            Action::ReleaseLock(lock),
        ])),
    );
    assert!(k.run_to_completion(t(20)));
    let spin = k.app_stats(AppId(1)).spin;
    // The contender should have wasted at least one full quantum spinning
    // while the preempted holder waited in the queue.
    assert!(spin >= SimDur::from_millis(100), "spin {spin}");
}

#[test]
fn signal_suspends_and_resumes() {
    let mut k = kernel(2);
    // Process A suspends itself; process B computes then signals A.
    let a = k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![
            Action::WaitSignal,
            Action::Compute(SimDur::from_millis(5)),
        ])),
    );
    k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![
            Action::Compute(SimDur::from_millis(50)),
            Action::SendSignal(a),
        ])),
    );
    assert!(k.run_to_completion(t(10)));
    let da = k.app_done_time(AppId(0)).unwrap();
    let db = k.app_done_time(AppId(1)).unwrap();
    assert!(
        da > db - SimDur::from_millis(5),
        "A finished after B's signal"
    );
    assert!(k.proc_accounting(a).work >= SimDur::from_millis(5));
}

#[test]
fn suspended_processes_are_not_runnable() {
    let mut k = kernel(4);
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::WaitSignal])),
    );
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
    );
    // Run 200 ms: the waiter has suspended by now.
    k.run_until(SimTime::ZERO + SimDur::from_millis(200));
    assert_eq!(k.runnable_count(), 1);
    assert_eq!(k.app_runnable(AppId(0)), 1);
    let stats = k.rpstat();
    assert_eq!(stats.iter().filter(|p| p.runnable).count(), 1);
    assert_eq!(stats.len(), 2);
}

#[test]
fn pending_signal_is_not_lost() {
    let mut k = kernel(2);
    // B signals A *before* A waits: the signal must be remembered.
    let a = k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![
            Action::Compute(SimDur::from_millis(50)), // busy while B signals
            Action::WaitSignal,                       // should return immediately
        ])),
    );
    k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![Action::SendSignal(a)])),
    );
    assert!(
        k.run_to_completion(t(10)),
        "A would hang if the signal were lost"
    );
}

#[test]
fn ipc_roundtrip() {
    let mut k = kernel(2);
    let req = k.create_port();
    let rsp = k.create_port();
    // Server: receive a request, send back double the value.
    k.spawn_root(
        AppId(0),
        64,
        Box::new(FnBehavior(
            move |w, _ctx: &mut dyn simkernel::UserCtx| match w {
                Wakeup::Start => Action::Recv(req),
                Wakeup::Received(m) => Action::Send(rsp, vec![m.body[0] * 2]),
                Wakeup::Sent => Action::Exit,
                other => panic!("server: unexpected {other:?}"),
            },
        )),
    );
    // Client: send 21, expect 42.
    k.spawn_root(
        AppId(1),
        64,
        Box::new(FnBehavior(
            move |w, _ctx: &mut dyn simkernel::UserCtx| match w {
                Wakeup::Start => Action::Send(req, vec![21]),
                Wakeup::Sent => Action::Recv(rsp),
                Wakeup::Received(m) => {
                    assert_eq!(m.body, vec![42]);
                    Action::Exit
                }
                other => panic!("client: unexpected {other:?}"),
            },
        )),
    );
    assert!(k.run_to_completion(t(10)));
}

#[test]
fn poll_returns_none_on_empty_port() {
    let mut k = kernel(1);
    let port = k.create_port();
    k.spawn_root(
        AppId(0),
        64,
        Box::new(FnBehavior(
            move |w, _ctx: &mut dyn simkernel::UserCtx| match w {
                Wakeup::Start => Action::Poll(port),
                Wakeup::Polled(None) => Action::Exit,
                other => panic!("unexpected {other:?}"),
            },
        )),
    );
    assert!(k.run_to_completion(t(1)));
}

#[test]
fn sleep_blocks_without_consuming_cpu() {
    let mut k = kernel(1);
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Sleep(SimDur::from_secs(2))])),
    );
    let pid2 = k.spawn_root(
        AppId(1),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
    );
    assert!(k.run_to_completion(t(10)));
    // The computer got the whole processor while the sleeper slept: it
    // should finish at ~1 s, not ~2 s.
    let done = k.app_done_time(AppId(1)).unwrap();
    assert!(
        done < SimTime::ZERO + SimDur::from_millis(1_200),
        "sleeper stole CPU: computer done at {done}"
    );
    assert!(k.proc_accounting(pid2).work >= SimDur::from_secs(1));
}

#[test]
fn spawn_creates_children_in_same_app() {
    let mut k = kernel(4);
    let root = k.spawn_root(
        AppId(7),
        64,
        Box::new(FnBehavior(|w, _ctx: &mut dyn simkernel::UserCtx| match w {
            Wakeup::Start => Action::Spawn(
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
                32,
            ),
            Wakeup::Spawned(_) => Action::Exit,
            other => panic!("unexpected {other:?}"),
        })),
    );
    assert!(k.run_to_completion(t(10)));
    let stats = k.rpstat();
    assert!(stats.is_empty(), "rpstat shows only live processes");
    // The app finished only when the child exited too.
    assert!(k.app_done_time(AppId(7)).is_some());
    // Parent linkage was recorded while alive (checked via trace).
    let spawns: Vec<Pid> = k
        .trace()
        .filtered(|e| matches!(e, simkernel::KTrace::Spawn { .. }))
        .map(|e| match e.kind {
            simkernel::KTrace::Spawn { pid, .. } => pid,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(spawns.len(), 2);
    assert_eq!(spawns[0], root);
}

#[test]
fn runnable_trace_tracks_transitions() {
    let mut k = kernel(2);
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![
            Action::Compute(SimDur::from_millis(10)),
            Action::Sleep(SimDur::from_millis(50)),
            Action::Compute(SimDur::from_millis(10)),
        ])),
    );
    assert!(k.run_to_completion(t(10)));
    let counts: Vec<u32> = k
        .trace()
        .filtered(|e| matches!(e, simkernel::KTrace::Runnable { .. }))
        .map(|e| match e.kind {
            simkernel::KTrace::Runnable { total, .. } => total,
            _ => unreachable!(),
        })
        .collect();
    // spawn(1), sleep(0), wake(1), exit(0).
    assert_eq!(counts, vec![1, 0, 1, 0]);
}

#[test]
fn yield_rotates_between_processes() {
    let mut k = kernel(1);
    for i in 0..2 {
        k.spawn_root(
            AppId(i),
            64,
            Box::new(Script::new(vec![
                Action::Compute(SimDur::from_millis(1)),
                Action::Yield,
                Action::Compute(SimDur::from_millis(1)),
                Action::Yield,
                Action::Compute(SimDur::from_millis(1)),
            ])),
        );
    }
    assert!(k.run_to_completion(t(10)));
    // With yields, both finish long before a quantum would have rotated
    // them (3 ms each vs 100 ms quantum).
    let done = k.app_done_time(AppId(1)).unwrap();
    assert!(
        done < SimTime::ZERO + SimDur::from_millis(20),
        "done {done}"
    );
}

#[test]
fn determinism_same_seedless_run_twice() {
    let run = || {
        let mut k = kernel(3);
        let lock = k.create_lock();
        for i in 0..5 {
            k.spawn_root(
                AppId(i),
                128,
                Box::new(Script::new(vec![
                    Action::Compute(SimDur::from_millis(30 + 7 * i as u64)),
                    Action::AcquireLock(lock),
                    Action::Compute(SimDur::from_millis(3)),
                    Action::ReleaseLock(lock),
                    Action::Compute(SimDur::from_millis(20)),
                ])),
            );
        }
        assert!(k.run_to_completion(t(30)));
        (0..5)
            .map(|i| k.app_done_time(AppId(i)).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn heavy_overload_still_completes() {
    // 32 processes on 2 processors, all contending for one lock.
    let mut k = kernel(2);
    let lock = k.create_lock();
    for i in 0..32 {
        k.spawn_root(
            AppId(i % 4),
            64,
            Box::new(Script::new(vec![
                Action::Compute(SimDur::from_millis(5)),
                Action::AcquireLock(lock),
                Action::Compute(SimDur::from_micros(100)),
                Action::ReleaseLock(lock),
                Action::Compute(SimDur::from_millis(5)),
            ])),
        );
    }
    assert!(k.run_to_completion(t(120)));
    assert_eq!(k.lock_stats(lock).acquisitions, 32);
    assert_eq!(k.runnable_count(), 0);
    assert_eq!(k.live_procs(), 0);
}

#[test]
fn utilization_reflects_load() {
    // One busy CPU, one idle CPU.
    let mut k = kernel(2);
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(1))])),
    );
    assert!(k.run_to_completion(t(10)));
    let u0 = k.cpu_utilization(machine::CpuId(0));
    let u1 = k.cpu_utilization(machine::CpuId(1));
    assert!(u0 > 0.9, "busy cpu utilization {u0}");
    assert!(u1 < 0.05, "idle cpu utilization {u1}");
    let mean = k.mean_utilization();
    assert!((mean - (u0 + u1) / 2.0).abs() < 1e-9);
}
