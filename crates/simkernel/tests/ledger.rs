//! Tests for the cycle-accounting ledger: conservation, attribution, and
//! the new trace variants (preempt-while-spinning, lock hand-off latency).

use desim::{SimDur, SimTime};
use simkernel::policy::FifoRoundRobin;
use simkernel::{Action, AppId, KTrace, Kernel, KernelConfig, Script};

const LIMIT: SimTime = SimTime(7_200 * 1_000_000_000);

fn contended_kernel(cpus: usize, procs: u32, cs_ms: u64) -> Kernel {
    let mut k = Kernel::new(
        KernelConfig::multimax().with_cpus(cpus),
        Box::new(FifoRoundRobin::new()),
    );
    let lock = k.create_lock();
    for i in 0..procs {
        k.spawn_root(
            AppId(i % 3),
            256,
            Box::new(Script::new(vec![
                Action::Compute(SimDur::from_millis(5)),
                Action::AcquireLock(lock),
                Action::Compute(SimDur::from_millis(cs_ms)),
                Action::ReleaseLock(lock),
                Action::Compute(SimDur::from_millis(5)),
            ])),
        );
    }
    k
}

#[test]
fn ledger_conserves_cycles_at_completion() {
    let mut k = contended_kernel(4, 12, 30);
    assert!(k.run_to_completion(LIMIT));
    let ledger = k.cycle_ledger();
    assert_eq!(ledger.num_cpus, 4);
    assert!(
        ledger.conserved(),
        "accounted {} != processor cycles {} (work {} spin {} refill {} switch {} idle {})",
        ledger.accounted(),
        ledger.processor_cycles(),
        ledger.total.work,
        ledger.total.spin,
        ledger.total.refill,
        ledger.total.switch,
        ledger.idle,
    );
    // Under heavy overcommit on a shared lock there must be real spin and
    // switch time, and the requested work is all present.
    assert!(ledger.total.spin > SimDur::ZERO, "no spin recorded");
    assert!(
        ledger.total.switch > SimDur::ZERO,
        "no switch time recorded"
    );
    assert!(ledger.total.work >= SimDur::from_millis(12 * 40));
}

#[test]
fn ledger_conserves_cycles_mid_run() {
    // Conservation must hold at arbitrary snapshot instants, including
    // while processes are mid-segment or inside a context-switch window.
    let mut k = contended_kernel(2, 8, 20);
    for ms in [1u64, 7, 50, 123, 400, 1_000] {
        k.run_until(SimTime::ZERO + SimDur::from_millis(ms));
        let ledger = k.cycle_ledger();
        assert!(
            ledger.conserved(),
            "at {ms}ms: accounted {} != {}",
            ledger.accounted(),
            ledger.processor_cycles(),
        );
    }
    assert!(k.run_to_completion(LIMIT));
    assert!(k.cycle_ledger().conserved());
}

#[test]
fn per_app_totals_sum_to_machine_totals() {
    let mut k = contended_kernel(4, 9, 10);
    assert!(k.run_to_completion(LIMIT));
    let ledger = k.cycle_ledger();
    let mut work = SimDur::ZERO;
    let mut spin = SimDur::ZERO;
    let mut refill = SimDur::ZERO;
    let mut switch = SimDur::ZERO;
    for (_, c) in ledger.apps() {
        work += c.work;
        spin += c.spin;
        refill += c.refill;
        switch += c.switch;
    }
    assert_eq!(work, ledger.total.work);
    assert_eq!(spin, ledger.total.spin);
    assert_eq!(refill, ledger.total.refill);
    assert_eq!(switch, ledger.total.switch);
    // Per-process map covers the same cycles as the per-app map.
    let mut proc_work = SimDur::ZERO;
    for c in ledger.per_proc.values() {
        proc_work += c.work;
    }
    assert_eq!(proc_work, ledger.total.work);
}

#[test]
fn preempt_while_spinning_is_traced() {
    // One long lock holder plus many spinners on few processors: spinners
    // must get preempted while spinning.
    let mut k = Kernel::new(
        KernelConfig::multimax().with_cpus(2),
        Box::new(FifoRoundRobin::new()),
    );
    let lock = k.create_lock();
    k.spawn_root(
        AppId(0),
        64,
        Box::new(Script::new(vec![
            Action::AcquireLock(lock),
            Action::Compute(SimDur::from_millis(500)),
            Action::ReleaseLock(lock),
        ])),
    );
    for _ in 0..4 {
        k.spawn_root(
            AppId(1),
            64,
            Box::new(Script::new(vec![
                Action::AcquireLock(lock),
                Action::Compute(SimDur::from_millis(1)),
                Action::ReleaseLock(lock),
            ])),
        );
    }
    assert!(k.run_to_completion(LIMIT));
    let spinning_preempts = k
        .trace()
        .filtered(|e| matches!(e, KTrace::PreemptWhileSpinning { .. }))
        .count();
    assert!(
        spinning_preempts > 0,
        "expected preempt-while-spinning events under overcommit"
    );
}

#[test]
fn lock_handoff_latency_is_traced() {
    let mut k = contended_kernel(4, 8, 10);
    assert!(k.run_to_completion(LIMIT));
    let mut handoffs = 0u32;
    for e in k.trace().events() {
        if let KTrace::LockHandoff { waited, .. } = e.kind {
            handoffs += 1;
            // Hand-off latency is bounded by the whole run.
            assert!(e.time.since(SimTime::ZERO) >= waited);
        }
    }
    assert!(handoffs > 0, "contended run produced no lock hand-offs");
}

#[test]
fn suspended_time_is_wall_clock_not_processor_time() {
    // A process that sleeps does not accrue suspended time; suspension is
    // only the SigWait state. Build a suspender via procctl-style signal
    // wait: process A waits for a signal, process B computes then signals.
    use simkernel::{FnBehavior, Wakeup};
    let mut k = Kernel::new(
        KernelConfig::multimax().with_cpus(2),
        Box::new(FifoRoundRobin::new()),
    );
    let waiter = k.spawn_root(
        AppId(0),
        64,
        Box::new(FnBehavior(
            |wake, _ctx: &mut dyn simkernel::UserCtx| match wake {
                Wakeup::Start => Action::WaitSignal,
                _ => Action::Exit,
            },
        )),
    );
    let _signaler = k.spawn_root(
        AppId(1),
        64,
        Box::new(FnBehavior(
            move |wake, _ctx: &mut dyn simkernel::UserCtx| match wake {
                Wakeup::Start => Action::Compute(SimDur::from_millis(50)),
                Wakeup::ComputeDone => Action::SendSignal(waiter),
                _ => Action::Exit,
            },
        )),
    );
    assert!(k.run_to_completion(LIMIT));
    let ledger = k.cycle_ledger();
    assert!(ledger.conserved());
    let w = ledger.per_proc[&waiter];
    // The waiter sat suspended for roughly the signaler's compute time.
    assert!(
        w.suspended >= SimDur::from_millis(40),
        "suspended {} too small",
        w.suspended
    );
    // Suspended time is excluded from its busy() processor time.
    assert!(w.busy() < SimDur::from_millis(10));
}
