//! Identifier newtypes used throughout the simulated kernel.

use core::fmt;

/// A kernel process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// An application identifier.
///
/// The kernel itself does not schedule by application (except under gang or
/// partition policies); the id primarily tags processes so instrumentation
/// and the process-control server can group them, exactly as the paper's
/// server groups UMAX processes by their root's pid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AppId(pub u32);

/// A user-level spinlock identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u32);

/// An IPC mailbox ("socket") identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}
