//! Process control blocks and per-process accounting.

use desim::{SimDur, SimTime};
use machine::CpuId;

use crate::action::Behavior;
use crate::ids::{AppId, LockId, Pid, PortId};

/// What effect to apply when the current service period completes.
pub(crate) enum Then {
    /// Deliver [`crate::Wakeup::ComputeDone`].
    ComputeDone,
    /// Try to take the lock; spin if held.
    TryAcquire(LockId),
    /// Release the lock (and grant to a running spinner).
    Release(LockId),
    /// Post the message, then deliver `Sent`.
    SendMsg(PortId, Vec<u64>),
    /// Take a message or block on the port.
    RecvMsg(PortId),
    /// Non-blocking receive.
    PollMsg(PortId),
    /// Create the child process.
    DoSpawn(Option<Box<dyn Behavior>>, u64),
    /// Enter the suspended (signal-wait) state.
    DoWaitSignal,
    /// Deliver the resume signal to the target.
    DoSignal(Pid),
    /// Block for the duration.
    DoSleep(SimDur),
    /// Go to the back of the run queue.
    DoYield,
    /// Terminate.
    DoExit,
}

impl std::fmt::Debug for Then {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Then::ComputeDone => "ComputeDone",
            Then::TryAcquire(_) => "TryAcquire",
            Then::Release(_) => "Release",
            Then::SendMsg(..) => "SendMsg",
            Then::RecvMsg(_) => "RecvMsg",
            Then::PollMsg(_) => "PollMsg",
            Then::DoSpawn(..) => "DoSpawn",
            Then::DoWaitSignal => "DoWaitSignal",
            Then::DoSignal(_) => "DoSignal",
            Then::DoSleep(_) => "DoSleep",
            Then::DoYield => "DoYield",
            Then::DoExit => "DoExit",
        };
        f.write_str(s)
    }
}

/// What the process is currently doing.
#[derive(Debug)]
pub(crate) enum Op {
    /// Executing on (or waiting to execute) a service period of `left`
    /// remaining work; `then` applies at completion.
    Service { left: SimDur, then: Then },
    /// Busy-waiting for a spinlock. Spinning consumes processor time but
    /// performs no work and makes no progress until granted.
    Spin { lock: LockId },
    /// No current op (only transiently, during wakeup delivery).
    Idle,
}

/// Scheduler-visible process state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// On a processor.
    Running(CpuId),
    /// Runnable, waiting in a run queue.
    Ready,
    /// Sleeping until a timer fires.
    Sleeping,
    /// Suspended, waiting for the resume signal ([`crate::Action::WaitSignal`]).
    SigWait,
    /// Blocked in a mailbox receive.
    RecvWait(PortId),
    /// Terminated.
    Exited,
}

impl ProcState {
    /// Runnable means: would consume a processor if given one.
    pub(crate) fn is_runnable(self) -> bool {
        matches!(self, ProcState::Running(_) | ProcState::Ready)
    }
}

/// Per-process cumulative accounting, exposed for instrumentation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProcAccounting {
    /// Useful work executed (excludes spin, refill, switch, service of
    /// kernel calls is *included* as work).
    pub work: SimDur,
    /// Time spent busy-waiting on spinlocks.
    pub spin: SimDur,
    /// Time spent refilling caches after corrupted dispatches.
    pub refill: SimDur,
    /// Number of dispatches onto a processor.
    pub dispatches: u64,
    /// Number of dispatches that switched the processor away from another
    /// process (i.e. paid the context-switch cost).
    pub switches: u64,
    /// Number of involuntary preemptions (quantum expiry).
    pub preemptions: u64,
    /// Total time from becoming ready to being dispatched.
    pub ready_wait: SimDur,
    /// Processor time consumed by context-switch costs on this process's
    /// behalf (charged to the incoming process at dispatch).
    pub switch_time: SimDur,
    /// Wall-clock time spent suspended in [`ProcState::SigWait`]. This is
    /// *not* processor time — a suspended process occupies no processor —
    /// so it sits outside the per-processor cycle conservation sum.
    pub suspended: SimDur,
}

pub(crate) struct Pcb {
    pub pid: Pid,
    pub parent: Option<Pid>,
    pub app: AppId,
    pub state: ProcState,
    pub op: Op,
    pub behavior: Option<Box<dyn Behavior>>,
    /// Working-set size in cache lines (drives the cache-corruption model).
    pub ws_lines: u64,
    /// Number of spinlocks currently held; used by the spinlock-flag
    /// scheduling baseline and by debug assertions on exit.
    pub locks_held: u32,
    /// A resume signal was sent while the process was not in `SigWait`.
    pub pending_signal: bool,
    /// Last processor this process ran on (affinity policies).
    pub last_cpu: Option<CpuId>,
    /// Total CPU time consumed (all categories), for priority-decay policies.
    pub cpu_time: SimDur,
    /// Epoch counter invalidating stale completion events.
    pub epoch: u64,
    /// When the process last became ready (for ready-wait accounting).
    pub ready_since: Option<SimTime>,
    /// When the process entered `SigWait` (for suspension accounting).
    pub suspend_since: Option<SimTime>,
    /// When the process started spinning on its current lock (for lock
    /// hand-off latency tracing).
    pub spin_since: Option<SimTime>,
    /// Cumulative accounting.
    pub acct: ProcAccounting,
}

impl Pcb {
    pub(crate) fn new(
        pid: Pid,
        parent: Option<Pid>,
        app: AppId,
        ws_lines: u64,
        behavior: Box<dyn Behavior>,
    ) -> Self {
        Pcb {
            pid,
            parent,
            app,
            state: ProcState::Ready,
            op: Op::Idle,
            behavior: Some(behavior),
            ws_lines,
            locks_held: 0,
            pending_signal: false,
            last_cpu: None,
            cpu_time: SimDur::ZERO,
            epoch: 0,
            ready_since: None,
            suspend_since: None,
            spin_since: None,
            acct: ProcAccounting::default(),
        }
    }
}

/// A tiny slab keyed by [`Pid`].
pub(crate) struct ProcTable {
    slots: Vec<Option<Pcb>>,
}

impl ProcTable {
    pub(crate) fn new() -> Self {
        ProcTable { slots: Vec::new() }
    }

    pub(crate) fn insert(
        &mut self,
        parent: Option<Pid>,
        app: AppId,
        ws_lines: u64,
        behavior: Box<dyn Behavior>,
    ) -> Pid {
        let pid = Pid(self.slots.len() as u32);
        self.slots
            .push(Some(Pcb::new(pid, parent, app, ws_lines, behavior)));
        pid
    }

    pub(crate) fn get(&self, pid: Pid) -> &Pcb {
        self.slots[pid.0 as usize]
            .as_ref()
            .expect("pid refers to a live process")
    }

    pub(crate) fn get_mut(&mut self, pid: Pid) -> &mut Pcb {
        self.slots[pid.0 as usize]
            .as_mut()
            .expect("pid refers to a live process")
    }

    /// Iterates over live (non-reaped) processes, including exited ones.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &Pcb> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Script};

    #[test]
    fn table_assigns_sequential_pids() {
        let mut t = ProcTable::new();
        let a = t.insert(None, AppId(0), 10, Box::new(Script::new(vec![])));
        let b = t.insert(Some(a), AppId(0), 10, Box::new(Script::new(vec![])));
        assert_eq!(a, Pid(0));
        assert_eq!(b, Pid(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b).parent, Some(a));
    }

    #[test]
    fn runnable_states() {
        assert!(ProcState::Ready.is_runnable());
        assert!(ProcState::Running(CpuId(0)).is_runnable());
        assert!(!ProcState::Sleeping.is_runnable());
        assert!(!ProcState::SigWait.is_runnable());
        assert!(!ProcState::RecvWait(PortId(0)).is_runnable());
        assert!(!ProcState::Exited.is_runnable());
    }

    #[test]
    fn new_pcb_is_ready_and_clean() {
        let pcb = Pcb::new(
            Pid(3),
            None,
            AppId(1),
            64,
            Box::new(Script::new(vec![Action::Exit])),
        );
        assert_eq!(pcb.state, ProcState::Ready);
        assert_eq!(pcb.locks_held, 0);
        assert!(!pcb.pending_signal);
        assert_eq!(pcb.acct.dispatches, 0);
    }
}
