//! Coscheduling (gang scheduling), after Ousterhout's Medusa scheduler.
//!
//! All runnable processes of one application run together for a slice; at
//! the slice boundary the whole gang is preempted and the next application's
//! gang runs. We implement the practical variant that *fills fragments*:
//! when the current gang is smaller than the machine, leftover processors
//! take processes from subsequent gangs in rotation order (this corresponds
//! to Ousterhout's matrix packing).
//!
//! As the paper notes, coscheduling fixes busy-wait waste (degradation
//! mechanisms #1 and #2) but not context-switch overhead or cache corruption
//! (#3 and #4): every boundary still switches every processor.

use std::collections::{HashMap, VecDeque};

use desim::{SimDur, SimTime};
use machine::CpuId;

use crate::ids::{AppId, Pid};
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

/// Gang scheduling with fragment filling.
#[derive(Debug)]
pub struct Coscheduling {
    /// Rotation order (first-seen order of applications).
    apps: Vec<AppId>,
    /// Per-application FIFO of runnable, unscheduled processes.
    queues: HashMap<AppId, VecDeque<Pid>>,
    /// Gang slice length (one slice per application per rotation).
    slice: SimDur,
    queued: usize,
}

impl Coscheduling {
    /// Creates the policy with the given gang slice length (typically the
    /// kernel quantum).
    pub fn new(slice: SimDur) -> Self {
        assert!(!slice.is_zero(), "slice must be positive");
        Coscheduling {
            apps: Vec::new(),
            queues: HashMap::new(),
            slice,
            queued: 0,
        }
    }

    /// Index into the rotation for the slice containing `now`.
    fn rotation_index(&self, now: SimTime) -> usize {
        if self.apps.is_empty() {
            return 0;
        }
        ((now.nanos() / self.slice.nanos()) % self.apps.len() as u64) as usize
    }

    /// Time remaining until the next global slice boundary.
    fn until_boundary(&self, now: SimTime) -> SimDur {
        let s = self.slice.nanos();
        let rem = s - now.nanos() % s;
        SimDur(rem)
    }
}

impl SchedPolicy for Coscheduling {
    fn name(&self) -> &'static str {
        "coscheduling"
    }

    fn on_ready(&mut self, view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        let app = view.app(pid);
        if !self.apps.contains(&app) {
            self.apps.push(app);
        }
        let q = self.queues.entry(app).or_default();
        debug_assert!(!q.contains(&pid), "{pid} enqueued twice");
        q.push_back(pid);
        self.queued += 1;
    }

    fn on_remove(&mut self, view: &PolicyView<'_>, pid: Pid) {
        let app = view.app(pid);
        if let Some(q) = self.queues.get_mut(&app) {
            let before = q.len();
            q.retain(|&p| p != pid);
            self.queued -= before - q.len();
        }
    }

    fn pick(&mut self, view: &PolicyView<'_>, _cpu: CpuId) -> Option<Pid> {
        if self.apps.is_empty() {
            return None;
        }
        // Current gang first, then later gangs in rotation order to fill
        // leftover processors.
        let start = self.rotation_index(view.now);
        let n = self.apps.len();
        for i in 0..n {
            let app = self.apps[(start + i) % n];
            if let Some(q) = self.queues.get_mut(&app) {
                if let Some(pid) = q.pop_front() {
                    self.queued -= 1;
                    return Some(pid);
                }
            }
        }
        None
    }

    fn quantum(
        &mut self,
        view: &PolicyView<'_>,
        _cpu: CpuId,
        _pid: Pid,
        _default: SimDur,
    ) -> SimDur {
        // Everyone's quantum ends at the global boundary, so the whole gang
        // is preempted simultaneously and the next gang starts together.
        self.until_boundary(view.now)
    }

    fn queue_len(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcb::ProcTable;
    use crate::Script;

    /// Builds a ProcTable with `napps` apps of `per` processes each.
    fn table(napps: u32, per: u32) -> ProcTable {
        let mut t = ProcTable::new();
        for a in 0..napps {
            for _ in 0..per {
                t.insert(None, AppId(a), 1, Box::new(Script::new(vec![])));
            }
        }
        t
    }

    #[test]
    fn picks_current_gang_first() {
        let procs = table(2, 2); // app0: pid0,1; app1: pid2,3
        let running: [Option<Pid>; 4] = [None, None, None, None];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = Coscheduling::new(SimDur::from_millis(100));
        for i in 0..4 {
            p.on_ready(&v, Pid(i), ReadyReason::New);
        }
        // At t=0 the rotation points at app0.
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(0)));
        assert_eq!(p.pick(&v, CpuId(1)), Some(Pid(1)));
        // Fragment filling: leftover processors take app1's processes.
        assert_eq!(p.pick(&v, CpuId(2)), Some(Pid(2)));
    }

    #[test]
    fn rotation_advances_with_time() {
        let procs = table(2, 1); // app0: pid0; app1: pid1
        let running: [Option<Pid>; 1] = [None];
        let t1 = SimTime::ZERO + SimDur::from_millis(100);
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: t1,
        };
        let mut p = Coscheduling::new(SimDur::from_millis(100));
        p.on_ready(&v, Pid(0), ReadyReason::New);
        p.on_ready(&v, Pid(1), ReadyReason::New);
        // Second slice: app1's turn.
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(1)));
    }

    #[test]
    fn quantum_ends_at_boundary() {
        let procs = table(1, 1);
        let running: [Option<Pid>; 1] = [None];
        let now = SimTime::ZERO + SimDur::from_millis(30);
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now,
        };
        let mut p = Coscheduling::new(SimDur::from_millis(100));
        p.on_ready(&v, Pid(0), ReadyReason::New);
        let q = p.quantum(&v, CpuId(0), Pid(0), SimDur::from_millis(100));
        assert_eq!(q, SimDur::from_millis(70));
    }
}
