//! Encore-style usage-decay priority scheduling.
//!
//! UMAX derived priorities from recent CPU consumption, so a freshly started
//! process outranks processes that have been computing for a while. The
//! paper's Figure 4 discussion blames exactly this for matmul's relatively
//! good uncontrolled performance: "processes just starting up may have
//! higher priority than slightly older processes due to the relation of
//! priority to past CPU use."

use std::collections::HashMap;

use desim::SimDur;
use machine::CpuId;

use crate::ids::Pid;
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

#[derive(Clone, Copy, Debug, Default)]
struct Usage {
    /// Exponentially decayed CPU usage, in seconds.
    decayed: f64,
    /// Total CPU time at the last decay tick.
    last_total: SimDur,
}

/// Usage-decay priority scheduling (smaller decayed usage = higher priority).
#[derive(Debug)]
pub struct PriorityDecay {
    queue: Vec<Pid>,
    usage: HashMap<Pid, Usage>,
    /// Multiplier applied to decayed usage per tick (0..1).
    decay: f64,
}

impl Default for PriorityDecay {
    fn default() -> Self {
        Self::new(0.66)
    }
}

impl PriorityDecay {
    /// Creates the policy with the given per-tick decay factor.
    pub fn new(decay: f64) -> Self {
        assert!((0.0..1.0).contains(&decay), "decay must be in [0, 1)");
        PriorityDecay {
            queue: Vec::new(),
            usage: HashMap::new(),
            decay,
        }
    }

    fn priority(&self, pid: Pid) -> f64 {
        self.usage.get(&pid).map_or(0.0, |u| u.decayed)
    }
}

impl SchedPolicy for PriorityDecay {
    fn name(&self) -> &'static str {
        "priority-decay"
    }

    fn on_ready(&mut self, view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        debug_assert!(!self.queue.contains(&pid), "{pid} enqueued twice");
        self.usage.entry(pid).or_insert(Usage {
            decayed: 0.0,
            last_total: view.cpu_time(pid),
        });
        self.queue.push(pid);
    }

    fn on_remove(&mut self, _view: &PolicyView<'_>, pid: Pid) {
        self.queue.retain(|&p| p != pid);
        self.usage.remove(&pid);
    }

    fn pick(&mut self, _view: &PolicyView<'_>, _cpu: CpuId) -> Option<Pid> {
        if self.queue.is_empty() {
            return None;
        }
        // Lowest decayed usage wins; FIFO position breaks ties (stable min).
        let (best_idx, _) = self
            .queue
            .iter()
            .enumerate()
            .min_by(|(ia, &a), (ib, &b)| {
                self.priority(a)
                    .partial_cmp(&self.priority(b))
                    .expect("priorities are finite")
                    .then(ia.cmp(ib))
            })
            .expect("queue is non-empty");
        Some(self.queue.remove(best_idx))
    }

    fn on_tick(&mut self, view: &PolicyView<'_>) {
        for (&pid, u) in self.usage.iter_mut() {
            let total = view.cpu_time(pid);
            let delta = total.saturating_sub(u.last_total).as_secs_f64();
            u.last_total = total;
            u.decayed = u.decayed * self.decay + delta;
        }
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcb::ProcTable;
    use desim::SimTime;

    fn table(n: u32) -> ProcTable {
        let mut t = ProcTable::new();
        for _ in 0..n {
            t.insert(
                None,
                crate::ids::AppId(0),
                1,
                Box::new(crate::Script::new(vec![])),
            );
        }
        t
    }

    #[test]
    fn fresh_process_outranks_heavy_user() {
        let procs = table(3);
        let running: [Option<Pid>; 1] = [None];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = PriorityDecay::default();
        p.on_ready(&v, Pid(1), ReadyReason::New);
        p.on_ready(&v, Pid(2), ReadyReason::New);
        // Simulate pid 1 having consumed CPU: bump its decayed usage
        // directly through a tick after manual accounting.
        p.usage.get_mut(&Pid(1)).unwrap().decayed = 5.0;
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(2)));
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(1)));
    }

    #[test]
    fn ties_broken_fifo() {
        let procs = table(5);
        let running: [Option<Pid>; 1] = [None];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = PriorityDecay::default();
        p.on_ready(&v, Pid(3), ReadyReason::New);
        p.on_ready(&v, Pid(4), ReadyReason::New);
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(3)));
    }

    #[test]
    #[should_panic(expected = "decay must be")]
    fn invalid_decay_rejected() {
        PriorityDecay::new(1.5);
    }
}
