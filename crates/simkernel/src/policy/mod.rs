//! Pluggable kernel scheduling policies.
//!
//! The kernel mechanism (dispatch, quantum timers, accounting) is fixed; the
//! *policy* decides which runnable process a free processor picks up, how
//! long its quantum is, and whether a quantum-expiry preemption may be
//! deferred. This is where the paper's related-work baselines live:
//!
//! - [`FifoRoundRobin`] — the UMAX default the paper measured against: one
//!   global FIFO queue, fixed quantum. The paper's Section 2 notes that the
//!   longer the queue, the longer a preempted process (possibly holding a
//!   lock) waits to run again.
//! - [`PriorityDecay`] — Encore-style usage-decay priorities; reproduces the
//!   paper's Figure 4 observation that freshly started processes outrank
//!   older ones.
//! - [`Coscheduling`] — Ousterhout's gang scheduling (related work #1).
//! - [`SpinlockFlag`] — Zahorjan-style preemption avoidance while a process
//!   holds a lock (related work #2).
//! - [`GroupPolicy`] — Edler et al.'s NYU Ultracomputer group scheduling
//!   (related work #3).
//! - [`Affinity`] — Squillante & Lazowska cache-affinity scheduling
//!   (related work #4).
//! - [`SpacePartition`] — the paper's own Section 7 proposal: processors
//!   are partitioned into per-application groups with separate run queues.

mod affinity;
mod cosched;
mod fifo;
mod groups;
mod priodecay;
mod spinflag;

pub use affinity::Affinity;
pub use cosched::Coscheduling;
pub use fifo::FifoRoundRobin;
pub use groups::{GroupMode, GroupPolicy};
pub use partition::SpacePartition;
pub use priodecay::PriorityDecay;
pub use spinflag::SpinlockFlag;

mod partition;

use desim::{SimDur, SimTime};
use machine::CpuId;

use crate::ids::{AppId, Pid};
use crate::pcb::ProcTable;

/// Why a process entered the ready queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadyReason {
    /// Newly spawned.
    New,
    /// Involuntarily preempted at quantum expiry.
    Preempted,
    /// Woke from a blocked state (sleep, receive, suspension).
    Unblocked,
    /// Voluntarily yielded.
    Yielded,
}

/// Read-only view of kernel state offered to policies.
pub struct PolicyView<'a> {
    pub(crate) procs: &'a ProcTable,
    pub(crate) running: &'a [Option<Pid>],
    /// Current simulated time.
    pub now: SimTime,
}

impl PolicyView<'_> {
    /// Application of a process.
    pub fn app(&self, pid: Pid) -> AppId {
        self.procs.get(pid).app
    }

    /// Whether the process currently holds at least one spinlock (the
    /// "flag" of spinlock-flag policies).
    pub fn holds_lock(&self, pid: Pid) -> bool {
        self.procs.get(pid).locks_held > 0
    }

    /// The processor this process last ran on, if any.
    pub fn last_cpu(&self, pid: Pid) -> Option<CpuId> {
        self.procs.get(pid).last_cpu
    }

    /// Total CPU time the process has consumed.
    pub fn cpu_time(&self, pid: Pid) -> SimDur {
        self.procs.get(pid).cpu_time
    }

    /// Who is running on each processor.
    pub fn running(&self) -> &[Option<Pid>] {
        self.running
    }

    /// Number of processors.
    pub fn num_cpus(&self) -> usize {
        self.running.len()
    }
}

/// A kernel scheduling policy.
///
/// The kernel guarantees: every pid passed to [`SchedPolicy::pick`]'s queue
/// arrived via [`SchedPolicy::on_ready`] and has not been picked or removed
/// since; `pick` must return only such pids (or `None` to leave the
/// processor idle, as partitioned/gang policies sometimes do).
pub trait SchedPolicy {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// `pid` became runnable.
    fn on_ready(&mut self, view: &PolicyView<'_>, pid: Pid, reason: ReadyReason);

    /// `pid` is no longer runnable (blocked or exited). Policies must
    /// tolerate pids not currently queued (e.g. a running process exiting).
    fn on_remove(&mut self, view: &PolicyView<'_>, pid: Pid);

    /// Chooses a process for an idle processor, removing it from the queue.
    fn pick(&mut self, view: &PolicyView<'_>, cpu: CpuId) -> Option<Pid>;

    /// Quantum to grant `pid` on `cpu`; defaults to the kernel's fixed
    /// quantum. Gang policies return the time to the next rotation boundary.
    fn quantum(
        &mut self,
        _view: &PolicyView<'_>,
        _cpu: CpuId,
        _pid: Pid,
        default: SimDur,
    ) -> SimDur {
        default
    }

    /// Whether a quantum-expiry preemption of `pid` may proceed now.
    /// Spinlock-flag policies answer `false` while the flag is set; the
    /// kernel defers the preemption briefly (bounded by
    /// `KernelConfig::max_preempt_defer`).
    fn allow_preempt(&mut self, _view: &PolicyView<'_>, _pid: Pid) -> bool {
        true
    }

    /// Periodic housekeeping (priority decay, partition resize).
    fn on_tick(&mut self, _view: &PolicyView<'_>) {}

    /// Number of processes currently queued (runnable but not running).
    fn queue_len(&self) -> usize;
}
