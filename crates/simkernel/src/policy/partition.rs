//! Space partitioning — the paper's Section 7 proposal.
//!
//! Processors are dynamically partitioned into *processor groups*, normally
//! one per application, each with its own run queue. A high-level policy
//! module decides how many processors each group gets (here: equal shares,
//! recomputed on every tick and whenever the application population
//! changes), and low-level scheduling within a group is ordinary
//! round-robin. Processes of one application therefore never share a
//! processor with another application's processes, which both prevents
//! uncontrolled applications from hogging the machine and keeps caches
//! warm.

use std::collections::{HashMap, VecDeque};

use machine::CpuId;

use crate::ids::{AppId, Pid};
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

/// Dynamic equal-share processor partitioning with per-group run queues.
#[derive(Debug, Default)]
pub struct SpacePartition {
    /// Applications in arrival order (stable partition assignment).
    apps: Vec<AppId>,
    /// Per-application run queue.
    queues: HashMap<AppId, VecDeque<Pid>>,
    /// Which application each processor currently serves. Recomputed when
    /// the application population changes.
    cpu_app: Vec<Option<AppId>>,
    queued: usize,
}

impl SpacePartition {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applications that still have processes (queued or running).
    fn live_apps(&self, view: &PolicyView<'_>) -> Vec<AppId> {
        let mut live: Vec<AppId> = Vec::new();
        for app in &self.apps {
            let queued = self.queues.get(app).is_some_and(|q| !q.is_empty());
            let running = view
                .running()
                .iter()
                .flatten()
                .any(|&p| view.app(p) == *app);
            if queued || running {
                live.push(*app);
            }
        }
        live
    }

    /// Recomputes the processor → application assignment: contiguous equal
    /// shares, remainder to the earliest-arrived applications; if there are
    /// more applications than processors, the overflow applications share
    /// the last processor round-robin (handled in `pick` by falling back to
    /// any queue for unassigned/starved processors).
    fn rebalance(&mut self, view: &PolicyView<'_>) {
        let ncpus = view.num_cpus();
        self.cpu_app = vec![None; ncpus];
        let live = self.live_apps(view);
        if live.is_empty() {
            return;
        }
        let share = ncpus / live.len();
        let extra = ncpus % live.len();
        let mut cpu = 0usize;
        for (i, app) in live.iter().enumerate() {
            let mut n = share + usize::from(i < extra);
            // With more applications than processors some get zero; they
            // are served by the fallback path in `pick`.
            while n > 0 && cpu < ncpus {
                self.cpu_app[cpu] = Some(*app);
                cpu += 1;
                n -= 1;
            }
        }
    }
}

impl SchedPolicy for SpacePartition {
    fn name(&self) -> &'static str {
        "space-partition"
    }

    fn on_ready(&mut self, view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        let app = view.app(pid);
        let is_new = !self.apps.contains(&app);
        if is_new {
            self.apps.push(app);
        }
        let q = self.queues.entry(app).or_default();
        debug_assert!(!q.contains(&pid), "{pid} enqueued twice");
        q.push_back(pid);
        self.queued += 1;
        if is_new {
            self.rebalance(view);
        }
    }

    fn on_remove(&mut self, view: &PolicyView<'_>, pid: Pid) {
        let app = view.app(pid);
        if let Some(q) = self.queues.get_mut(&app) {
            let before = q.len();
            q.retain(|&p| p != pid);
            self.queued -= before - q.len();
        }
    }

    fn pick(&mut self, view: &PolicyView<'_>, cpu: CpuId) -> Option<Pid> {
        if self.cpu_app.len() != view.num_cpus() {
            self.rebalance(view);
        }
        if let Some(app) = self.cpu_app.get(cpu.0).copied().flatten() {
            if let Some(pid) = self.queues.get_mut(&app).and_then(VecDeque::pop_front) {
                self.queued -= 1;
                return Some(pid);
            }
        }
        // Overflow service: when there are more applications than
        // processors, some applications have no dedicated processor —
        // "multiple applications may have to be assigned to the same
        // processor group". Any processor whose own group queue is drained
        // serves the longest overflow queue. Applications that *do* own
        // processors are never poached (isolation property).
        let app = self
            .apps
            .iter()
            .filter(|a| !self.cpu_app.contains(&Some(**a)))
            .max_by_key(|a| self.queues.get(a).map_or(0, VecDeque::len))
            .copied();
        if let Some(app) = app {
            if let Some(pid) = self.queues.get_mut(&app).and_then(VecDeque::pop_front) {
                self.queued -= 1;
                return Some(pid);
            }
        }
        None
    }

    fn on_tick(&mut self, view: &PolicyView<'_>) {
        self.rebalance(view);
    }

    fn queue_len(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcb::ProcTable;
    use crate::Script;
    use desim::SimTime;

    fn table(napps: u32, per: u32) -> ProcTable {
        let mut t = ProcTable::new();
        for a in 0..napps {
            for _ in 0..per {
                t.insert(None, AppId(a), 1, Box::new(Script::new(vec![])));
            }
        }
        t
    }

    #[test]
    fn processors_split_equally() {
        let procs = table(2, 4); // app0: 0..4, app1: 4..8
        let running: [Option<Pid>; 4] = [None; 4];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = SpacePartition::new();
        for i in 0..8 {
            p.on_ready(&v, Pid(i), ReadyReason::New);
        }
        // cpus 0-1 serve app0, cpus 2-3 serve app1.
        assert_eq!(v.app(p.pick(&v, CpuId(0)).unwrap()), AppId(0));
        assert_eq!(v.app(p.pick(&v, CpuId(1)).unwrap()), AppId(0));
        assert_eq!(v.app(p.pick(&v, CpuId(2)).unwrap()), AppId(1));
        assert_eq!(v.app(p.pick(&v, CpuId(3)).unwrap()), AppId(1));
    }

    #[test]
    fn idle_partition_does_not_steal() {
        let procs = table(2, 1);
        let running: [Option<Pid>; 4] = [None; 4];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = SpacePartition::new();
        p.on_ready(&v, Pid(0), ReadyReason::New); // app0
        p.on_ready(&v, Pid(1), ReadyReason::New); // app1
                                                  // cpu0/1 belong to app0; after app0's only process is taken, cpu1
                                                  // idles rather than poaching app1's process (isolation property).
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(0)));
        assert_eq!(p.pick(&v, CpuId(1)), None);
        assert_eq!(p.pick(&v, CpuId(2)), Some(Pid(1)));
    }

    #[test]
    fn more_apps_than_cpus_still_served() {
        let procs = table(3, 1);
        let running: [Option<Pid>; 2] = [None; 2];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = SpacePartition::new();
        for i in 0..3 {
            p.on_ready(&v, Pid(i), ReadyReason::New);
        }
        // Three apps, two cpus: everyone eventually gets picked.
        let mut got = Vec::new();
        for _ in 0..3 {
            for cpu in [CpuId(0), CpuId(1)] {
                if let Some(pid) = p.pick(&v, cpu) {
                    got.push(pid);
                }
            }
        }
        got.sort();
        assert_eq!(got, vec![Pid(0), Pid(1), Pid(2)]);
    }
}
