//! Process-group scheduling, after Edler et al. (NYU Ultracomputer).
//!
//! Processes form groups (here: one group per application) with a
//! per-group scheduling mode:
//!
//! - [`GroupMode::Normal`] — members are scheduled and preempted normally;
//! - [`GroupMode::Gang`] — members are scheduled and preempted together,
//!   as in coscheduling;
//! - [`GroupMode::NoPreempt`] — members are never (well, boundedly never)
//!   preempted.
//!
//! Additionally, as in the Ultracomputer proposal, any individual process
//! holding a spinlock avoids preemption regardless of its group mode —
//! that is the "individual process can prevent its own preemption" facility
//! used to implement spinlock flags.

use std::collections::{HashMap, VecDeque};

use desim::{SimDur, SimTime};
use machine::CpuId;

use crate::ids::{AppId, Pid};
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

/// Scheduling mode of a process group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GroupMode {
    /// Ordinary time-slicing.
    #[default]
    Normal,
    /// Schedule and preempt all members together.
    Gang,
    /// Never preempt members at quantum expiry.
    NoPreempt,
}

/// Edler-style group scheduling, one group per application.
#[derive(Debug)]
pub struct GroupPolicy {
    modes: HashMap<AppId, GroupMode>,
    default_mode: GroupMode,
    /// Rotation order of gang-mode applications.
    gang_apps: Vec<AppId>,
    gang_queues: HashMap<AppId, VecDeque<Pid>>,
    normal_queue: VecDeque<Pid>,
    slice: SimDur,
    queued: usize,
}

impl GroupPolicy {
    /// Creates the policy. `slice` is the gang rotation slice; `modes` maps
    /// applications to group modes; unlisted applications get
    /// `default_mode`.
    pub fn new(slice: SimDur, modes: HashMap<AppId, GroupMode>, default_mode: GroupMode) -> Self {
        assert!(!slice.is_zero(), "slice must be positive");
        GroupPolicy {
            modes,
            default_mode,
            gang_apps: Vec::new(),
            gang_queues: HashMap::new(),
            normal_queue: VecDeque::new(),
            slice,
            queued: 0,
        }
    }

    fn mode_of(&self, app: AppId) -> GroupMode {
        self.modes.get(&app).copied().unwrap_or(self.default_mode)
    }

    fn gang_index(&self, now: SimTime) -> usize {
        if self.gang_apps.is_empty() {
            return 0;
        }
        ((now.nanos() / self.slice.nanos()) % self.gang_apps.len() as u64) as usize
    }
}

impl SchedPolicy for GroupPolicy {
    fn name(&self) -> &'static str {
        "edler-groups"
    }

    fn on_ready(&mut self, view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        let app = view.app(pid);
        match self.mode_of(app) {
            GroupMode::Gang => {
                if !self.gang_apps.contains(&app) {
                    self.gang_apps.push(app);
                }
                self.gang_queues.entry(app).or_default().push_back(pid);
            }
            GroupMode::Normal | GroupMode::NoPreempt => {
                debug_assert!(!self.normal_queue.contains(&pid));
                self.normal_queue.push_back(pid);
            }
        }
        self.queued += 1;
    }

    fn on_remove(&mut self, view: &PolicyView<'_>, pid: Pid) {
        let app = view.app(pid);
        let before = self.normal_queue.len()
            + self
                .gang_queues
                .get(&app)
                .map_or(0, std::collections::VecDeque::len);
        self.normal_queue.retain(|&p| p != pid);
        if let Some(q) = self.gang_queues.get_mut(&app) {
            q.retain(|&p| p != pid);
        }
        let after = self.normal_queue.len()
            + self
                .gang_queues
                .get(&app)
                .map_or(0, std::collections::VecDeque::len);
        self.queued -= before - after;
    }

    fn pick(&mut self, view: &PolicyView<'_>, _cpu: CpuId) -> Option<Pid> {
        // The gang whose slice this is has first claim; other gangs fill
        // fragments after normal processes.
        if !self.gang_apps.is_empty() {
            let cur = self.gang_apps[self.gang_index(view.now)];
            if let Some(pid) = self.gang_queues.get_mut(&cur).and_then(VecDeque::pop_front) {
                self.queued -= 1;
                return Some(pid);
            }
        }
        if let Some(pid) = self.normal_queue.pop_front() {
            self.queued -= 1;
            return Some(pid);
        }
        let start = self.gang_index(view.now);
        let n = self.gang_apps.len();
        for i in 1..n {
            let app = self.gang_apps[(start + i) % n];
            if let Some(pid) = self.gang_queues.get_mut(&app).and_then(VecDeque::pop_front) {
                self.queued -= 1;
                return Some(pid);
            }
        }
        None
    }

    fn quantum(&mut self, view: &PolicyView<'_>, _cpu: CpuId, pid: Pid, default: SimDur) -> SimDur {
        if self.mode_of(view.app(pid)) == GroupMode::Gang && !self.gang_apps.is_empty() {
            let s = self.slice.nanos();
            SimDur(s - view.now.nanos() % s)
        } else {
            default
        }
    }

    fn allow_preempt(&mut self, view: &PolicyView<'_>, pid: Pid) -> bool {
        // Group mode, plus the individual spinlock-flag facility.
        self.mode_of(view.app(pid)) != GroupMode::NoPreempt && !view.holds_lock(pid)
    }

    fn queue_len(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcb::ProcTable;
    use crate::Script;

    fn table() -> ProcTable {
        let mut t = ProcTable::new();
        // app0: pids 0,1 (gang); app1: pids 2,3 (normal).
        for a in 0..2u32 {
            for _ in 0..2 {
                t.insert(None, AppId(a), 1, Box::new(Script::new(vec![])));
            }
        }
        t
    }

    fn policy() -> GroupPolicy {
        let mut modes = HashMap::new();
        modes.insert(AppId(0), GroupMode::Gang);
        GroupPolicy::new(SimDur::from_millis(100), modes, GroupMode::Normal)
    }

    #[test]
    fn gang_has_first_claim_in_its_slice() {
        let procs = table();
        let running: [Option<Pid>; 4] = [None; 4];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = policy();
        for i in 0..4 {
            p.on_ready(&v, Pid(i), ReadyReason::New);
        }
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(0)));
        assert_eq!(p.pick(&v, CpuId(1)), Some(Pid(1)));
        // Gang drained: normal processes fill.
        assert_eq!(p.pick(&v, CpuId(2)), Some(Pid(2)));
        assert_eq!(p.pick(&v, CpuId(3)), Some(Pid(3)));
        assert_eq!(p.queue_len(), 0);
    }

    #[test]
    fn gang_quantum_ends_at_boundary() {
        let procs = table();
        let running: [Option<Pid>; 1] = [None];
        let now = SimTime::ZERO + SimDur::from_millis(40);
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now,
        };
        let mut p = policy();
        // Register the gang application so the rotation exists.
        p.on_ready(&v, Pid(0), ReadyReason::New);
        let q = p.quantum(&v, CpuId(0), Pid(0), SimDur::from_millis(100));
        assert_eq!(q, SimDur::from_millis(60));
        // Normal member keeps the default quantum.
        let q = p.quantum(&v, CpuId(0), Pid(2), SimDur::from_millis(100));
        assert_eq!(q, SimDur::from_millis(100));
    }
}
