//! The UMAX-like default policy: one global FIFO run queue, round-robin.

use std::collections::VecDeque;

use machine::CpuId;

use crate::ids::Pid;
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

/// Global-FIFO round-robin scheduling.
///
/// This is the baseline the paper's measurements ran on: "unscheduled
/// processes are placed on a FIFO queue, and the more unscheduled processes
/// there are, the longer it takes for a preempted process to get to the
/// front of the queue and be rescheduled" (Section 2).
#[derive(Debug, Default)]
pub struct FifoRoundRobin {
    queue: VecDeque<Pid>,
}

impl FifoRoundRobin {
    /// Creates the policy with an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedPolicy for FifoRoundRobin {
    fn name(&self) -> &'static str {
        "fifo-rr"
    }

    fn on_ready(&mut self, _view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        debug_assert!(!self.queue.contains(&pid), "{pid} enqueued twice");
        self.queue.push_back(pid);
    }

    fn on_remove(&mut self, _view: &PolicyView<'_>, pid: Pid) {
        self.queue.retain(|&p| p != pid);
    }

    fn pick(&mut self, _view: &PolicyView<'_>, _cpu: CpuId) -> Option<Pid> {
        self.queue.pop_front()
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcb::ProcTable;
    use desim::SimTime;

    fn view<'a>(procs: &'a ProcTable, running: &'a [Option<Pid>]) -> PolicyView<'a> {
        PolicyView {
            procs,
            running,
            now: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_order() {
        let procs = ProcTable::new();
        let running = [None];
        let v = view(&procs, &running);
        let mut p = FifoRoundRobin::new();
        p.on_ready(&v, Pid(1), ReadyReason::New);
        p.on_ready(&v, Pid(2), ReadyReason::New);
        p.on_ready(&v, Pid(3), ReadyReason::Preempted);
        assert_eq!(p.queue_len(), 3);
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(1)));
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(2)));
        p.on_remove(&v, Pid(3));
        assert_eq!(p.pick(&v, CpuId(0)), None);
    }
}
