//! Cache-affinity scheduling, after Squillante & Lazowska.
//!
//! A process should run on the processor whose cache still holds its
//! working set — i.e. the one it last ran on. Followed strictly this causes
//! load imbalance (processes cannot migrate from busy to idle processors),
//! so the practical variant lets a process migrate after it has waited in
//! the queue longer than a threshold. `migrate_after = 0` degenerates to
//! plain FIFO; a very large value approximates strict affinity.

use desim::{SimDur, SimTime};
use machine::CpuId;

use crate::ids::Pid;
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

/// Affinity scheduling with a migration threshold.
#[derive(Debug)]
pub struct Affinity {
    /// Queue entries with the time they became ready.
    queue: Vec<(Pid, SimTime)>,
    /// How long a process may wait before it is allowed to run on a
    /// non-affine processor.
    migrate_after: SimDur,
}

impl Affinity {
    /// Creates the policy with the given migration threshold.
    pub fn new(migrate_after: SimDur) -> Self {
        Affinity {
            queue: Vec::new(),
            migrate_after,
        }
    }
}

impl SchedPolicy for Affinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn on_ready(&mut self, view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        debug_assert!(!self.queue.iter().any(|&(p, _)| p == pid));
        self.queue.push((pid, view.now));
    }

    fn on_remove(&mut self, _view: &PolicyView<'_>, pid: Pid) {
        self.queue.retain(|&(p, _)| p != pid);
    }

    fn pick(&mut self, view: &PolicyView<'_>, cpu: CpuId) -> Option<Pid> {
        // First choice: oldest queued process affine to this processor.
        if let Some(idx) = self
            .queue
            .iter()
            .position(|&(p, _)| view.last_cpu(p) == Some(cpu))
        {
            return Some(self.queue.remove(idx).0);
        }
        // Second choice: a process that never ran (no affinity yet).
        if let Some(idx) = self
            .queue
            .iter()
            .position(|&(p, _)| view.last_cpu(p).is_none())
        {
            return Some(self.queue.remove(idx).0);
        }
        // Last resort: migrate the process that has waited past the
        // threshold (oldest first).
        if let Some(idx) = self
            .queue
            .iter()
            .position(|&(_, since)| view.now.saturating_since(since) >= self.migrate_after)
        {
            return Some(self.queue.remove(idx).0);
        }
        None
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AppId;
    use crate::pcb::ProcTable;
    use crate::Script;

    fn table(n: u32) -> ProcTable {
        let mut t = ProcTable::new();
        for _ in 0..n {
            t.insert(None, AppId(0), 1, Box::new(Script::new(vec![])));
        }
        t
    }

    #[test]
    fn prefers_affine_process() {
        let mut procs = table(2);
        procs.get_mut(Pid(0)).last_cpu = Some(CpuId(1));
        procs.get_mut(Pid(1)).last_cpu = Some(CpuId(0));
        let running: [Option<Pid>; 2] = [None; 2];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = Affinity::new(SimDur::from_millis(50));
        p.on_ready(&v, Pid(0), ReadyReason::Preempted);
        p.on_ready(&v, Pid(1), ReadyReason::Preempted);
        // Despite FIFO order, cpu0 takes pid1 (its last tenant).
        assert_eq!(p.pick(&v, CpuId(0)), Some(Pid(1)));
        assert_eq!(p.pick(&v, CpuId(1)), Some(Pid(0)));
    }

    #[test]
    fn fresh_processes_run_anywhere() {
        let procs = table(1);
        let running: [Option<Pid>; 2] = [None; 2];
        let v = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO,
        };
        let mut p = Affinity::new(SimDur::from_millis(50));
        p.on_ready(&v, Pid(0), ReadyReason::New);
        assert_eq!(p.pick(&v, CpuId(1)), Some(Pid(0)));
    }

    #[test]
    fn migration_waits_for_threshold() {
        let mut procs = table(1);
        procs.get_mut(Pid(0)).last_cpu = Some(CpuId(1));
        let running: [Option<Pid>; 2] = [None; 2];
        // Became ready at t=0; at t=10ms cpu0 may not steal it...
        let v0 = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO + SimDur::from_millis(10),
        };
        let mut p = Affinity::new(SimDur::from_millis(50));
        p.on_ready(
            &PolicyView {
                procs: &procs,
                running: &running,
                now: SimTime::ZERO,
            },
            Pid(0),
            ReadyReason::Preempted,
        );
        assert_eq!(p.pick(&v0, CpuId(0)), None);
        // ...but at t=60ms it may.
        let v1 = PolicyView {
            procs: &procs,
            running: &running,
            now: SimTime::ZERO + SimDur::from_millis(60),
        };
        assert_eq!(p.pick(&v1, CpuId(0)), Some(Pid(0)));
    }
}
