//! Spinlock-flag preemption avoidance, after Zahorjan et al.
//!
//! A process sets a flag while inside a spinlock-controlled critical
//! section; the scheduler will not preempt a flagged process. The paper
//! criticizes this approach (Section 3): it lets user code steer the kernel
//! scheduler, and it needlessly protects processes holding *independent*
//! locks (e.g. per-bucket hash-table locks). We reproduce it faithfully —
//! including that weakness: the flag here is simply "holds at least one
//! lock".
//!
//! The kernel bounds how long a preemption can be deferred
//! (`KernelConfig::max_preempt_defer`) so a buggy process cannot
//! monopolize a processor forever.

use std::collections::VecDeque;

use machine::CpuId;

use crate::ids::Pid;
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};

/// FIFO round-robin plus don't-preempt-lock-holders.
#[derive(Debug, Default)]
pub struct SpinlockFlag {
    queue: VecDeque<Pid>,
}

impl SpinlockFlag {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedPolicy for SpinlockFlag {
    fn name(&self) -> &'static str {
        "spinlock-flag"
    }

    fn on_ready(&mut self, _view: &PolicyView<'_>, pid: Pid, _reason: ReadyReason) {
        debug_assert!(!self.queue.contains(&pid), "{pid} enqueued twice");
        self.queue.push_back(pid);
    }

    fn on_remove(&mut self, _view: &PolicyView<'_>, pid: Pid) {
        self.queue.retain(|&p| p != pid);
    }

    fn pick(&mut self, _view: &PolicyView<'_>, _cpu: CpuId) -> Option<Pid> {
        self.queue.pop_front()
    }

    fn allow_preempt(&mut self, view: &PolicyView<'_>, pid: Pid) -> bool {
        !view.holds_lock(pid)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }
}
