//! Kernel configuration.

use desim::SimDur;
use machine::MachineConfig;

/// Service-time table for kernel operations.
///
/// Every [`crate::Action`] occupies a processor for its service time before
/// its effect is applied; these are the defaults, loosely calibrated to a
/// late-1980s Unix (tens of microseconds per system call).
#[derive(Clone, Copy, Debug)]
pub struct SyscallCosts {
    /// Uncontended spinlock acquire (test-and-set plus fences).
    pub lock_acquire: SimDur,
    /// Spinlock release.
    pub lock_release: SimDur,
    /// Posting a message to a mailbox.
    pub ipc_send: SimDur,
    /// Receiving (or polling) a mailbox.
    pub ipc_recv: SimDur,
    /// Sending a signal.
    pub signal: SimDur,
    /// Entering the signal-wait (suspension) state.
    pub sigwait: SimDur,
    /// Creating a process.
    pub spawn: SimDur,
    /// Voluntary yield.
    pub yield_: SimDur,
}

impl Default for SyscallCosts {
    fn default() -> Self {
        SyscallCosts {
            lock_acquire: SimDur::from_micros(2),
            lock_release: SimDur::from_micros(1),
            ipc_send: SimDur::from_micros(50),
            ipc_recv: SimDur::from_micros(50),
            signal: SimDur::from_micros(30),
            sigwait: SimDur::from_micros(30),
            spawn: SimDur::from_millis(2),
            yield_: SimDur::from_micros(20),
        }
    }
}

/// Full configuration of the simulated kernel.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// The machine the kernel runs on.
    pub machine: MachineConfig,
    /// Scheduling quantum. UMAX-like systems used on the order of 100 ms.
    pub quantum: SimDur,
    /// Service times for kernel operations.
    pub costs: SyscallCosts,
    /// Period of the housekeeping tick delivered to the scheduling policy
    /// (priority recomputation, gang rotation bookkeeping).
    pub tick: SimDur,
    /// Whether to retain a structured trace of scheduling events.
    pub trace: bool,
    /// Cap on how long a no-preempt hint (spinlock-flag policies) may defer
    /// a quantum-expiry preemption, as a multiple of the quantum.
    pub max_preempt_defer: u32,
}

impl KernelConfig {
    /// UMAX-on-Multimax-like defaults: 16 processors, 100 ms quantum.
    pub fn multimax() -> Self {
        KernelConfig {
            machine: MachineConfig::multimax16(),
            quantum: SimDur::from_millis(100),
            costs: SyscallCosts::default(),
            tick: SimDur::from_millis(100),
            trace: true,
            max_preempt_defer: 10,
        }
    }

    /// Same kernel on the high-miss-penalty "scalable" machine.
    pub fn scalable() -> Self {
        KernelConfig {
            machine: MachineConfig::scalable16(),
            ..KernelConfig::multimax()
        }
    }

    /// Overrides the processor count.
    pub fn with_cpus(mut self, n: usize) -> Self {
        self.machine = self.machine.with_cpus(n);
        self
    }

    /// Overrides the quantum.
    pub fn with_quantum(mut self, q: SimDur) -> Self {
        assert!(!q.is_zero(), "quantum must be positive");
        self.quantum = q;
        self
    }

    /// Disables tracing (for benchmark runs).
    pub fn without_trace(mut self) -> Self {
        self.trace = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = KernelConfig::multimax();
        assert_eq!(c.machine.num_cpus, 16);
        assert_eq!(c.quantum, SimDur::from_millis(100));
        assert!(c.costs.spawn > c.costs.signal);
    }

    #[test]
    fn builders_compose() {
        let c = KernelConfig::multimax()
            .with_cpus(4)
            .with_quantum(SimDur::from_millis(50))
            .without_trace();
        assert_eq!(c.machine.num_cpus, 4);
        assert_eq!(c.quantum, SimDur::from_millis(50));
        assert!(!c.trace);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_rejected() {
        KernelConfig::multimax().with_quantum(SimDur::ZERO);
    }
}
