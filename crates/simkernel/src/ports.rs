//! IPC mailboxes — the simulation's analog of UMAX sockets.
//!
//! The paper's central server communicates with applications through
//! sockets; we model that with kernel mailboxes: FIFO message queues with a
//! single blocked-receiver slot per port. Send never blocks.

use std::collections::VecDeque;

use crate::action::Message;
use crate::ids::{Pid, PortId};

#[derive(Debug, Default)]
pub(crate) struct Port {
    pub queue: VecDeque<Message>,
    /// A process blocked in `Recv` on this port, if any. At most one
    /// receiver may block per port (ports are point-to-point like the
    /// paper's server socket plus per-application reply sockets).
    pub waiting: Option<Pid>,
}

#[derive(Debug, Default)]
pub(crate) struct PortTable {
    ports: Vec<Port>,
}

impl PortTable {
    pub(crate) fn create(&mut self) -> PortId {
        self.ports.push(Port::default());
        PortId((self.ports.len() - 1) as u32)
    }

    pub(crate) fn get_mut(&mut self, id: PortId) -> &mut Port {
        &mut self.ports[id.0 as usize]
    }

    /// Posts a message; returns the pid of a blocked receiver to wake, if
    /// one was waiting (the message stays queued for it to take).
    pub(crate) fn post(&mut self, id: PortId, msg: Message) -> Option<Pid> {
        let port = self.get_mut(id);
        port.queue.push_back(msg);
        port.waiting.take()
    }

    /// Takes the oldest message, if any.
    pub(crate) fn take(&mut self, id: PortId) -> Option<Message> {
        self.get_mut(id).queue.pop_front()
    }

    /// Records `pid` as blocked waiting on the port.
    ///
    /// # Panics
    ///
    /// Panics if another process is already blocked on the port.
    pub(crate) fn block(&mut self, id: PortId, pid: Pid) {
        let port = self.get_mut(id);
        assert!(
            port.waiting.is_none(),
            "two processes blocked on {id}: {} and {pid}",
            port.waiting.unwrap(),
        );
        port.waiting = Some(pid);
    }

    /// Clears the blocked receiver (e.g. on exit).
    pub(crate) fn unblock(&mut self, id: PortId, pid: Pid) {
        let port = self.get_mut(id);
        if port.waiting == Some(pid) {
            port.waiting = None;
        }
    }

    /// Queue depth, for instrumentation.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn depth(&self, id: PortId) -> usize {
        self.ports[id.0 as usize].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: u32, word: u64) -> Message {
        Message {
            from: Pid(from),
            body: vec![word],
        }
    }

    #[test]
    fn fifo_delivery() {
        let mut t = PortTable::default();
        let p = t.create();
        assert_eq!(t.post(p, msg(1, 10)), None);
        assert_eq!(t.post(p, msg(1, 20)), None);
        assert_eq!(t.take(p).unwrap().body, vec![10]);
        assert_eq!(t.take(p).unwrap().body, vec![20]);
        assert!(t.take(p).is_none());
    }

    #[test]
    fn post_wakes_blocked_receiver() {
        let mut t = PortTable::default();
        let p = t.create();
        t.block(p, Pid(7));
        assert_eq!(t.post(p, msg(1, 10)), Some(Pid(7)));
        // The message is still queued for the woken receiver.
        assert_eq!(t.depth(p), 1);
        // The waiting slot is cleared.
        assert_eq!(t.post(p, msg(1, 20)), None);
    }

    #[test]
    fn unblock_clears_only_matching() {
        let mut t = PortTable::default();
        let p = t.create();
        t.block(p, Pid(7));
        t.unblock(p, Pid(8)); // no-op
        assert_eq!(t.post(p, msg(1, 1)), Some(Pid(7)));
    }

    #[test]
    #[should_panic(expected = "two processes blocked")]
    fn double_block_panics() {
        let mut t = PortTable::default();
        let p = t.create();
        t.block(p, Pid(1));
        t.block(p, Pid(2));
    }
}
