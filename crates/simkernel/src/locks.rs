//! User-level spinlock table.
//!
//! A spinlock is held by at most one process. Contenders *spin*: they occupy
//! their processor, remain runnable, and make no progress — which is exactly
//! what makes preemption of a lock holder expensive (the paper's degradation
//! mechanism #1). Grant order among spinners is FIFO by spin start, but only
//! a currently *running* spinner can observe a release; spinners that were
//! preempted re-test the lock when they are next dispatched.

use std::collections::VecDeque;

use desim::SimTime;

use crate::ids::{LockId, Pid};

#[derive(Debug, Default)]
pub(crate) struct Lock {
    pub holder: Option<Pid>,
    /// Spinning processes, in spin-start order (running or preempted).
    pub spinners: VecDeque<Pid>,
    /// Contention statistics.
    pub acquisitions: u64,
    pub contended_acquisitions: u64,
    pub held_since: Option<SimTime>,
}

/// Aggregate statistics for one lock, exposed for instrumentation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Total successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to spin first.
    pub contended: u64,
}

#[derive(Debug, Default)]
pub(crate) struct LockTable {
    locks: Vec<Lock>,
}

impl LockTable {
    pub(crate) fn create(&mut self) -> LockId {
        self.locks.push(Lock::default());
        LockId((self.locks.len() - 1) as u32)
    }

    pub(crate) fn get(&self, id: LockId) -> &Lock {
        &self.locks[id.0 as usize]
    }

    pub(crate) fn get_mut(&mut self, id: LockId) -> &mut Lock {
        &mut self.locks[id.0 as usize]
    }

    /// Attempts to take the lock for `pid`. Returns true on success.
    pub(crate) fn try_acquire(&mut self, id: LockId, pid: Pid, now: SimTime) -> bool {
        let lock = self.get_mut(id);
        debug_assert_ne!(lock.holder, Some(pid), "recursive spinlock acquire");
        if lock.holder.is_none() {
            lock.holder = Some(pid);
            lock.acquisitions += 1;
            lock.held_since = Some(now);
            true
        } else {
            false
        }
    }

    /// Adds `pid` to the spinner queue (it failed `try_acquire`).
    pub(crate) fn enqueue_spinner(&mut self, id: LockId, pid: Pid) {
        let lock = self.get_mut(id);
        debug_assert!(!lock.spinners.contains(&pid), "double-spin on {id}");
        lock.spinners.push_back(pid);
    }

    /// Removes `pid` from the spinner queue (granted, or exited abnormally).
    pub(crate) fn remove_spinner(&mut self, id: LockId, pid: Pid) {
        let lock = self.get_mut(id);
        lock.spinners.retain(|&p| p != pid);
    }

    /// Releases the lock held by `pid`. The caller decides which spinner (if
    /// any) to grant to next via [`LockTable::grant_to`]. Returns the spin
    /// queue snapshot in FIFO order.
    pub(crate) fn release(&mut self, id: LockId, pid: Pid) -> Vec<Pid> {
        let lock = self.get_mut(id);
        assert_eq!(lock.holder, Some(pid), "release of a lock not held");
        lock.holder = None;
        lock.held_since = None;
        lock.spinners.iter().copied().collect()
    }

    /// Grants the (free) lock to a previously spinning process.
    pub(crate) fn grant_to(&mut self, id: LockId, pid: Pid, now: SimTime) {
        let lock = self.get_mut(id);
        assert!(lock.holder.is_none(), "grant of a held lock");
        lock.spinners.retain(|&p| p != pid);
        lock.holder = Some(pid);
        lock.acquisitions += 1;
        lock.contended_acquisitions += 1;
        lock.held_since = Some(now);
    }

    /// Statistics for one lock.
    pub(crate) fn stats(&self, id: LockId) -> LockStats {
        let lock = self.get(id);
        LockStats {
            acquisitions: lock.acquisitions,
            contended: lock.contended_acquisitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_acquire_release() {
        let mut t = LockTable::default();
        let l = t.create();
        assert!(t.try_acquire(l, Pid(1), SimTime::ZERO));
        assert!(!t.try_acquire(l, Pid(2), SimTime::ZERO));
        let spinners = t.release(l, Pid(1));
        assert!(spinners.is_empty());
        assert!(t.try_acquire(l, Pid(2), SimTime::ZERO));
        assert_eq!(t.stats(l).acquisitions, 2);
        assert_eq!(t.stats(l).contended, 0);
    }

    #[test]
    fn spinners_queue_fifo() {
        let mut t = LockTable::default();
        let l = t.create();
        assert!(t.try_acquire(l, Pid(1), SimTime::ZERO));
        t.enqueue_spinner(l, Pid(2));
        t.enqueue_spinner(l, Pid(3));
        let spinners = t.release(l, Pid(1));
        assert_eq!(spinners, vec![Pid(2), Pid(3)]);
        t.grant_to(l, Pid(2), SimTime::ZERO);
        assert_eq!(t.get(l).holder, Some(Pid(2)));
        assert_eq!(t.get(l).spinners.len(), 1);
        assert_eq!(t.stats(l).contended, 1);
    }

    #[test]
    fn remove_spinner_handles_absent() {
        let mut t = LockTable::default();
        let l = t.create();
        t.enqueue_spinner(l, Pid(5));
        t.remove_spinner(l, Pid(6)); // not present: no-op
        t.remove_spinner(l, Pid(5));
        assert!(t.get(l).spinners.is_empty());
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn release_unheld_panics() {
        let mut t = LockTable::default();
        let l = t.create();
        t.release(l, Pid(1));
    }
}
