//! The simulated kernel: dispatch, preemption, synchronization, IPC.
//!
//! The kernel advances a [`desim::Calendar`] of four event kinds — quantum
//! expiries, operation completions, sleep timers, and housekeeping ticks —
//! and in between keeps every processor maximally busy by consulting the
//! configured [`SchedPolicy`]. Execution time is charged through the
//! machine model: a dispatch that switches processes pays the context
//! switch cost, and the cache model converts the first part of each
//! occupancy into refill (non-work) time when the process's footprint was
//! evicted. Spinning on a held lock consumes processor time without
//! progress — the pathology at the heart of the paper.

use std::collections::{BTreeMap, HashMap};

use desim::{Calendar, SimDur, SimTime, Tracer};
use machine::{CacheSim, CpuId};

use crate::action::{Action, Behavior, Message, ProcStat, UserCtx, Wakeup};
use crate::config::KernelConfig;
use crate::ids::{AppId, LockId, Pid, PortId};
use crate::ledger::{CycleLedger, Cycles};
use crate::locks::{LockStats, LockTable};
use crate::pcb::{Op, ProcAccounting, ProcState, ProcTable, Then};
use crate::policy::{PolicyView, ReadyReason, SchedPolicy};
use crate::ports::PortTable;

/// Structured trace record emitted by the kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KTrace {
    /// A process was placed on a processor.
    Dispatch {
        /// Processor.
        cpu: CpuId,
        /// Process.
        pid: Pid,
        /// Whether the dispatch paid the context-switch cost.
        switched: bool,
    },
    /// A process was involuntarily preempted at quantum expiry.
    Preempt {
        /// Processor.
        cpu: CpuId,
        /// Process.
        pid: Pid,
    },
    /// The number of runnable processes changed.
    Runnable {
        /// Application whose process changed state.
        app: AppId,
        /// Runnable processes of that application, after the change.
        app_count: u32,
        /// Runnable processes in the whole system, after the change.
        total: u32,
    },
    /// A process was created.
    Spawn {
        /// New process.
        pid: Pid,
        /// Its application.
        app: AppId,
    },
    /// A process exited.
    Exit {
        /// The process.
        pid: Pid,
        /// Its application.
        app: AppId,
    },
    /// The last process of an application exited.
    AppDone {
        /// The application.
        app: AppId,
    },
    /// A process started spinning on a held lock.
    SpinStart {
        /// The spinner.
        pid: Pid,
        /// The contended lock.
        lock: LockId,
        /// The current holder.
        holder: Pid,
    },
    /// A process was preempted while busy-waiting on a lock — the cycles it
    /// burned spinning are pure waste, and if it was next in line the lock's
    /// hand-off is now delayed by a whole scheduling round-trip. This is the
    /// pathological interaction at the heart of the paper.
    PreemptWhileSpinning {
        /// Processor.
        cpu: CpuId,
        /// The preempted spinner.
        pid: Pid,
        /// The lock it was spinning on.
        lock: LockId,
        /// The holder it was waiting for, if the lock is still held.
        holder: Option<Pid>,
    },
    /// A contended lock was handed to a spinner.
    LockHandoff {
        /// The lock.
        lock: LockId,
        /// The releasing holder (`None` when the lock was released while
        /// the winner was preempted and re-tested at its next dispatch).
        from: Option<Pid>,
        /// The spinner that received the lock.
        to: Pid,
        /// How long the winner waited from its first spin to the grant —
        /// the hand-off latency, inflated by any preemption in between.
        waited: SimDur,
    },
}

#[derive(Clone, Copy, Debug)]
enum KEvent {
    QuantumExpire { cpu: usize, epoch: u64 },
    OpComplete { pid: Pid, epoch: u64 },
    SleepDone { pid: Pid, epoch: u64 },
    Tick,
}

pub(crate) struct Cpu {
    running: Option<Pid>,
    /// Last process dispatched here (context-switch cost bookkeeping).
    last_pid: Option<Pid>,
    /// Incremented on every dispatch/idle transition; stale quantum events
    /// carry an old epoch and are ignored.
    epoch: u64,
    /// When the current occupant began executing (after switch cost).
    seg_start: SimTime,
    /// Number of times the pending quantum expiry has been deferred by a
    /// no-preempt policy hint.
    defer_count: u32,
    /// Cumulative busy time (execution + switch cost).
    busy: SimDur,
}

impl Cpu {
    fn new() -> Self {
        Cpu {
            running: None,
            last_pid: None,
            epoch: 0,
            seg_start: SimTime::ZERO,
            defer_count: 0,
            busy: SimDur::ZERO,
        }
    }
}

/// Aggregate per-application accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct AppStats {
    /// Sum of process useful work.
    pub work: SimDur,
    /// Sum of process spin time.
    pub spin: SimDur,
    /// Sum of cache-refill time.
    pub refill: SimDur,
    /// Total dispatches.
    pub dispatches: u64,
    /// Dispatches that paid a context switch.
    pub switches: u64,
    /// Involuntary preemptions.
    pub preemptions: u64,
    /// Sum of context-switch time charged to the application's processes.
    pub switch_time: SimDur,
    /// Sum of wall-clock time the application's processes spent suspended.
    pub suspended: SimDur,
}

struct KState {
    now: SimTime,
    cal: Calendar<KEvent>,
    procs: ProcTable,
    locks: LockTable,
    ports: PortTable,
    cache: CacheSim,
    cpus: Vec<Cpu>,
    /// `running[i]` mirrors `cpus[i].running` for cheap policy views.
    running: Vec<Option<Pid>>,
    runnable_total: u32,
    app_runnable: HashMap<AppId, u32>,
    app_live: HashMap<AppId, u32>,
    app_start: HashMap<AppId, SimTime>,
    app_done: HashMap<AppId, SimTime>,
    live_procs: u32,
    tracer: Tracer<KTrace>,
    tick_armed: bool,
}

/// The simulated kernel.
pub struct Kernel {
    cfg: KernelConfig,
    policy: Box<dyn SchedPolicy>,
    st: KState,
}

struct CtxView<'a> {
    st: &'a KState,
    pid: Pid,
    num_cpus: usize,
}

impl UserCtx for CtxView<'_> {
    fn now(&self) -> SimTime {
        self.st.now
    }

    fn my_pid(&self) -> Pid {
        self.pid
    }

    fn rpstat(&self) -> Vec<ProcStat> {
        self.st
            .procs
            .iter()
            .filter(|p| p.state != ProcState::Exited)
            .map(|p| ProcStat {
                pid: p.pid,
                parent: p.parent,
                app: p.app,
                runnable: p.state.is_runnable(),
            })
            .collect()
    }

    fn num_cpus(&self) -> usize {
        self.num_cpus
    }
}

impl Kernel {
    /// Creates a kernel with the given configuration and scheduling policy.
    pub fn new(cfg: KernelConfig, policy: Box<dyn SchedPolicy>) -> Self {
        let ncpus = cfg.machine.num_cpus;
        let mut st = KState {
            now: SimTime::ZERO,
            cal: Calendar::new(),
            procs: ProcTable::new(),
            locks: LockTable::default(),
            ports: PortTable::default(),
            cache: CacheSim::new(cfg.machine.cache, ncpus),
            cpus: (0..ncpus).map(|_| Cpu::new()).collect(),
            running: vec![None; ncpus],
            runnable_total: 0,
            app_runnable: HashMap::new(),
            app_live: HashMap::new(),
            app_start: HashMap::new(),
            app_done: HashMap::new(),
            live_procs: 0,
            tracer: Tracer::new(cfg.trace),
            tick_armed: false,
        };
        st.cal.schedule(st.now + cfg.tick, KEvent::Tick);
        st.tick_armed = true;
        Kernel { cfg, policy, st }
    }

    // ------------------------------------------------------------------
    // Public API: setup.
    // ------------------------------------------------------------------

    /// Creates a user-level spinlock.
    pub fn create_lock(&mut self) -> LockId {
        self.st.locks.create()
    }

    /// Creates an IPC mailbox.
    pub fn create_port(&mut self) -> PortId {
        self.st.ports.create()
    }

    /// Spawns a root process for application `app`. The process becomes
    /// runnable immediately; its behavior is first stepped with
    /// [`Wakeup::Start`].
    pub fn spawn_root(&mut self, app: AppId, ws_lines: u64, behavior: Box<dyn Behavior>) -> Pid {
        let pid = self.st.procs.insert(None, app, ws_lines, behavior);
        self.finish_spawn(pid, app);
        pid
    }

    fn finish_spawn(&mut self, pid: Pid, app: AppId) {
        self.st.app_start.entry(app).or_insert(self.st.now);
        *self.st.app_live.entry(app).or_insert(0) += 1;
        self.st.live_procs += 1;
        let now = self.st.now;
        self.st.tracer.emit(now, KTrace::Spawn { pid, app });
        self.note_runnable_change(app, 1);
        self.st.procs.get_mut(pid).ready_since = Some(now);
        self.policy_ready(pid, ReadyReason::New);
        self.deliver(pid, Wakeup::Start);
        if !self.st.tick_armed {
            let t = self.st.now + self.cfg.tick;
            self.st.cal.schedule(t, KEvent::Tick);
            self.st.tick_armed = true;
        }
        // A processor may be idle and able to take the new process right
        // away; do not wait for the next event to notice.
        self.reschedule();
    }

    // ------------------------------------------------------------------
    // Public API: running the simulation.
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.st.now
    }

    /// Number of processors.
    pub fn num_cpus(&self) -> usize {
        self.st.cpus.len()
    }

    /// Processes one event. Returns false when the calendar is exhausted.
    pub fn step(&mut self) -> bool {
        let Some((t, ev)) = self.st.cal.pop() else {
            return false;
        };
        debug_assert!(t >= self.st.now, "event from the past");
        self.st.now = t;
        self.handle(ev);
        self.reschedule();
        true
    }

    /// Runs until every process has exited or simulated time exceeds
    /// `limit`. Returns true if all work completed within the limit.
    pub fn run_to_completion(&mut self, limit: SimTime) -> bool {
        while self.st.live_procs > 0 {
            if self.st.now > limit || !self.step() {
                return self.st.live_procs == 0;
            }
        }
        true
    }

    /// Whether every listed application has finished (all processes
    /// exited).
    pub fn apps_done(&self, apps: &[AppId]) -> bool {
        apps.iter().all(|a| self.st.app_done.contains_key(a))
    }

    /// Runs until every listed application has finished or simulated time
    /// exceeds `limit`. Unlike [`Kernel::run_to_completion`] this tolerates
    /// immortal daemons (such as the process-control server). Returns true
    /// if the applications all finished within the limit.
    pub fn run_until_apps_done(&mut self, apps: &[AppId], limit: SimTime) -> bool {
        while !self.apps_done(apps) {
            if self.st.now > limit || !self.step() {
                return self.apps_done(apps);
            }
        }
        true
    }

    /// Runs until simulated time reaches exactly `until`; if the calendar
    /// runs dry earlier, idle time passes and the clock still advances.
    pub fn run_until(&mut self, until: SimTime) {
        while self.st.now < until {
            match self.st.cal.peek_time() {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => {
                    self.st.now = until;
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Public API: queries.
    // ------------------------------------------------------------------

    /// Number of runnable (running + ready) processes in the system.
    pub fn runnable_count(&self) -> u32 {
        self.st.runnable_total
    }

    /// Number of runnable processes belonging to `app`.
    pub fn app_runnable(&self, app: AppId) -> u32 {
        self.st.app_runnable.get(&app).copied().unwrap_or(0)
    }

    /// Number of live (non-exited) processes.
    pub fn live_procs(&self) -> u32 {
        self.st.live_procs
    }

    /// Time the application's first process was spawned, if any.
    pub fn app_start_time(&self, app: AppId) -> Option<SimTime> {
        self.st.app_start.get(&app).copied()
    }

    /// Time the application's last process exited, if it has finished.
    pub fn app_done_time(&self, app: AppId) -> Option<SimTime> {
        self.st.app_done.get(&app).copied()
    }

    /// Cumulative accounting for one process.
    pub fn proc_accounting(&self, pid: Pid) -> ProcAccounting {
        self.st.procs.get(pid).acct
    }

    /// Aggregate accounting over all processes of an application.
    pub fn app_stats(&self, app: AppId) -> AppStats {
        let mut s = AppStats::default();
        for p in self.st.procs.iter().filter(|p| p.app == app) {
            s.work += p.acct.work;
            s.spin += p.acct.spin;
            s.refill += p.acct.refill;
            s.dispatches += p.acct.dispatches;
            s.switches += p.acct.switches;
            s.preemptions += p.acct.preemptions;
            s.switch_time += p.acct.switch_time;
            s.suspended += p.acct.suspended;
        }
        s
    }

    /// Snapshots the cycle-accounting ledger: every processor-cycle from
    /// time 0 to now attributed to work / spin / refill / switch / idle,
    /// per process and per application, plus per-process suspended
    /// wall-clock time. Flushes in-progress occupancy segments first (which
    /// is safe: segment accounting is idempotent and completion events use
    /// absolute times), so the returned ledger satisfies the conservation
    /// invariant exactly — see [`CycleLedger::conserved`].
    pub fn cycle_ledger(&mut self) -> CycleLedger {
        for i in 0..self.st.cpus.len() {
            self.account_segment(i);
        }
        let now = self.st.now;
        let elapsed = now.since(SimTime::ZERO);
        // A dispatch still inside its context-switch window has charged the
        // full switch cost to the processor and the incoming process even
        // though part of it lies in the future; subtract that overshoot so
        // the snapshot is exact at `now`.
        let mut idle = SimDur::ZERO;
        let mut overshoot: BTreeMap<Pid, SimDur> = BTreeMap::new();
        for cpu in &self.st.cpus {
            let mut used = cpu.busy;
            if let Some(pid) = cpu.running {
                if cpu.seg_start > now {
                    let over = cpu.seg_start.since(now);
                    used -= over;
                    *overshoot.entry(pid).or_insert(SimDur::ZERO) += over;
                }
            }
            idle += elapsed - used;
        }
        let mut per_proc = BTreeMap::new();
        let mut per_app: BTreeMap<AppId, Cycles> = BTreeMap::new();
        let mut total = Cycles::default();
        for p in self.st.procs.iter() {
            let mut c = Cycles {
                work: p.acct.work,
                spin: p.acct.spin,
                refill: p.acct.refill,
                switch: p.acct.switch_time,
                suspended: p.acct.suspended,
            };
            if let Some(&over) = overshoot.get(&p.pid) {
                c.switch -= over;
            }
            // A process suspended right now has an open suspension span.
            if p.state == ProcState::SigWait {
                if let Some(since) = p.suspend_since {
                    c.suspended += now.saturating_since(since);
                }
            }
            per_app.entry(p.app).or_default().add(&c);
            total.add(&c);
            per_proc.insert(p.pid, c);
        }
        CycleLedger {
            elapsed,
            num_cpus: self.st.cpus.len(),
            total,
            idle,
            per_proc,
            per_app,
        }
    }

    /// Statistics for a lock.
    pub fn lock_stats(&self, lock: LockId) -> LockStats {
        self.st.locks.stats(lock)
    }

    /// Cumulative busy time of a processor.
    pub fn cpu_busy(&self, cpu: CpuId) -> SimDur {
        self.st.cpus[cpu.0].busy
    }

    /// Busy fraction of a processor over the run so far, in `[0, 1]`.
    /// Note that "busy" includes spinning and cache refill — occupancy,
    /// not useful work.
    pub fn cpu_utilization(&self, cpu: CpuId) -> f64 {
        let now = self.st.now.nanos();
        if now == 0 {
            return 0.0;
        }
        // Exclude the in-progress segment (it is accounted at its end).
        (self.st.cpus[cpu.0].busy.nanos() as f64 / now as f64).min(1.0)
    }

    /// Machine-wide mean busy fraction.
    pub fn mean_utilization(&self) -> f64 {
        let n = self.st.cpus.len();
        (0..n).map(|i| self.cpu_utilization(CpuId(i))).sum::<f64>() / n as f64
    }

    /// The retained scheduling trace.
    pub fn trace(&self) -> &Tracer<KTrace> {
        &self.st.tracer
    }

    /// The configured scheduling policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Live process snapshot (same data the in-sim `rpstat` query returns).
    pub fn rpstat(&self) -> Vec<ProcStat> {
        CtxView {
            st: &self.st,
            pid: Pid(u32::MAX),
            num_cpus: self.st.cpus.len(),
        }
        .rpstat()
    }

    // ------------------------------------------------------------------
    // Internals.
    // ------------------------------------------------------------------

    fn policy_ready(&mut self, pid: Pid, reason: ReadyReason) {
        let view = PolicyView {
            procs: &self.st.procs,
            running: &self.st.running,
            now: self.st.now,
        };
        self.policy.on_ready(&view, pid, reason);
    }

    fn policy_remove(&mut self, pid: Pid) {
        let view = PolicyView {
            procs: &self.st.procs,
            running: &self.st.running,
            now: self.st.now,
        };
        self.policy.on_remove(&view, pid);
    }

    /// Adjusts runnable counters after a transition of one of `app`'s
    /// processes and emits the trace record.
    fn note_runnable_change(&mut self, app: AppId, delta: i32) {
        let total = (self.st.runnable_total as i64 + delta as i64)
            .try_into()
            .expect("runnable count underflow");
        self.st.runnable_total = total;
        let c = self.st.app_runnable.entry(app).or_insert(0);
        *c = (*c as i64 + delta as i64)
            .try_into()
            .expect("app runnable count underflow");
        let app_count = *c;
        let now = self.st.now;
        self.st.tracer.emit(
            now,
            KTrace::Runnable {
                app,
                app_count,
                total,
            },
        );
    }

    fn handle(&mut self, ev: KEvent) {
        match ev {
            KEvent::QuantumExpire { cpu, epoch } => self.on_quantum_expire(cpu, epoch),
            KEvent::OpComplete { pid, epoch } => self.on_op_complete(pid, epoch),
            KEvent::SleepDone { pid, epoch } => self.on_sleep_done(pid, epoch),
            KEvent::Tick => self.on_tick(),
        }
    }

    fn on_tick(&mut self) {
        {
            let view = PolicyView {
                procs: &self.st.procs,
                running: &self.st.running,
                now: self.st.now,
            };
            self.policy.on_tick(&view);
        }
        if self.st.live_procs > 0 {
            let t = self.st.now + self.cfg.tick;
            self.st.cal.schedule(t, KEvent::Tick);
        } else {
            self.st.tick_armed = false;
        }
    }

    /// Charges the current occupancy segment of `cpu` to its running
    /// process and resets the segment origin to now. Idempotent.
    fn account_segment(&mut self, cpu_idx: usize) {
        let now = self.st.now;
        let cpu = &mut self.st.cpus[cpu_idx];
        let Some(pid) = cpu.running else {
            return;
        };
        if now <= cpu.seg_start {
            return; // Still inside the context-switch window.
        }
        let elapsed = now.since(cpu.seg_start);
        cpu.seg_start = now;
        cpu.busy += elapsed;
        let pcb = self.st.procs.get_mut(pid);
        pcb.cpu_time += elapsed;
        match &mut pcb.op {
            Op::Service { left, .. } => {
                let useful = self.st.cache.run(CpuId(cpu_idx), pid.0 as u64, elapsed);
                let applied = useful.min(*left);
                *left -= applied;
                pcb.acct.work += applied;
                pcb.acct.refill += elapsed - applied;
            }
            Op::Spin { .. } => {
                pcb.acct.spin += elapsed;
            }
            Op::Idle => unreachable!("running process with no op"),
        }
    }

    fn on_quantum_expire(&mut self, cpu_idx: usize, epoch: u64) {
        if self.st.cpus[cpu_idx].epoch != epoch {
            return; // Stale: the processor has been re-dispatched since.
        }
        let pid = self.st.cpus[cpu_idx]
            .running
            .expect("quantum expiry on an idle processor");
        // May the policy defer this preemption (spinlock-flag hint)?
        let allow = {
            let view = PolicyView {
                procs: &self.st.procs,
                running: &self.st.running,
                now: self.st.now,
            };
            self.policy.allow_preempt(&view, pid)
        };
        if !allow && self.st.cpus[cpu_idx].defer_count < self.cfg.max_preempt_defer {
            self.st.cpus[cpu_idx].defer_count += 1;
            let grace = self.cfg.quantum / 10;
            let t = self.st.now + grace.max(SimDur::from_micros(100));
            self.st.cal.schedule(
                t,
                KEvent::QuantumExpire {
                    cpu: cpu_idx,
                    epoch,
                },
            );
            return;
        }
        self.account_segment(cpu_idx);
        self.st.tracer.emit(
            self.st.now,
            KTrace::Preempt {
                cpu: CpuId(cpu_idx),
                pid,
            },
        );
        if let Op::Spin { lock } = self.st.procs.get(pid).op {
            let holder = self.st.locks.get(lock).holder;
            self.st.tracer.emit(
                self.st.now,
                KTrace::PreemptWhileSpinning {
                    cpu: CpuId(cpu_idx),
                    pid,
                    lock,
                    holder,
                },
            );
        }
        // Vacate the processor and requeue the process.
        self.vacate(cpu_idx);
        let now = self.st.now;
        let pcb = self.st.procs.get_mut(pid);
        pcb.state = ProcState::Ready;
        pcb.ready_since = Some(now);
        pcb.acct.preemptions += 1;
        pcb.epoch += 1; // Invalidate any scheduled OpComplete.
        self.policy_ready(pid, ReadyReason::Preempted);
    }

    fn vacate(&mut self, cpu_idx: usize) {
        let cpu = &mut self.st.cpus[cpu_idx];
        cpu.running = None;
        cpu.epoch += 1;
        cpu.defer_count = 0;
        self.st.running[cpu_idx] = None;
    }

    fn on_sleep_done(&mut self, pid: Pid, epoch: u64) {
        let pcb = self.st.procs.get(pid);
        if pcb.epoch != epoch || pcb.state != ProcState::Sleeping {
            return;
        }
        self.wake(pid, Wakeup::Slept);
    }

    /// Moves a blocked process to Ready and delivers its wakeup.
    fn wake(&mut self, pid: Pid, wakeup: Wakeup) {
        let now = self.st.now;
        let app = {
            let pcb = self.st.procs.get_mut(pid);
            debug_assert!(
                !pcb.state.is_runnable() && pcb.state != ProcState::Exited,
                "waking a non-blocked process {pid}"
            );
            if pcb.state == ProcState::SigWait {
                if let Some(since) = pcb.suspend_since.take() {
                    pcb.acct.suspended += now.saturating_since(since);
                }
            }
            pcb.state = ProcState::Ready;
            pcb.ready_since = Some(now);
            pcb.app
        };
        self.note_runnable_change(app, 1);
        self.policy_ready(pid, ReadyReason::Unblocked);
        self.deliver(pid, wakeup);
    }

    /// Steps the process's behavior with `wakeup` and installs the returned
    /// action as its next operation. If the process is running, the
    /// operation's completion is (re)scheduled.
    fn deliver(&mut self, pid: Pid, wakeup: Wakeup) {
        let mut behavior = self
            .st
            .procs
            .get_mut(pid)
            .behavior
            .take()
            .expect("deliver to a process whose behavior is present");
        let action = {
            let mut ctx = CtxView {
                st: &self.st,
                pid,
                num_cpus: self.st.cpus.len(),
            };
            behavior.step(wakeup, &mut ctx)
        };
        let costs = &self.cfg.costs;
        let (left, then) = match action {
            Action::Compute(d) => (d, Then::ComputeDone),
            Action::AcquireLock(l) => (costs.lock_acquire, Then::TryAcquire(l)),
            Action::ReleaseLock(l) => (costs.lock_release, Then::Release(l)),
            Action::Sleep(d) => (costs.sigwait, Then::DoSleep(d)),
            Action::WaitSignal => (costs.sigwait, Then::DoWaitSignal),
            Action::SendSignal(p) => (costs.signal, Then::DoSignal(p)),
            Action::Send(port, body) => (costs.ipc_send, Then::SendMsg(port, body)),
            Action::Recv(port) => (costs.ipc_recv, Then::RecvMsg(port)),
            Action::Poll(port) => (costs.ipc_recv, Then::PollMsg(port)),
            Action::Spawn(b, ws) => (costs.spawn, Then::DoSpawn(Some(b), ws)),
            Action::Yield => (costs.yield_, Then::DoYield),
            Action::Exit => (SimDur::from_micros(200), Then::DoExit),
        };
        let left = left.max(SimDur::from_nanos(1));
        let pcb = self.st.procs.get_mut(pid);
        pcb.behavior = Some(behavior);
        pcb.op = Op::Service { left, then };
        pcb.epoch += 1;
        if let ProcState::Running(cpu) = pcb.state {
            self.schedule_completion(pid, cpu);
        }
    }

    /// Schedules the OpComplete event for a running process, accounting for
    /// any still-unpaid cache refill and a segment start possibly in the
    /// future (just after a context switch).
    fn schedule_completion(&mut self, pid: Pid, cpu: CpuId) {
        let pcb = self.st.procs.get(pid);
        let Op::Service { left, .. } = &pcb.op else {
            return; // Spinners have no completion.
        };
        let left = *left;
        let epoch = pcb.epoch;
        let seg_start = self.st.cpus[cpu.0].seg_start;
        let start = seg_start.max(self.st.now);
        let refill = self.st.cache.pending_refill(cpu, pid.0 as u64);
        let t = start + refill + left;
        self.st.cal.schedule(t, KEvent::OpComplete { pid, epoch });
    }

    fn on_op_complete(&mut self, pid: Pid, epoch: u64) {
        if self.st.procs.get(pid).epoch != epoch {
            return; // Stale: the op changed (preemption re-schedules).
        }
        let ProcState::Running(cpu) = self.st.procs.get(pid).state else {
            return; // Stale: no longer running.
        };
        self.account_segment(cpu.0);
        let pcb = self.st.procs.get_mut(pid);
        let then = match std::mem::replace(&mut pcb.op, Op::Idle) {
            Op::Service { left, then } => {
                debug_assert!(left.is_zero(), "completion fired early: {left} left");
                then
            }
            other => unreachable!("completion for non-service op {other:?}"),
        };
        self.apply_effect(pid, cpu, then);
    }

    fn apply_effect(&mut self, pid: Pid, cpu: CpuId, then: Then) {
        match then {
            Then::ComputeDone => self.deliver(pid, Wakeup::ComputeDone),
            Then::TryAcquire(lock) => {
                if self.st.locks.try_acquire(lock, pid, self.st.now) {
                    self.st.procs.get_mut(pid).locks_held += 1;
                    self.deliver(pid, Wakeup::LockAcquired(lock));
                } else {
                    let holder = self
                        .st
                        .locks
                        .get(lock)
                        .holder
                        .expect("contended lock has holder");
                    self.st.locks.enqueue_spinner(lock, pid);
                    let now = self.st.now;
                    self.st
                        .tracer
                        .emit(now, KTrace::SpinStart { pid, lock, holder });
                    let pcb = self.st.procs.get_mut(pid);
                    pcb.op = Op::Spin { lock };
                    pcb.epoch += 1;
                    pcb.spin_since = Some(now);
                    // No completion event: the spinner burns its processor
                    // until the lock is granted or the quantum expires.
                }
            }
            Then::Release(lock) => {
                let spinners = self.st.locks.release(lock, pid);
                {
                    let pcb = self.st.procs.get_mut(pid);
                    debug_assert!(pcb.locks_held > 0);
                    pcb.locks_held -= 1;
                }
                // Grant to the longest-spinning *running* spinner; spinners
                // that were preempted re-test when next dispatched.
                if let Some(&winner) = spinners
                    .iter()
                    .find(|&&s| matches!(self.st.procs.get(s).state, ProcState::Running(_)))
                {
                    let ProcState::Running(wcpu) = self.st.procs.get(winner).state else {
                        unreachable!()
                    };
                    // Charge the winner's spin time up to this instant.
                    self.account_segment(wcpu.0);
                    self.st.locks.grant_to(lock, winner, self.st.now);
                    self.note_lock_handoff(lock, Some(pid), winner);
                    self.st.procs.get_mut(winner).locks_held += 1;
                    self.deliver(winner, Wakeup::LockAcquired(lock));
                }
                self.deliver(pid, Wakeup::LockReleased(lock));
            }
            Then::SendMsg(port, body) => {
                let msg = Message { from: pid, body };
                if let Some(waiter) = self.st.ports.post(port, msg) {
                    let m = self.st.ports.take(port).expect("just posted");
                    self.st.ports.unblock(port, waiter);
                    self.wake(waiter, Wakeup::Received(m));
                }
                self.deliver(pid, Wakeup::Sent);
            }
            Then::RecvMsg(port) => {
                if let Some(m) = self.st.ports.take(port) {
                    self.deliver(pid, Wakeup::Received(m));
                } else {
                    self.st.ports.block(port, pid);
                    self.block(pid, cpu, ProcState::RecvWait(port));
                }
            }
            Then::PollMsg(port) => {
                let m = self.st.ports.take(port);
                self.deliver(pid, Wakeup::Polled(m));
            }
            Then::DoSpawn(behavior, ws) => {
                let behavior = behavior.expect("spawn behavior present");
                let app = self.st.procs.get(pid).app;
                let child = self.st.procs.insert(Some(pid), app, ws, behavior);
                self.finish_spawn(child, app);
                self.deliver(pid, Wakeup::Spawned(child));
            }
            Then::DoWaitSignal => {
                let pcb = self.st.procs.get_mut(pid);
                if pcb.pending_signal {
                    pcb.pending_signal = false;
                    self.deliver(pid, Wakeup::Resumed);
                } else {
                    self.block(pid, cpu, ProcState::SigWait);
                }
            }
            Then::DoSignal(target) => {
                let tstate = self.st.procs.get(target).state;
                match tstate {
                    ProcState::SigWait => self.wake(target, Wakeup::Resumed),
                    ProcState::Exited => {}
                    _ => self.st.procs.get_mut(target).pending_signal = true,
                }
                self.deliver(pid, Wakeup::SignalSent);
            }
            Then::DoSleep(d) => {
                self.block(pid, cpu, ProcState::Sleeping);
                let epoch = self.st.procs.get(pid).epoch;
                let t = self.st.now + d;
                self.st.cal.schedule(t, KEvent::SleepDone { pid, epoch });
            }
            Then::DoYield => {
                self.vacate(cpu.0);
                let now = self.st.now;
                let pcb = self.st.procs.get_mut(pid);
                pcb.state = ProcState::Ready;
                pcb.ready_since = Some(now);
                pcb.epoch += 1;
                self.policy_ready(pid, ReadyReason::Yielded);
                self.deliver(pid, Wakeup::Yielded);
            }
            Then::DoExit => self.do_exit(pid, cpu),
        }
    }

    /// Records a lock grant to a spinner and its hand-off latency.
    fn note_lock_handoff(&mut self, lock: LockId, from: Option<Pid>, to: Pid) {
        let now = self.st.now;
        let waited = self
            .st
            .procs
            .get_mut(to)
            .spin_since
            .take()
            .map_or(SimDur::ZERO, |since| now.saturating_since(since));
        self.st.tracer.emit(
            now,
            KTrace::LockHandoff {
                lock,
                from,
                to,
                waited,
            },
        );
    }

    /// Blocks a running process: vacates its processor and sets the state.
    fn block(&mut self, pid: Pid, cpu: CpuId, state: ProcState) {
        debug_assert!(!state.is_runnable() && state != ProcState::Exited);
        self.vacate(cpu.0);
        let now = self.st.now;
        let app = {
            let pcb = self.st.procs.get_mut(pid);
            debug_assert_eq!(pcb.state, ProcState::Running(cpu));
            debug_assert_eq!(
                pcb.locks_held, 0,
                "{pid} blocked while holding a spinlock — unsafe suspension point"
            );
            pcb.state = state;
            pcb.epoch += 1;
            if state == ProcState::SigWait {
                pcb.suspend_since = Some(now);
            }
            pcb.app
        };
        self.note_runnable_change(app, -1);
    }

    fn do_exit(&mut self, pid: Pid, cpu: CpuId) {
        self.vacate(cpu.0);
        // Defensive: a process cannot normally exit while spinning, but if
        // it somehow does, leave no dangling spinner-queue entry behind.
        if let Op::Spin { lock } = self.st.procs.get(pid).op {
            self.st.locks.remove_spinner(lock, pid);
        }
        let app = {
            let pcb = self.st.procs.get_mut(pid);
            debug_assert_eq!(pcb.locks_held, 0, "{pid} exited while holding a spinlock");
            pcb.state = ProcState::Exited;
            pcb.epoch += 1;
            pcb.behavior = None;
            pcb.app
        };
        self.note_runnable_change(app, -1);
        self.policy_remove(pid);
        self.st.cache.forget(pid.0 as u64);
        self.st.live_procs -= 1;
        let live = self.st.app_live.get_mut(&app).expect("app has live count");
        *live -= 1;
        let now = self.st.now;
        self.st.tracer.emit(now, KTrace::Exit { pid, app });
        if *live == 0 {
            self.st.app_done.insert(app, now);
            self.st.tracer.emit(now, KTrace::AppDone { app });
        }
    }

    /// Fills idle processors from the policy.
    fn reschedule(&mut self) {
        for cpu_idx in 0..self.st.cpus.len() {
            if self.st.cpus[cpu_idx].running.is_some() {
                continue;
            }
            let picked = {
                let view = PolicyView {
                    procs: &self.st.procs,
                    running: &self.st.running,
                    now: self.st.now,
                };
                self.policy.pick(&view, CpuId(cpu_idx))
            };
            if let Some(pid) = picked {
                self.dispatch(cpu_idx, pid);
            }
        }
    }

    fn dispatch(&mut self, cpu_idx: usize, pid: Pid) {
        let now = self.st.now;
        let cpu_id = CpuId(cpu_idx);
        debug_assert!(self.st.cpus[cpu_idx].running.is_none());
        debug_assert_eq!(self.st.procs.get(pid).state, ProcState::Ready);

        let switched = self.st.cpus[cpu_idx].last_pid != Some(pid);
        let switch_cost = if switched {
            self.cfg.machine.context_switch_cost
        } else {
            SimDur::ZERO
        };

        // Ready-wait accounting.
        {
            let pcb = self.st.procs.get_mut(pid);
            if let Some(since) = pcb.ready_since.take() {
                pcb.acct.ready_wait += now.saturating_since(since);
            }
            pcb.state = ProcState::Running(cpu_id);
            pcb.last_cpu = Some(cpu_id);
            pcb.acct.dispatches += 1;
            if switched {
                pcb.acct.switches += 1;
                pcb.acct.switch_time += switch_cost;
            }
        }

        // Cache reload penalty for this dispatch.
        let busy = 1 + self.st.running.iter().filter(|r| r.is_some()).count();
        let mult = self
            .cfg
            .machine
            .bus
            .contention_multiplier(busy.min(self.st.cpus.len()), self.st.cpus.len());
        let ws = self.st.procs.get(pid).ws_lines;
        self.st.cache.dispatch(cpu_id, pid.0 as u64, ws, mult);

        {
            let cpu = &mut self.st.cpus[cpu_idx];
            cpu.running = Some(pid);
            cpu.last_pid = Some(pid);
            cpu.epoch += 1;
            cpu.seg_start = now + switch_cost;
            cpu.busy += switch_cost;
            cpu.defer_count = 0;
        }
        self.st.running[cpu_idx] = Some(pid);
        self.st.tracer.emit(
            now,
            KTrace::Dispatch {
                cpu: cpu_id,
                pid,
                switched,
            },
        );

        // Quantum.
        let quantum = {
            let view = PolicyView {
                procs: &self.st.procs,
                running: &self.st.running,
                now: self.st.now,
            };
            self.policy.quantum(&view, cpu_id, pid, self.cfg.quantum)
        };
        let epoch = self.st.cpus[cpu_idx].epoch;
        let qt = now + switch_cost + quantum.max(SimDur::from_nanos(1));
        self.st.cal.schedule(
            qt,
            KEvent::QuantumExpire {
                cpu: cpu_idx,
                epoch,
            },
        );

        // Operation (re)scheduling.
        match &self.st.procs.get(pid).op {
            Op::Service { .. } => {
                let pcb = self.st.procs.get_mut(pid);
                pcb.epoch += 1;
                self.schedule_completion(pid, cpu_id);
            }
            Op::Spin { lock } => {
                let lock = *lock;
                // Re-test the lock at dispatch: it may have been released
                // while this spinner was preempted.
                if self.st.locks.get(lock).holder.is_none() {
                    self.st.locks.grant_to(lock, pid, now);
                    self.note_lock_handoff(lock, None, pid);
                    self.st.procs.get_mut(pid).locks_held += 1;
                    self.deliver(pid, Wakeup::LockAcquired(lock));
                }
                // Otherwise: keep spinning on this processor.
            }
            Op::Idle => unreachable!("dispatching a process with no op"),
        }
    }
}
