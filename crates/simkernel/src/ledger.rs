//! Cycle-accounting ledger: where did every processor-cycle go?
//!
//! The paper's argument is mechanistic — multiprogrammed slowdown comes from
//! spin-waiting on preempted lock holders, context-switch overhead, and cache
//! refill, not from some diffuse "overhead". The ledger makes that claim
//! checkable: every simulated processor-cycle between time 0 and "now" is
//! attributed to exactly one category, and the categories provably sum to
//! `num_cpus × elapsed` (the conservation invariant, see
//! [`CycleLedger::conserved`]).
//!
//! `suspended` is deliberately *outside* the conservation sum: a suspended
//! process occupies no processor, so its wall-clock suspension time is
//! reported per process/application as context, not as processor cycles.

use std::collections::BTreeMap;

use desim::SimDur;

use crate::ids::{AppId, Pid};

/// Cycle totals for one process, application, or the whole machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cycles {
    /// Useful work executed.
    pub work: SimDur,
    /// Busy-waiting on spinlocks (no progress).
    pub spin: SimDur,
    /// Cache-refill stall after a corrupted dispatch.
    pub refill: SimDur,
    /// Context-switch cost paid on dispatch.
    pub switch: SimDur,
    /// Wall-clock time suspended by process control (not processor time;
    /// excluded from [`Cycles::busy`] and the conservation sum).
    pub suspended: SimDur,
}

impl Cycles {
    /// Processor time consumed: everything except `suspended`.
    pub fn busy(&self) -> SimDur {
        self.work + self.spin + self.refill + self.switch
    }

    /// Accumulates another set of totals (used to fold processes into
    /// applications and applications into the machine).
    pub fn add(&mut self, other: &Cycles) {
        self.work += other.work;
        self.spin += other.spin;
        self.refill += other.refill;
        self.switch += other.switch;
        self.suspended += other.suspended;
    }
}

/// A snapshot attribution of all processor-cycles up to "now".
#[derive(Clone, Debug)]
pub struct CycleLedger {
    /// Simulated time elapsed since the start of the run.
    pub elapsed: SimDur,
    /// Number of processors in the machine.
    pub num_cpus: usize,
    /// Machine-wide totals across all processes (including exited ones).
    pub total: Cycles,
    /// Processor cycles during which no process was dispatched.
    pub idle: SimDur,
    /// Attribution per process, keyed by pid.
    pub per_proc: BTreeMap<Pid, Cycles>,
    /// Attribution per application, keyed by app id.
    pub per_app: BTreeMap<AppId, Cycles>,
}

impl CycleLedger {
    /// Total processor-cycles available: `num_cpus × elapsed`.
    pub fn processor_cycles(&self) -> SimDur {
        SimDur(self.elapsed.nanos() * self.num_cpus as u64)
    }

    /// Sum of all attributed categories (busy + idle, excluding
    /// `suspended` which is wall-clock, not processor time).
    pub fn accounted(&self) -> SimDur {
        self.total.busy() + self.idle
    }

    /// The conservation invariant: every processor-cycle is attributed to
    /// exactly one category.
    pub fn conserved(&self) -> bool {
        self.accounted() == self.processor_cycles()
    }

    /// Per-application totals sorted by app id (stable render order).
    pub fn apps(&self) -> impl Iterator<Item = (AppId, &Cycles)> {
        self.per_app.iter().map(|(&a, c)| (a, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_add_and_busy() {
        let a = Cycles {
            work: SimDur(10),
            spin: SimDur(3),
            refill: SimDur(2),
            switch: SimDur(1),
            suspended: SimDur(100),
        };
        let mut b = Cycles::default();
        b.add(&a);
        b.add(&a);
        assert_eq!(b.work, SimDur(20));
        assert_eq!(b.busy(), SimDur(32));
        assert_eq!(b.suspended, SimDur(200));
    }

    #[test]
    fn conservation_is_exact_arithmetic() {
        let mut per_proc = BTreeMap::new();
        per_proc.insert(
            Pid(0),
            Cycles {
                work: SimDur(40),
                spin: SimDur(10),
                refill: SimDur(5),
                switch: SimDur(5),
                suspended: SimDur(0),
            },
        );
        let total = per_proc[&Pid(0)];
        let ledger = CycleLedger {
            elapsed: SimDur(100),
            num_cpus: 1,
            total,
            idle: SimDur(40),
            per_proc,
            per_app: BTreeMap::new(),
        };
        assert_eq!(ledger.processor_cycles(), SimDur(100));
        assert!(ledger.conserved());
    }
}
