//! The bridge from the native runtime's flight recorder to the metrics
//! crate's multi-process Perfetto merge.
//!
//! `native-rt` deliberately does not depend on `metrics`' trace types
//! (the recorder must stay a leaf the pool can call from its hot path),
//! so the event vocabulary exists twice: [`native_rt::EventKind`] on the
//! recording side, [`metrics::perfetto::SchedEventKind`] on the
//! rendering side. This module is the one place the two meet — it
//! converts drained ring/journal batches into [`AppTimeline`]s and runs
//! the scripted two-application drill `pool_bench --trace-out` uses to
//! produce the merged fleet timeline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use metrics::perfetto::{sched_timeline, AppTimeline, SchedEvent, SchedEventKind};
use metrics::TraceBuilder;
use native_rt::{Controller, EventKind, Pool, PoolConfig, TraceEvent};

/// One recorder event kind, in the metrics crate's vocabulary.
pub fn convert_kind(kind: EventKind) -> SchedEventKind {
    match kind {
        EventKind::JobStart => SchedEventKind::JobStart,
        EventKind::JobEnd => SchedEventKind::JobEnd,
        EventKind::Steal => SchedEventKind::Steal,
        EventKind::Park => SchedEventKind::Park,
        EventKind::Unpark => SchedEventKind::Unpark,
        EventKind::Suspend => SchedEventKind::Suspend,
        EventKind::Resume => SchedEventKind::Resume,
        EventKind::CpuSet => SchedEventKind::CpuSet,
        EventKind::Epoch => SchedEventKind::Epoch,
        EventKind::Retier => SchedEventKind::Retier,
        EventKind::Decision => SchedEventKind::Decision,
        EventKind::Stall => SchedEventKind::Stall,
        EventKind::Recovered => SchedEventKind::Recovered,
        EventKind::CrCull => SchedEventKind::CrCull,
        EventKind::CrPromote => SchedEventKind::CrPromote,
    }
}

/// One recorder event, converted field-for-field.
pub fn convert_event(e: &TraceEvent) -> SchedEvent {
    SchedEvent {
        ts_ns: e.ts_ns,
        worker: e.worker,
        kind: convert_kind(e.kind),
        arg: e.arg,
    }
}

/// A drained batch as one application's timeline.
pub fn app_timeline(pid: u64, name: &str, events: &[TraceEvent]) -> AppTimeline {
    AppTimeline {
        pid,
        name: name.to_string(),
        events: events.iter().map(convert_event).collect(),
    }
}

/// Runs the scripted two-application multiprogrammed drill and returns
/// the merged fleet timeline: two work-stealing pools share one
/// [`Controller`], the controller halves and restores the partition
/// mid-run (recorded as [`EventKind::Decision`] instants on each
/// application's decision track), and each pool's flight recorder is
/// drained into its own trace process. `jobs` is the per-application
/// job count; the job body sleeps ~50µs so suspends actually bite.
pub fn fleet_drill(jobs: usize) -> TraceBuilder {
    let cpus = 4usize;
    let nworkers = 4usize;
    let controller = Controller::new(cpus, Duration::from_millis(5));
    let mut pools: Vec<Arc<Pool>> = Vec::new();
    let mut decisions: Vec<Vec<TraceEvent>> = Vec::new();
    let note_decisions = |pools: &[Arc<Pool>], decisions: &mut Vec<Vec<TraceEvent>>| {
        for (pool, log) in pools.iter().zip(decisions.iter_mut()) {
            log.push(TraceEvent {
                ts_ns: native_rt::trace::now_ns(),
                worker: 0,
                kind: EventKind::Decision,
                arg: pool.target() as u32,
            });
        }
    };
    // Register the applications one at a time: the first briefly owns
    // the whole machine (target = nworkers), then the second's arrival
    // halves the partition — so the timeline shows a real target change,
    // not a flat line.
    for _ in 0..2 {
        let mut pc = PoolConfig::new(nworkers);
        // Headroom over the drill's event volume: nothing drops, so
        // the merged file is the complete history.
        pc.trace_capacity = 8 * jobs.max(64);
        pools.push(Arc::new(Pool::with_config(&controller, pc)));
        decisions.push(Vec::new());
        note_decisions(&pools, &mut decisions);
    }

    let done = Arc::new(AtomicUsize::new(0));
    for pool in &pools {
        for _ in 0..jobs {
            let d = Arc::clone(&done);
            pool.execute(move || {
                std::thread::sleep(Duration::from_micros(50));
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    for pool in &pools {
        pool.wait_idle();
    }
    note_decisions(&pools, &mut decisions);
    assert_eq!(done.load(Ordering::Relaxed), 2 * jobs, "drill lost jobs");

    let apps: Vec<AppTimeline> = pools
        .iter()
        .zip(decisions)
        .enumerate()
        .map(|(i, (pool, decisions))| {
            let mut events = pool.recorder().drain(usize::MAX);
            events.extend(decisions);
            app_timeline(i as u64 + 1, &format!("pool {}", i + 1), &events)
        })
        .collect();
    sched_timeline(&apps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_converts_field_for_field() {
        for (i, &kind) in EventKind::ALL.iter().enumerate() {
            let e = TraceEvent {
                ts_ns: 1_000 + i as u64,
                worker: i as u16,
                kind,
                arg: 7 * i as u32,
            };
            let s = convert_event(&e);
            assert_eq!(s.ts_ns, e.ts_ns);
            assert_eq!(s.worker, e.worker);
            assert_eq!(s.arg, e.arg);
            assert_eq!(convert_kind(kind) as u8 as usize, i, "{kind:?} order");
        }
    }

    #[test]
    fn fleet_drill_merges_two_apps_with_decision_instants() {
        let doc = fleet_drill(128).finish().render();
        let back = metrics::json::parse(&doc).expect("valid trace json");
        let events = back
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("process_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|v| v.as_str())
            })
            .collect();
        assert!(
            names.contains(&"pool 1") && names.contains(&"pool 2"),
            "{names:?}"
        );
        // Decision instants land on each app's dedicated decision track.
        for pid in [1.0, 2.0] {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(|v| v.as_str()) == Some("i")
                        && e.get("name").and_then(|v| v.as_str()) == Some("decision")
                        && e.get("pid").and_then(|v| v.as_num()) == Some(pid)
                }),
                "no decision instant for pid {pid}"
            );
        }
        // Real work happened and was recorded: job slices on both apps.
        for pid in [1.0, 2.0] {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(|v| v.as_str()) == Some("X")
                        && e.get("name").and_then(|v| v.as_str()) == Some("job")
                        && e.get("pid").and_then(|v| v.as_num()) == Some(pid)
                }),
                "no job slices for pid {pid}"
            );
        }
    }
}
