//! Scenario drivers shared by the figure binaries and criterion benches.

use desim::{SimDur, SimTime};
use procctl::{DecisionLog, Server, ServerConfig, SweepRecord};
use simkernel::policy::{
    Affinity, Coscheduling, FifoRoundRobin, GroupMode, GroupPolicy, PriorityDecay, SpacePartition,
    SpinlockFlag,
};
use simkernel::{AppId, Kernel, KernelConfig, PortId, SchedPolicy};
use uthreads::{launch, AppMetrics, AppSpec, ThreadsApp, ThreadsConfig};
use workloads::{fft_spec, gauss_spec, matmul_spec, sort_spec, Presets};

/// Application id reserved for the central server daemon.
pub const SERVER_APP: AppId = AppId(999);

/// Kernel scheduling policies selectable by scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// UMAX-like global FIFO round-robin (the paper's baseline).
    Fifo,
    /// Encore-style usage-decay priorities.
    PrioDecay,
    /// Ousterhout coscheduling (gang slices).
    Cosched,
    /// Zahorjan spinlock-flag preemption avoidance.
    SpinFlag,
    /// Edler groups with every application in gang mode.
    GangGroups,
    /// Squillante–Lazowska cache-affinity scheduling.
    Affinity,
    /// The paper's §7 space partitioning.
    Partition,
}

impl PolicyKind {
    /// All policies, for sweeps.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Fifo,
        PolicyKind::PrioDecay,
        PolicyKind::Cosched,
        PolicyKind::SpinFlag,
        PolicyKind::GangGroups,
        PolicyKind::Affinity,
        PolicyKind::Partition,
    ];

    /// Instantiates the policy.
    pub fn build(self, quantum: SimDur) -> Box<dyn SchedPolicy> {
        match self {
            PolicyKind::Fifo => Box::new(FifoRoundRobin::new()),
            PolicyKind::PrioDecay => Box::new(PriorityDecay::default()),
            PolicyKind::Cosched => Box::new(Coscheduling::new(quantum)),
            PolicyKind::SpinFlag => Box::new(SpinlockFlag::new()),
            PolicyKind::GangGroups => Box::new(GroupPolicy::new(
                quantum,
                std::collections::HashMap::new(),
                GroupMode::Gang,
            )),
            PolicyKind::Affinity => Box::new(Affinity::new(quantum)),
            PolicyKind::Partition => Box::new(SpacePartition::new()),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "fifo-rr",
            PolicyKind::PrioDecay => "prio-decay",
            PolicyKind::Cosched => "cosched",
            PolicyKind::SpinFlag => "spin-flag",
            PolicyKind::GangGroups => "edler-gang",
            PolicyKind::Affinity => "affinity",
            PolicyKind::Partition => "partition",
        }
    }
}

/// Simulation environment for one run.
#[derive(Clone, Copy, Debug)]
pub struct SimEnv {
    /// Processor count (the paper's machine had 16).
    pub cpus: usize,
    /// Kernel scheduling policy.
    pub policy: PolicyKind,
    /// Use the high-miss-penalty "scalable machine" config.
    pub scalable: bool,
    /// Retain kernel traces (needed for Figure 5; off for benches).
    pub trace: bool,
}

impl Default for SimEnv {
    fn default() -> Self {
        SimEnv {
            cpus: 16,
            policy: PolicyKind::Fifo,
            scalable: false,
            trace: false,
        }
    }
}

impl SimEnv {
    /// Builds the kernel for this environment.
    pub fn make_kernel(&self) -> Kernel {
        let mut cfg = if self.scalable {
            KernelConfig::scalable()
        } else {
            KernelConfig::multimax()
        }
        .with_cpus(self.cpus);
        cfg.trace = self.trace;
        let policy = self.policy.build(cfg.quantum);
        Kernel::new(cfg, policy)
    }
}

/// The four evaluated applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Matrix multiplication.
    Matmul,
    /// One-dimensional FFT.
    Fft,
    /// Parallel merge sort.
    Sort,
    /// Gaussian elimination.
    Gauss,
}

impl AppKind {
    /// The figure-3 ordering.
    pub const ALL: [AppKind; 4] = [AppKind::Fft, AppKind::Sort, AppKind::Gauss, AppKind::Matmul];

    /// Builds the application's task-graph spec.
    pub fn spec(self, presets: &Presets) -> AppSpec {
        match self {
            AppKind::Matmul => matmul_spec(&presets.matmul),
            AppKind::Fft => fft_spec(&presets.fft),
            AppKind::Sort => sort_spec(&presets.sort),
            AppKind::Gauss => gauss_spec(&presets.gauss),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Matmul => "matmul",
            AppKind::Fft => "fft",
            AppKind::Sort => "sort",
            AppKind::Gauss => "gauss",
        }
    }
}

/// Spawns the central server; returns its request port.
pub fn spawn_server(kernel: &mut Kernel) -> PortId {
    spawn_server_logged(kernel).0
}

/// Spawns the central server keeping a handle on its decision log, so the
/// caller can read back every partition sweep after the run.
pub fn spawn_server_logged(kernel: &mut Kernel) -> (PortId, DecisionLog) {
    let port = kernel.create_port();
    let server = Server::new(ServerConfig::new(port));
    let log = server.decision_log();
    kernel.spawn_root(SERVER_APP, 64, Box::new(server));
    (port, log)
}

/// One application in a multiprogrammed scenario.
pub struct AppLaunch {
    /// Which application.
    pub kind: AppKind,
    /// Worker process count.
    pub nprocs: u32,
    /// Simulated start time.
    pub start: SimTime,
}

/// Result of one application's run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Application.
    pub kind: AppKind,
    /// Wall-clock seconds from its start to its completion.
    pub wall: f64,
    /// Kernel-side accounting.
    pub stats: simkernel::AppStats,
    /// Threads-package counters.
    pub metrics: AppMetrics,
}

/// One application's observables from an instrumented run: the
/// [`RunOutcome`] fields plus the span log and convergence latencies.
pub struct AppRun {
    /// Application id assigned in the scenario (the launch index).
    pub app: AppId,
    /// Application.
    pub kind: AppKind,
    /// Simulated start time.
    pub start: SimTime,
    /// Wall-clock seconds from its start to its completion.
    pub wall: f64,
    /// Kernel-side accounting.
    pub stats: simkernel::AppStats,
    /// Threads-package counters.
    pub metrics: AppMetrics,
    /// Span records the threads package emitted.
    pub spans: Vec<uthreads::SpanRecord>,
    /// Poll-to-convergence latencies (empty without control).
    pub convergence: Vec<(SimTime, SimDur)>,
}

/// Everything observable from one instrumented scenario run.
pub struct ScenarioRun {
    /// Per-application observables, in launch order.
    pub apps: Vec<AppRun>,
    /// Where every processor-cycle of the run went.
    pub ledger: simkernel::CycleLedger,
    /// Simulated time when the last application finished.
    pub end: SimTime,
    /// The server's partition sweeps (empty without control).
    pub sweeps: Vec<SweepRecord>,
    /// The kernel, for trace extraction.
    pub kernel: Kernel,
}

/// Runs a multiprogrammed scenario: the given applications, optionally
/// under process control (`poll_interval = Some(..)` spawns the server and
/// enables control in every application). Returns per-app outcomes plus
/// the kernel (for trace extraction).
///
/// # Panics
///
/// Panics if any application fails to finish before `limit`.
pub fn run_scenario(
    env: &SimEnv,
    presets: &Presets,
    launches: &[AppLaunch],
    poll_interval: Option<SimDur>,
    limit: SimTime,
) -> (Vec<RunOutcome>, Kernel) {
    run_scenario_tuned(env, presets, launches, poll_interval, None, limit)
}

/// [`run_scenario`] with the threads package's lock-level switch exposed:
/// `cr = Some(..)` enables the concurrency-restricting queue lock in every
/// application. Crossing `poll_interval` and `cr` yields the four-way
/// ablation {no control, server control, CR lock, both}.
///
/// # Panics
///
/// Panics if any application fails to finish before `limit`.
pub fn run_scenario_tuned(
    env: &SimEnv,
    presets: &Presets,
    launches: &[AppLaunch],
    poll_interval: Option<SimDur>,
    cr: Option<uthreads::CrParams>,
    limit: SimTime,
) -> (Vec<RunOutcome>, Kernel) {
    let run = run_scenario_instrumented_tuned(env, presets, launches, poll_interval, cr, limit);
    let outcomes = run
        .apps
        .into_iter()
        .map(|a| RunOutcome {
            kind: a.kind,
            wall: a.wall,
            stats: a.stats,
            metrics: a.metrics,
        })
        .collect();
    (outcomes, run.kernel)
}

/// [`run_scenario`] with full observability: besides the outcomes it
/// returns the cycle ledger, each application's span log and convergence
/// latencies, and the control server's decision log.
///
/// # Panics
///
/// Panics if any application fails to finish before `limit`.
pub fn run_scenario_instrumented(
    env: &SimEnv,
    presets: &Presets,
    launches: &[AppLaunch],
    poll_interval: Option<SimDur>,
    limit: SimTime,
) -> ScenarioRun {
    run_scenario_instrumented_tuned(env, presets, launches, poll_interval, None, limit)
}

/// [`run_scenario_instrumented`] with the CR queue-lock switch exposed
/// (see [`run_scenario_tuned`]).
///
/// # Panics
///
/// Panics if any application fails to finish before `limit`.
pub fn run_scenario_instrumented_tuned(
    env: &SimEnv,
    presets: &Presets,
    launches: &[AppLaunch],
    poll_interval: Option<SimDur>,
    cr: Option<uthreads::CrParams>,
    limit: SimTime,
) -> ScenarioRun {
    let mut kernel = env.make_kernel();
    let server = poll_interval.map(|_| spawn_server_logged(&mut kernel));
    let mut order: Vec<(usize, SimTime)> = launches
        .iter()
        .enumerate()
        .map(|(i, l)| (i, l.start))
        .collect();
    order.sort_by_key(|&(_, t)| t);
    let mut apps: Vec<Option<(AppId, ThreadsApp)>> = (0..launches.len()).map(|_| None).collect();
    for (idx, start) in order {
        kernel.run_until(start);
        let l = &launches[idx];
        let mut cfg = ThreadsConfig::new(l.nprocs);
        if let (Some((port, _)), Some(interval)) = (&server, poll_interval) {
            cfg = cfg.with_control(*port, interval);
        }
        if let Some(cr) = cr {
            cfg = cfg.with_cr_lock(cr);
        }
        let app_id = AppId(idx as u32);
        let handle = launch(&mut kernel, app_id, cfg, l.kind.spec(presets));
        apps[idx] = Some((app_id, handle));
    }
    let ids: Vec<AppId> = apps
        .iter()
        .map(|a| a.as_ref().expect("launched").0)
        .collect();
    assert!(
        kernel.run_until_apps_done(&ids, limit),
        "scenario did not finish by {limit} (policy {})",
        env.policy.name()
    );
    let app_runs = launches
        .iter()
        .zip(&apps)
        .map(|(l, a)| {
            let (id, handle) = a.as_ref().expect("launched");
            let done = kernel.app_done_time(*id).expect("app finished");
            AppRun {
                app: *id,
                kind: l.kind,
                start: l.start,
                wall: done.since(l.start).as_secs_f64(),
                stats: kernel.app_stats(*id),
                metrics: handle.metrics(),
                spans: handle.spans(),
                convergence: handle.convergence(),
            }
        })
        .collect();
    let ledger = kernel.cycle_ledger();
    ScenarioRun {
        apps: app_runs,
        ledger,
        end: kernel.now(),
        sweeps: server
            .as_ref()
            .map_or_else(Vec::new, |(_, log)| log.records()),
        kernel,
    }
}

/// Convenience: run one application alone; returns its wall-clock seconds.
pub fn run_solo(
    env: &SimEnv,
    presets: &Presets,
    kind: AppKind,
    nprocs: u32,
    poll_interval: Option<SimDur>,
    limit: SimTime,
) -> RunOutcome {
    run_solo_tuned(env, presets, kind, nprocs, poll_interval, None, limit)
}

/// [`run_solo`] with the CR queue-lock switch exposed.
pub fn run_solo_tuned(
    env: &SimEnv,
    presets: &Presets,
    kind: AppKind,
    nprocs: u32,
    poll_interval: Option<SimDur>,
    cr: Option<uthreads::CrParams>,
    limit: SimTime,
) -> RunOutcome {
    let (mut outs, _) = run_scenario_tuned(
        env,
        presets,
        &[AppLaunch {
            kind,
            nprocs,
            start: SimTime::ZERO,
        }],
        poll_interval,
        cr,
        limit,
    );
    outs.pop().expect("one outcome")
}
